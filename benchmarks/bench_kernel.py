"""Simulator-kernel micro-benchmarks.

Not a paper figure: these guard the substrate's own performance, since
every figure reproduction pays the kernel's event-dispatch cost.  They use
pytest-benchmark's normal multi-round timing (the operations are cheap).

``scripts/bench_guard.py`` mirrors these workloads with a plain-stdlib
timer and fails CI on >2x regressions against ``BENCH_BASELINE.json``;
keep the two in sync when adding kernels here.
"""

from repro.analysis import lint_source
from repro.core import (PtpBenchmarkConfig, PtpResult, SweepPoint,
                        SweepResult, run_ptp_benchmark)
from repro.obs import CounterSink, EventBus
from repro.obs.kinds import PART_PREADY
from repro.sim import Simulator, Store


def test_kernel_timeout_dispatch(benchmark):
    def run():
        sim = Simulator()
        for _ in range(1000):
            sim.timeout(1.0)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 1000


def test_kernel_process_switching(benchmark):
    def run():
        sim = Simulator()

        def proc():
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(proc())
        sim.run()
        return sim.now

    assert benchmark(run) == 100.0


def test_kernel_store_handoff(benchmark):
    def run():
        sim = Simulator()
        store = Store(sim)

        def producer():
            for i in range(500):
                yield sim.timeout(0.001)
                store.put(i)

        def consumer():
            total = 0
            for _ in range(500):
                total += yield store.get()
            return total

        sim.process(producer())
        c = sim.process(consumer())
        sim.run()
        return c.value

    assert benchmark(run) == sum(range(500))


def test_kernel_never_waited_timeouts(benchmark):
    """The lazy-callback fast path: events processed with no waiter.

    Compute delays and NIC gaps are fired-and-forgotten far more often
    than they are waited on; this guards the no-allocation dispatch of
    such events.
    """

    def run():
        sim = Simulator()
        for _ in range(2000):
            sim.timeout(1.0)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 2000


def test_sweep_point_lookup(benchmark):
    """O(1) cell lookup on a figure-sized grid (guards the sweep index)."""
    sizes = [64 * 4 ** k for k in range(10)]
    counts = [1, 2, 4, 8, 16, 32]
    sweep = SweepResult()
    for n in counts:
        for m in sizes:
            if m < n:
                continue
            cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n)
            sweep.add(SweepPoint(config=cfg, result=PtpResult(config=cfg)))

    def run():
        hits = 0
        for _ in range(50):
            for n in counts:
                for m in sizes:
                    if m >= n:
                        hits += sweep.point(m, n).config.partitions
        return hits

    assert benchmark(run) > 0


def test_obs_emission_disabled(benchmark):
    """Instrumentation with no subscriber: the near-zero-cost fast path.

    Every runtime hot path (pready, matching, NIC) emits unconditionally;
    the bus must make an unsubscribed emit one list index plus a falsy
    test.  ``scripts/bench_guard.py`` holds this kernel to a 5% budget
    over baseline (tighter than the 2x default).
    """
    bus = EventBus()

    def run():
        emit = bus.emit
        for _ in range(100_000):
            emit(PART_PREADY, 1.0, 0, 0, 0, None)
        return bus.subscribed(PART_PREADY)

    assert benchmark(run) is False


def test_obs_emission_counted(benchmark):
    """Emission with one cheap aggregating subscriber (CounterSink)."""
    bus = EventBus()
    counters = bus.attach(CounterSink(), ("part.pready",))

    def run():
        emit = bus.emit
        for _ in range(10_000):
            emit(PART_PREADY, 1.0, 0, 0, 0, None)
        return True

    assert benchmark(run)
    assert counters.count("part.pready") >= 10_000


def _lint_workload() -> str:
    """A synthetic ~400-line module exercising both analyzer passes.

    Each function carries a full partitioned epoch with loops and
    branches, so the flow pass builds a CFG and runs its fixpoint per
    function while the pattern pass walks the same AST.  Synthesized
    (not read from the tree) so the score does not drift when unrelated
    shipped code changes.
    """
    template = (
        "def exchange_{i}(ctx, comm, tc):\n"
        "    ps = yield from comm.psend_init(tc, 1, {i}, 4096, 8)\n"
        "    pr = yield from comm.precv_init(tc, 1, {i}, 4096, 8)\n"
        "    for epoch in range(4):\n"
        "        yield from ps.start(tc)\n"
        "        yield from pr.start(tc)\n"
        "        for p in range(0, 4):\n"
        "            ps.note_buffer_write(p)\n"
        "            yield from ps.pready(tc, p)\n"
        "        if epoch > 1:\n"
        "            yield from ps.pready_range(tc, 4, 5)\n"
        "            yield from ps.pready_range(tc, 6, 7)\n"
        "        else:\n"
        "            for p in range(4, 8):\n"
        "                yield from ps.pready(tc, p)\n"
        "        yield from ps.wait(tc)\n"
        "        yield from pr.wait(tc)\n"
        "    return ps, pr\n"
    )
    return "\n".join(template.format(i=i) for i in range(16))


def test_lint_throughput(benchmark):
    """Both simlint passes over a synthetic module (guards analyzer cost).

    The flow-sensitive pass runs a worklist fixpoint per function; this
    keeps its cost visible so CFG or domain changes that blow up lint
    time on the shipped ``lint src/repro benchmarks examples`` CI step
    get caught here first.
    """
    source = _lint_workload()

    def run():
        return lint_source(source, "workload.py")

    assert benchmark(run) == []


def test_end_to_end_trial_cost(benchmark):
    """One full micro-benchmark trial (the unit every sweep repeats)."""
    cfg = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                             compute_seconds=1e-3, iterations=1, warmup=0)

    result = benchmark(run_ptp_benchmark, cfg)
    assert result.samples


def test_analytic_eval_cost(benchmark):
    """The closed-form answer for a paper-grid cell (no simulator).

    Mirrors the ``analytic_eval`` guard kernel; the guard additionally
    holds it to <= 1/100th of the same cell's DES trial
    (``paper_cell_trial``) measured in the same run.
    """
    from repro.analytic import evaluate_analytic
    cfg = PtpBenchmarkConfig(message_bytes=1 << 20, partitions=32,
                             compute_seconds=0.010, iterations=10, warmup=1)

    result = benchmark(evaluate_analytic, cfg)
    assert result.source == "analytic"
    assert len(result.samples) == cfg.iterations


def test_planner_overhead_cost(benchmark):
    """A fixed-trial (min == max == 1) planner run on a noisy cell.

    Mirrors the ``planner_overhead`` guard kernel (budgeted at 1.05x the
    plain run of the same cell): forcing exactly one trial isolates the
    planner's convergence check + merge + digest rehash.
    """
    from repro.metrics import AdaptiveTrialPlanner
    from repro.noise import UniformNoise
    cfg = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                             compute_seconds=1e-3, iterations=16, warmup=0,
                             noise=UniformNoise(4.0))
    planner = AdaptiveTrialPlanner(min_trials=1, max_trials=1)

    result = benchmark(planner.run_cell, cfg)
    assert result.trials == 1
    assert result.samples


def test_faults_off_trial_cost(benchmark):
    """The trial with the fault hooks explicitly disabled.

    Mirrors the ``faults_off_overhead`` guard kernel: a clean config
    rides the full hook path (NIC fault checks, transmit tracking test,
    frame-handler prelude) with every hook off — the difference from
    ``test_end_to_end_trial_cost`` is the cost of having a fault
    subsystem at all, which should be indistinguishable from zero.
    """
    cfg = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                             compute_seconds=1e-3, iterations=1, warmup=0,
                             faults=None)

    result = benchmark(run_ptp_benchmark, cfg)
    assert result.samples
    assert result.fault_outcome is None


def _ship_fixture():
    """One realistic shipped result (8 samples x 8 partitions) + config."""
    from repro.core import plan_cells
    base = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                              compute_seconds=1e-4, iterations=8, warmup=0)
    config = plan_cells(base, [1 << 16], [8])[0]
    return config, run_ptp_benchmark(config)


def test_ship_roundtrip_codec(benchmark):
    """Result -> binary wire frame -> queue pickle -> result.

    Mirrors the ``ship_roundtrip_codec`` guard kernel; the guard holds
    it to <= 0.5x ``ship_roundtrip_dict`` in the same run — the codec
    must beat the dict-of-lists shape it replaced by at least 2x.
    """
    import pickle
    from repro.core.wire import decode_result, encode_result
    config, result = _ship_fixture()

    def run():
        frame = pickle.loads(pickle.dumps(encode_result(result)))
        return len(decode_result(config, frame).samples)

    assert benchmark(run) == len(result.samples)


def test_ship_roundtrip_dict(benchmark):
    """The same round trip through the legacy dict fallback shape."""
    import pickle
    from repro.core.pool import result_from_shipped, ship_result
    config, result = _ship_fixture()

    def run():
        shipped = pickle.loads(pickle.dumps(ship_result(result)))
        return len(result_from_shipped(config, shipped).samples)

    assert benchmark(run) == len(result.samples)


def test_cache_hot_get(benchmark, tmp_path):
    """A hot get through the sharded cache's disk tier.

    Mirrors the ``cache_hot_get`` guard kernel (<= 1.1x a bare flat
    read+decode in the same run): envelope validation, shard-path
    assembly, and counter bookkeeping must stay near-free.
    ``memory_entries=0`` forces every get down the disk path.
    """
    from repro.core import ResultCache
    config, result = _ship_fixture()
    cache = ResultCache(tmp_path / "cache", memory_entries=0)
    cache.put(config, result)

    def run():
        return len(cache.get(config).samples)

    assert benchmark(run) == len(result.samples)


def test_pool_warm_vs_cold_sweep(benchmark):
    """A 4-cell sweep on a kept warm pool vs spawn-per-sweep.

    Mirrors the ``pool_warm_sweep`` guard kernel; the guard additionally
    holds it to <= 0.5x ``pool_cold_spawn`` (the same sweep paying two
    process spawns, two boots, and a shutdown per call) measured in the
    same run — the boot-once promise of ``repro.core.pool``.
    """
    from repro.core import WorkerPool, plan_cells, run_cells

    base = PtpBenchmarkConfig(message_bytes=1024, partitions=1,
                              compute_seconds=1e-4, iterations=1, warmup=0)
    cells = plan_cells(base, [1024, 4096], [1, 2])
    pool = WorkerPool(2)
    try:
        run_cells(cells, jobs=2, pool=pool)  # boot untimed

        def run():
            results, stats = run_cells(cells, jobs=2, pool=pool)
            return len(results), stats.warm_hits

        assert benchmark(run) == (4, 4)
    finally:
        pool.shutdown()


def test_service_hot_request(benchmark, tmp_path):
    """One already-cached trial request through a live sweep daemon.

    Mirrors the ``service_hot_request`` guard kernel: the service's
    whole hot path — HTTP round-trip, strict validation, quota
    admission, scheduler dispatch, memory-tier cache hit — for a config
    the daemon has already answered.  No simulation runs.
    """
    from repro.core import ResultCache
    from repro.service import (ServiceClient, SweepScheduler,
                               payload_from_config, serve)

    config, result = _ship_fixture()
    cache = ResultCache(tmp_path / "cache")
    cache.put(config, result)
    scheduler = SweepScheduler(cache=cache, jobs=1, quota=1 << 16,
                               batch_window=0.0, dispatchers=1)
    service = serve(scheduler, port=0)
    client = ServiceClient("http://%s:%d" % service.address,
                           client_id="bench")
    payload = payload_from_config(config)
    try:
        def run():
            return client.trial(payload)["n_samples"]

        assert benchmark(run) == len(result.samples)
    finally:
        service.stop()
