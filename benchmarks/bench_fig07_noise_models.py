"""Figure 7: availability per noise model at 16 partitions, 4% noise.

Paper shape: the single-thread delay model gives the best availability
(only the delayed thread suffers); uniform and Gaussian arrival imbalance
is smaller per thread, so less early-bird opportunity exists and
availability is lower — most visibly at mid/large sizes in our model.
"""

from conftest import emit, full_mode

from repro.core import fig7_noise_models
from repro.core.report import ascii_table, format_bytes


def test_fig07_noise_models(figure_bench):
    panels = figure_bench(fig7_noise_models, quick=not full_mode())
    parts = []
    checks = {}
    for comp, by_model in panels.items():
        sizes = next(iter(by_model.values())).message_sizes
        headers = ["model"] + [format_bytes(m) for m in sizes]
        rows = []
        for model, sweep in by_model.items():
            series = dict(sweep.series("application_availability")[16])
            rows.append([model] + [f"{series[m]:.3f}" for m in sizes])
            checks[(comp, model)] = series
        parts.append(ascii_table(
            headers, rows,
            title=f"Fig 7 — Availability by noise model, 16 partitions, "
                  f"4% noise, {comp * 1e3:g}ms compute"))
    emit("fig07_noise_models", "\n\n".join(parts))

    for comp in panels:
        sizes = sorted(checks[(comp, "single")])
        for m in sizes:
            assert checks[(comp, "single")][m] >= \
                checks[(comp, "uniform")][m] - 0.05
            # Gaussian draws are double-sided (early *and* late threads),
            # which in our model widens the drain window enough to beat
            # the single-delay model at the very largest sizes — a
            # documented deviation; the paper's ordering holds below that.
            if m <= 4 << 20:
                assert checks[(comp, "single")][m] >= \
                    checks[(comp, "gaussian")][m] - 0.05
