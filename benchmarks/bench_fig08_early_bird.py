"""Figure 8: % early-bird communication under uniform noise.

Paper shape: most transfers happen before the equivalent thread join for
small/medium messages; at 10 ms compute the percentage collapses for large
messages (the early-bird window is too small), while 100 ms keeps it high
and makes 8 vs 32 partitions nearly indistinguishable; two partitions
already exploit early-bird effectively.
"""

from conftest import emit, full_mode

from repro.core import fig8_early_bird, metric_table


def test_fig08_early_bird(figure_bench):
    panels = figure_bench(fig8_early_bird, quick=not full_mode())
    parts = []
    for comp, sweep in panels.items():
        parts.append(metric_table(
            sweep, "early_bird_fraction",
            title=f"Fig 8 — Early-bird communication (%), uniform 4% "
                  f"noise, {comp * 1e3:g}ms compute"))
    emit("fig08_early_bird", "\n\n".join(parts))

    fast, slow = panels[0.010], panels[0.100]
    sizes = fast.message_sizes
    small, huge = sizes[0], sizes[-1]
    assert fast.value("early_bird_fraction", small, 8) > 0.9
    assert fast.value("early_bird_fraction", huge, 8) < 0.5
    assert slow.value("early_bird_fraction", huge, 8) > 0.8
    assert abs(slow.value("early_bird_fraction", small, 8)
               - slow.value("early_bird_fraction", small, 32)) < 0.1
    assert fast.value("early_bird_fraction", small, 2) > 0.8
