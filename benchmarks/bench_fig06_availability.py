"""Figure 6: application availability, single-thread delay model, 4% noise.

Paper shape: in a noisy environment more partitions free more CPU time for
small messages; 16 partitions beat 32 (spillover); availability drops off
past ~4 MiB, and 100 ms compute shifts the drop-off to larger messages.
"""

from conftest import emit, full_mode

from repro.core import fig6_availability, metric_table


def test_fig06_availability(figure_bench):
    panels = figure_bench(fig6_availability, quick=not full_mode())
    text_parts = []
    for comp, sweep in panels.items():
        text_parts.append(metric_table(
            sweep, "application_availability",
            title=f"Fig 6 — Application availability, single-thread delay "
                  f"4%, {comp * 1e3:g}ms compute"))
    emit("fig06_availability", "\n\n".join(text_parts))

    fast = panels[0.010]
    sizes = fast.message_sizes
    small, huge = sizes[0], sizes[-1]
    mid = min(sizes, key=lambda m: abs(m - (1 << 20)))
    assert fast.value("application_availability", small, 16) > \
        fast.value("application_availability", small, 2)
    assert fast.value("application_availability", small, 16) > \
        fast.value("application_availability", small, 32)
    assert fast.value("application_availability", huge, 16) < \
        fast.value("application_availability", mid, 16)
    slow = panels[0.100]
    assert slow.value("application_availability", huge, 16) > \
        fast.value("application_availability", huge, 16)
