"""Figure 9: Sweep3D communication throughput, 10 ms compute, 4% single
noise, hot cache.

Paper shape: partitioned ≈ point-to-point for small/medium messages; the
gap grows with message size; multi-threaded MULTIPLE falls below
single-threaded; partitioned ends up an order of magnitude above
single-threaded at the largest size (15.1x on Niagara — this factor feeds
the Figure 13 projection).
"""

from conftest import emit, full_mode

from repro.core import series_table
from repro.patterns import (CommMode, PatternConfig, Sweep3DGrid,
                            throughput_series)

GRID = Sweep3DGrid(3, 3)
SIZES_QUICK = (65536, 1 << 20, 4 << 20, 16 << 20)
SIZES_FULL = tuple(64 * 4 ** k for k in range(5, 10))


def _series(compute_seconds: float):
    base = PatternConfig(mode=CommMode.SINGLE, threads=16,
                         message_bytes=SIZES_QUICK[0],
                         compute_seconds=compute_seconds,
                         steps=4 if not full_mode() else 8,
                         iterations=2 if not full_mode() else 5,
                         warmup=1)
    sizes = SIZES_FULL if full_mode() else SIZES_QUICK
    return throughput_series("sweep3d", base, sizes, grid=GRID)


def test_fig09_sweep3d_10ms(figure_bench):
    series = figure_bench(_series, 0.010)
    text = series_table(
        series, value_label="GB/s", scale=1e-9,
        title="Fig 9 — Sweep3D comm throughput, 16 threads, 10ms compute, "
              "4% single noise")
    emit("fig09_sweep3d_10ms", text)

    single = dict(series["single"])
    multi = dict(series["multi"])
    part = dict(series["partitioned"])
    sizes = sorted(single)
    # Divergence grows with size; partitioned dominates at the top end.
    assert part[sizes[-1]] / single[sizes[-1]] > \
        part[sizes[0]] / single[sizes[0]]
    assert part[sizes[-1]] > 5 * single[sizes[-1]]
    # MULTIPLE falls below single-threaded somewhere in the range.
    assert any(multi[m] < single[m] for m in sizes)
