"""Ablation: the 32-partition socket-spillover spike (§4.2 text).

Zeroing the inter-socket injection penalty and the remote lock-bounce
penalty removes the spike the paper attributes to threads spilling onto
the second socket — confirming the model's mechanism matches the paper's
explanation, and quantifying each knob's share.
"""

from conftest import emit

from repro.core import PtpBenchmarkConfig, ascii_table, run_ptp_benchmark
from repro.machine import NIAGARA_NODE
from repro.mpi import DEFAULT_COSTS


def _overhead(m, n, spec=NIAGARA_NODE, costs=DEFAULT_COSTS):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n,
                             compute_seconds=0.002, iterations=3, warmup=1,
                             spec=spec, costs=costs)
    return run_ptp_benchmark(cfg).overhead.mean


def test_ablation_spillover(figure_bench):
    def run():
        variants = {
            "baseline": (NIAGARA_NODE, DEFAULT_COSTS),
            "no NUMA injection penalty": (
                NIAGARA_NODE.with_overrides(inter_socket_penalty=0.0),
                DEFAULT_COSTS),
            "no remote lock penalty": (
                NIAGARA_NODE,
                DEFAULT_COSTS.with_overrides(lock_remote_penalty=0.0)),
            "neither penalty": (
                NIAGARA_NODE.with_overrides(inter_socket_penalty=0.0),
                DEFAULT_COSTS.with_overrides(lock_remote_penalty=0.0)),
        }
        out = {}
        for name, (spec, costs) in variants.items():
            out[name] = (_overhead(256, 16, spec, costs),
                         _overhead(256, 32, spec, costs))
        return out

    results = figure_bench(run)
    rows = [[name, f"{v16:.1f}", f"{v32:.1f}", f"{v32 / v16:.2f}"]
            for name, (v16, v32) in results.items()]
    text = ascii_table(
        ["variant", "16 parts (x)", "32 parts (x)", "32/16 ratio"],
        rows, title="Ablation — socket-spillover spike at 256 B")
    emit("ablation_spillover", text)

    base16, base32 = results["baseline"]
    none16, none32 = results["neither penalty"]
    assert base32 / base16 > 2.5           # spike present
    assert none32 / none16 < 2.5           # spike gone
    assert none32 < base32 / 2
