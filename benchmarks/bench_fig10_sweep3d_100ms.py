"""Figure 10: Sweep3D communication throughput, 100 ms compute.

Paper shape: same trends as Figure 9 but throughput drops with the larger
compute, and the point where partitioned diverges from point-to-point
moves to larger message sizes.
"""

from bench_fig09_sweep3d_10ms import _series
from conftest import emit

from repro.core import series_table


def test_fig10_sweep3d_100ms(figure_bench):
    fast = _series(0.010)
    slow = figure_bench(_series, 0.100)
    text = series_table(
        slow, value_label="GB/s", scale=1e-9,
        title="Fig 10 — Sweep3D comm throughput, 16 threads, 100ms "
              "compute, 4% single noise")
    emit("fig10_sweep3d_100ms", text)

    single = dict(slow["single"])
    part = dict(slow["partitioned"])
    sizes = sorted(single)
    # Throughput drops relative to the 10 ms panel.
    fast_part = dict(fast["partitioned"])
    assert all(part[m] < fast_part[m] for m in sizes)
    # Partitioned still wins at the top end, by a smaller factor
    # (the divergence point moved right).
    top = sizes[-1]
    assert part[top] > 2 * single[top]
    assert part[top] / single[top] < \
        fast_part[top] / dict(fast["single"])[top]
