"""Figure 4: overhead of partitioned vs point-to-point, hot and cold cache.

Paper shape: ~1x–1.6x for one partition; overhead grows with partition
count for small (latency-bound) messages and approaches 1x for large ones;
32 partitions spike far above 16 (socket spillover, up to 59.4x on
Niagara); cold cache reads amortize the ratio downward.
"""

from conftest import emit, full_mode

from repro.core import fig4_overhead, metric_table


def test_fig04_overhead(figure_bench):
    panels = figure_bench(fig4_overhead, quick=not full_mode())
    text_parts = []
    for cache, sweep in panels.items():
        text_parts.append(metric_table(
            sweep, "overhead",
            title=f"Fig 4 — Overhead (x), {cache} cache, 10ms compute, "
                  f"no noise"))
    text = "\n\n".join(text_parts)
    emit("fig04_overhead", text)

    hot = panels["hot"]
    sizes = hot.message_sizes
    small, large = sizes[0], sizes[-1]
    # Shape assertions mirroring the paper's §4.2 claims.
    assert 1.0 <= hot.value("overhead", small, 1) < 2.0
    assert abs(hot.value("overhead", large, 1) - 1.0) < 0.15
    assert hot.value("overhead", small, 16) > hot.value("overhead", small, 2)
    assert hot.value("overhead", small, 32) > \
        2.5 * hot.value("overhead", small, 16)
