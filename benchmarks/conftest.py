"""Shared infrastructure for the figure-reproduction benches.

Every bench regenerates one figure of the paper: it runs the experiment
through the public API, prints the figure's series as a text table (the
"same rows the paper reports"), archives the table under
``benchmarks/output/``, and registers the wall time with pytest-benchmark.

Set ``REPRO_FULL=1`` to run the paper's full grids instead of the quick
ones (minutes instead of seconds).
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Where rendered tables are archived for EXPERIMENTS.md.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def full_mode() -> bool:
    """True when the full paper grids were requested."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def emit(name: str, text: str) -> None:
    """Print a figure table and archive it."""
    banner = f"\n=== {name} {'(full)' if full_mode() else '(quick)'} ==="
    print(banner)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def figure_bench(benchmark):
    """Run a figure driver exactly once under pytest-benchmark timing.

    The driver is expensive (a full simulated experiment), so we measure a
    single round rather than letting pytest-benchmark loop it.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
