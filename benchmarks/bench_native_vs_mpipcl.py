"""Extension: MPIPCL vs an idealized native partitioned implementation.

The paper (§4.6, §6) repeatedly notes its results are bounded by MPIPCL —
a layered library on top of point-to-point — and that a well-optimized
native implementation should do better.  Our substrate carries both: the
MPIPCL model (per-partition internal isends, lock-protected pready) and an
idealized native one (lock-free doorbell pready, RDMA-write partitions,
no per-partition rendezvous).  This bench quantifies the headroom the
paper conjectures.
"""

from conftest import emit

from repro.core import (PtpBenchmarkConfig, ascii_table, format_bytes,
                        run_ptp_benchmark)
from repro.noise import UniformNoise
from repro.partitioned import IMPL_MPIPCL, IMPL_NATIVE


def _overhead(m, n, impl):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n, impl=impl,
                             compute_seconds=0.002, iterations=3, warmup=1)
    return run_ptp_benchmark(cfg).overhead.mean


def _availability(m, n, impl):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n, impl=impl,
                             compute_seconds=0.010,
                             noise=UniformNoise(4.0),
                             iterations=5, warmup=1)
    return run_ptp_benchmark(cfg).application_availability.mean


def test_native_vs_mpipcl(figure_bench):
    sizes = (256, 65536, 1 << 20, 16 << 20)

    def run():
        out = {}
        for m in sizes:
            out[m] = {
                "mpipcl_ovh": _overhead(m, 16, IMPL_MPIPCL),
                "native_ovh": _overhead(m, 16, IMPL_NATIVE),
                "mpipcl_avail": _availability(m, 16, IMPL_MPIPCL),
                "native_avail": _availability(m, 16, IMPL_NATIVE),
            }
        return out

    results = figure_bench(run)
    rows = []
    for m, r in results.items():
        rows.append([
            format_bytes(m),
            f"{r['mpipcl_ovh']:.2f}", f"{r['native_ovh']:.2f}",
            f"{r['mpipcl_avail']:.3f}", f"{r['native_avail']:.3f}",
        ])
    text = ascii_table(
        ["message", "MPIPCL ovh (x)", "native ovh (x)",
         "MPIPCL avail", "native avail"],
        rows,
        title="Extension — MPIPCL vs idealized native, 16 partitions")
    emit("native_vs_mpipcl", text)

    for m, r in results.items():
        # A native implementation never does worse...
        assert r["native_ovh"] <= r["mpipcl_ovh"] * 1.05
        assert r["native_avail"] >= r["mpipcl_avail"] - 0.05
    # ...and for latency-bound small messages the lock-free doorbell
    # shaves a large share of the per-partition cost.
    assert results[256]["native_ovh"] < 0.6 * results[256]["mpipcl_ovh"]
