"""Ablation: partition granularity at a fixed thread count.

The paper maps one thread to one partition throughout (§2.1) but notes the
standard allows several partitions per thread.  This ablation holds the
team at 8 threads and splits the same 4 MiB message ever finer — the
partition-size guidance question ("how should I size partitions?") posed
directly: finer partitions start transfers earlier within each thread's
pready loop but pay more per-message overhead.
"""

from conftest import emit

from repro.core import (PtpBenchmarkConfig, ascii_table,
                        run_ptp_benchmark)
from repro.noise import UniformNoise

THREADS = 8
MESSAGE = 4 << 20


def _result(partitions):
    cfg = PtpBenchmarkConfig(
        message_bytes=MESSAGE, partitions=partitions,
        partitions_per_thread=partitions // THREADS,
        compute_seconds=0.010, noise=UniformNoise(4.0),
        iterations=3, warmup=1)
    return run_ptp_benchmark(cfg)


def test_ablation_granularity(figure_bench):
    grid = (8, 16, 32, 64, 128)

    def run():
        return {n: _result(n) for n in grid}

    results = figure_bench(run)
    rows = []
    for n, res in results.items():
        rows.append([
            str(n), str(n // THREADS),
            f"{res.overhead.mean:.2f}",
            f"{res.perceived_bandwidth.mean / 1e9:.1f}",
            f"{res.application_availability.mean:.3f}",
            f"{res.early_bird_fraction.mean * 100:.1f}",
        ])
    text = ascii_table(
        ["partitions", "per thread", "overhead (x)", "pbw GB/s",
         "availability", "early-bird %"],
        rows,
        title=f"Ablation — partition granularity, {THREADS} threads, "
              f"4 MiB, 10ms, uniform 4%")
    emit("ablation_granularity", text)

    # Finer partitions cost more network overhead...
    assert results[128].overhead.mean > results[8].overhead.mean
    # ...while availability stays in the same band (the threads, not the
    # partition count, set the overlap window).
    assert abs(results[128].application_availability.mean
               - results[8].application_availability.mean) < 0.25
