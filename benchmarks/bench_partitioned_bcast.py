"""Extension: pipelined partitioned broadcast (the paper's §6.1 pointer to
partitioned collectives, Holmes et al.).

Scenario: the root *produces* partitions sequentially (a pipeline stage,
a file reader, an accelerator stream) while a binomial tree fans the data
out to 8 ranks.  The partitioned collective streams each partition as it
is produced; the classic collective must wait for the full buffer.
"""

from conftest import emit

from repro.core import ascii_table, format_bytes
from repro.mpi import Cluster
from repro.partitioned import PartitionedBroadcast

NRANKS = 8
PARTITIONS = 8
PRODUCE = 5e-4  # s per partition at the root


def _pipelined_time(nbytes):
    def program(ctx):
        pb = PartitionedBroadcast(ctx, 0, nbytes, PARTITIONS)
        yield from pb.init(ctx.main)
        yield from pb.start(ctx.main)
        if ctx.rank == 0:
            for i in range(PARTITIONS):
                yield from ctx.main.compute(PRODUCE)
                yield from pb.pready(ctx.main, i)
        yield from pb.wait(ctx.main)
        return ctx.sim.now

    return max(Cluster(nranks=NRANKS).run(program))


def _classic_time(nbytes):
    def program(ctx):
        if ctx.rank == 0:
            for _ in range(PARTITIONS):
                yield from ctx.main.compute(PRODUCE)
        yield from ctx.comm.bcast(ctx.main, 0, nbytes,
                                  "x" if ctx.rank == 0 else None)
        return ctx.sim.now

    return max(Cluster(nranks=NRANKS).run(program))


def test_partitioned_bcast(figure_bench):
    sizes = (1 << 20, 4 << 20, 16 << 20)

    def run():
        return {m: (_pipelined_time(m), _classic_time(m)) for m in sizes}

    results = figure_bench(run)
    rows = []
    for m, (pipe, classic) in results.items():
        rows.append([format_bytes(m), f"{pipe * 1e3:.2f}",
                     f"{classic * 1e3:.2f}", f"{classic / pipe:.2f}x"])
    text = ascii_table(
        ["buffer", "pipelined (ms)", "classic (ms)", "gain"],
        rows,
        title=f"Extension — partitioned bcast, {NRANKS} ranks, "
              f"{PARTITIONS} partitions produced at "
              f"{PRODUCE * 1e3:g}ms each")
    emit("partitioned_bcast", text)

    for m, (pipe, classic) in results.items():
        assert pipe < classic
    # The gain grows with buffer size (more transfer to overlap).
    gains = [results[m][1] / results[m][0] for m in sizes]
    assert gains[-1] > gains[0] * 0.9
