"""Figure 13: expected speedup from porting SNAP-C to MPI Partitioned.

The SNAP proxy is profiled with the mpiP-style profiler at each node
count; the measured MPI-time fraction feeds the Amdahl projection with the
15.1x Sweep3D communication speedup.

Paper shape: MPI send/receive is 1–6% of runtime at small node counts
(small expected gains), ~20% at 128 nodes and ~55% at 256 nodes, giving
the large projected speedups at scale (~2x at 256 nodes).
"""

from conftest import emit, full_mode

from repro.proxy import SnapConfig, snap_projection


def test_fig13_snap_projection(figure_bench):
    counts = (2, 4, 8, 16, 32, 64, 128, 256) if full_mode() \
        else (2, 8, 32, 128, 256)
    proj = figure_bench(
        snap_projection, node_counts=counts,
        base_config=SnapConfig(nodes=counts[0]))
    emit("fig13_snap_projection", proj.format())

    rows = {r.nodes: r for r in proj.rows}
    # Small node counts: MPI is a single-digit percentage of runtime.
    assert rows[2].mpi_percent < 8.0
    assert rows[2].projected_speedup < 1.1
    # MPI share and projected speedup both grow monotonically.
    speedups = [r.projected_speedup for r in proj.rows]
    assert speedups == sorted(speedups)
    # At 256 nodes MPI dominates a large share and the projection is
    # worthwhile (paper: 54.5% -> ~2x).
    assert rows[256].mpi_percent > 30.0
    assert rows[256].projected_speedup > 1.5
