"""Figure 5: perceived bandwidth under uniform noise, hot cache.

Paper shape: 0% noise gives a traditional bandwidth curve; with noise the
perceived bandwidth rises past the physical link rate, peaks near ~1 MiB,
then declines sharply once a single partition saturates the wire; higher
partition counts raise the peak; 16→32 declines at 10 ms compute but not
at 100 ms.
"""

from conftest import emit, full_mode

from repro.core import fig5_perceived_bandwidth, metric_table


def test_fig05_perceived_bandwidth(figure_bench):
    panels = figure_bench(fig5_perceived_bandwidth, quick=not full_mode())
    text_parts = []
    for (pct, comp), sweep in panels.items():
        text_parts.append(metric_table(
            sweep, "perceived_bandwidth",
            title=f"Fig 5 — Perceived bandwidth (GB/s), uniform "
                  f"{pct:g}% noise, {comp * 1e3:g}ms compute"))
    emit("fig05_perceived_bw", "\n\n".join(text_parts))

    noisy = panels[(4.0, 0.010)]
    sizes = noisy.message_sizes
    mid = min(sizes, key=lambda m: abs(m - (1 << 20)))
    # Rise → peak → decline, and the peak beats the wire rate.
    assert noisy.value("perceived_bandwidth", mid, 16) > \
        noisy.value("perceived_bandwidth", sizes[0], 16)
    assert noisy.value("perceived_bandwidth", mid, 16) > \
        noisy.value("perceived_bandwidth", sizes[-1], 16)
    assert noisy.value("perceived_bandwidth", mid, 16) > 11e9
    # 16 -> 32 partitions declines at 10 ms...
    assert noisy.value("perceived_bandwidth", mid, 32) < \
        noisy.value("perceived_bandwidth", mid, 16)
    # ...but not at 100 ms.
    slow = panels[(4.0, 0.100)]
    assert slow.value("perceived_bandwidth", mid, 32) >= \
        0.95 * slow.value("perceived_bandwidth", mid, 16)
