"""Ablation: the eager/rendezvous threshold.

The small-message overhead knee of Figure 4 sits where per-partition
messages stop being latency-bound relative to the single send.  Moving
the eager threshold moves protocol boundaries for partitions vs whole
messages; this ablation shows the overhead ratio's sensitivity, which is
why DESIGN.md lists the threshold as a calibrated parameter.
"""

from conftest import emit

from repro.core import (PtpBenchmarkConfig, ascii_table, format_bytes,
                        run_ptp_benchmark)
from repro.network import NIAGARA_EDR


def _overhead(m, n, threshold):
    cfg = PtpBenchmarkConfig(
        message_bytes=m, partitions=n, compute_seconds=0.002,
        iterations=3, warmup=1,
        inter_node=NIAGARA_EDR.with_overrides(eager_threshold=threshold))
    return run_ptp_benchmark(cfg).overhead.mean


def test_ablation_protocol(figure_bench):
    thresholds = (4 * 1024, 16 * 1024, 64 * 1024)
    sizes = (16384, 65536, 262144)

    def run():
        return {
            t: {m: _overhead(m, 8, t) for m in sizes}
            for t in thresholds
        }

    results = figure_bench(run)
    rows = []
    for t, by_size in results.items():
        rows.append([format_bytes(t)]
                    + [f"{by_size[m]:.2f}" for m in sizes])
    text = ascii_table(
        ["eager threshold"] + [format_bytes(m) for m in sizes], rows,
        title="Ablation — eager/rendezvous threshold, overhead (x), "
              "8 partitions")
    emit("ablation_protocol", text)

    # The knee responds to the threshold: with a 64 KiB threshold the
    # 64 KiB message is eager whole but its 8 KiB partitions are too,
    # whereas at a 4 KiB threshold everything rendezvous — ratios differ.
    spread = [results[t][65536] for t in thresholds]
    assert max(spread) > 1.15 * min(spread)
