"""Ablation: hot vs cold cache (§3.4 / §4.2).

The paper observes *lower* overhead ratios with a cold cache because the
DRAM read cost lands on both the partitioned path (parallel per-thread
bounce-buffer copies) and the single-send path (one serial copy), and
amortizes the per-partition overheads.  The effect lives entirely in the
eager regime — rendezvous transfers are zero-copy — which this ablation
demonstrates by sweeping across the eager threshold.
"""

from conftest import emit

from repro.core import (COLD, HOT, PtpBenchmarkConfig, ascii_table,
                        format_bytes, run_ptp_benchmark)


def _overhead(m, n, cache):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n, cache=cache,
                             compute_seconds=0.002, iterations=3, warmup=1)
    return run_ptp_benchmark(cfg).overhead.mean


def test_ablation_cache(figure_bench):
    sizes = (1024, 4096, 16384, 65536, 1 << 20)

    def run():
        return {m: (_overhead(m, 16, HOT), _overhead(m, 16, COLD))
                for m in sizes}

    results = figure_bench(run)
    rows = [[format_bytes(m), f"{hot:.2f}", f"{cold:.2f}",
             f"{cold / hot:.2f}"]
            for m, (hot, cold) in results.items()]
    text = ascii_table(["message", "hot (x)", "cold (x)", "cold/hot"],
                       rows,
                       title="Ablation — cache state, 16 partitions")
    emit("ablation_cache", text)

    # In the eager regime the cold ratio sits at or below hot...
    for m in (4096, 16384):
        hot, cold = results[m]
        assert cold <= hot * 1.05
    # ...and the amortization is material at the threshold sizes.
    hot16k, cold16k = results[16384]
    assert cold16k < hot16k * 0.9
    # Past the eager threshold both paths are zero-copy: no difference.
    hot1m, cold1m = results[1 << 20]
    assert abs(cold1m - hot1m) / hot1m < 0.15
