"""Figure 12: Halo3D communication throughput, 100 ms compute.

Paper shape: as Figure 11 but with a smaller relative oversubscription
penalty — large compute hides thread time-slicing better.
"""

from bench_fig11_halo3d_10ms import _series
from conftest import emit

from repro.core import series_table


def test_fig12_halo3d_100ms(figure_bench):
    panel_a = figure_bench(_series, 8, 0.100)
    panel_b = _series(64, 0.100)
    text = "\n\n".join([
        series_table(panel_a, value_label="GB/s", scale=1e-9,
                     title="Fig 12a — Halo3D comm throughput, 8 threads "
                           "(4 partitions/face), 100ms"),
        series_table(panel_b, value_label="GB/s", scale=1e-9,
                     title="Fig 12b — Halo3D comm throughput, 64 threads "
                           "oversubscribed (16 partitions/face), 100ms"),
    ])
    emit("fig12_halo3d_100ms", text)

    sizes = sorted(dict(panel_a["single"]))
    # Panel (a): modes remain indistinguishable at 4 partitions.
    for m in sizes:
        values = [dict(panel_a[mode])[m]
                  for mode in ("single", "multi", "partitioned")]
        assert max(values) < 2.0 * min(values)
    # Partitioned stays at or above multi in panel (b).
    top = sizes[-1]
    assert dict(panel_b["partitioned"])[top] >= \
        0.9 * dict(panel_b["multi"])[top]
