"""Ablation: the MULTIPLE-mode library lock and progress contention.

The design claim behind the pattern results: what makes multi-threaded
point-to-point lose to partitioned communication is lock traffic — the
per-call library lock plus blocked waiters bouncing the progress lock.
Zeroing those costs should close most of the Sweep3D multi-vs-partitioned
gap; this bench quantifies how much.
"""

from conftest import emit

from repro.core import ascii_table
from repro.mpi import DEFAULT_COSTS
from repro.patterns import (CommMode, PatternConfig, Sweep3DGrid,
                            run_sweep3d)

GRID = Sweep3DGrid(3, 3)
NOLOCK = DEFAULT_COSTS.with_overrides(lock_hold=0.0,
                                      lock_remote_penalty=0.0,
                                      progress_contention=0.0)


def _thpt(mode, costs):
    cfg = PatternConfig(mode=mode, threads=16, message_bytes=1 << 20,
                        compute_seconds=0.010, steps=4, iterations=2,
                        warmup=1, costs=costs)
    return run_sweep3d(cfg, GRID).mean_throughput


def test_ablation_lock(figure_bench):
    def run():
        return {
            ("multi", "baseline"): _thpt(CommMode.MULTI, DEFAULT_COSTS),
            ("multi", "no locks"): _thpt(CommMode.MULTI, NOLOCK),
            ("partitioned", "baseline"): _thpt(CommMode.PARTITIONED,
                                               DEFAULT_COSTS),
            ("partitioned", "no locks"): _thpt(CommMode.PARTITIONED,
                                               NOLOCK),
            ("single", "baseline"): _thpt(CommMode.SINGLE, DEFAULT_COSTS),
        }

    results = figure_bench(run)
    rows = [[f"{mode} / {variant}", f"{v / 1e9:.2f}"]
            for (mode, variant), v in results.items()]
    text = ascii_table(["configuration", "GB/s"], rows,
                       title="Ablation — library lock & progress "
                             "contention, Sweep3D 1 MiB, 16 threads")
    emit("ablation_lock", text)

    multi_base = results[("multi", "baseline")]
    multi_nolock = results[("multi", "no locks")]
    part_base = results[("partitioned", "baseline")]
    single = results[("single", "baseline")]
    # The lock is what sinks MULTI below single-threaded...
    assert multi_base < single
    # ...because removing it recovers a large factor...
    assert multi_nolock > 2.0 * multi_base
    # ...while partitioned barely cares (its receivers poll lock-free).
    part_nolock = results[("partitioned", "no locks")]
    assert part_nolock < 1.5 * part_base
