"""Figure 11: Halo3D communication throughput, 10 ms compute, 4% single
noise, hot cache.

Panels: (a) 8 threads → 2x2 = 4 partitions per face; (b) 64 threads
(oversubscribed on 40 cores) → 4x4 = 16 partitions per face.

Paper shape: at 4 partitions every threading mode performs about the same;
at 64 threads the modes separate, multi-threaded point-to-point landing
close to partitioned at large sizes, and oversubscription costs tens of
percent of wall throughput.
"""

from conftest import emit, full_mode

from repro.core import series_table
from repro.patterns import (CommMode, Halo3DGrid, PatternConfig,
                            throughput_series)

GRID = Halo3DGrid(2, 2, 2)
SIZES_QUICK = (65536, 1 << 20, 4 << 20, 16 << 20)
SIZES_FULL = tuple(64 * 4 ** k for k in range(5, 10))


def _series(threads: int, compute_seconds: float):
    base = PatternConfig(mode=CommMode.SINGLE, threads=threads,
                         message_bytes=SIZES_QUICK[0],
                         compute_seconds=compute_seconds,
                         steps=2 if not full_mode() else 4,
                         iterations=2 if not full_mode() else 5,
                         warmup=1)
    sizes = SIZES_FULL if full_mode() else SIZES_QUICK
    return throughput_series("halo3d", base, sizes, grid=GRID)


def test_fig11_halo3d_10ms(figure_bench):
    panel_a = figure_bench(_series, 8, 0.010)
    panel_b = _series(64, 0.010)
    text = "\n\n".join([
        series_table(panel_a, value_label="GB/s", scale=1e-9,
                     title="Fig 11a — Halo3D comm throughput, 8 threads "
                           "(4 partitions/face), 10ms"),
        series_table(panel_b, value_label="GB/s", scale=1e-9,
                     title="Fig 11b — Halo3D comm throughput, 64 threads "
                           "oversubscribed (16 partitions/face), 10ms"),
    ])
    emit("fig11_halo3d_10ms", text)

    # Panel (a): all modes within a narrow band.
    sizes = sorted(dict(panel_a["single"]))
    for m in sizes:
        values = [dict(panel_a[mode])[m]
                  for mode in ("single", "multi", "partitioned")]
        assert max(values) < 2.0 * min(values)
    # Panel (b): partitioned ahead of multi, close at the largest size.
    top = sizes[-1]
    assert dict(panel_b["partitioned"])[top] > dict(panel_b["multi"])[top]
    assert dict(panel_b["partitioned"])[top] < \
        2.0 * dict(panel_b["multi"])[top]
