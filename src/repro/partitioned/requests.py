"""Partitioned request state machines (MPI 4.0 §4.2 semantics).

The lifecycle mirrors the standard:

``psend_init``/``precv_init`` (serial code, matching happens **here**)
→ ``start`` (arm an epoch) → threads call ``pready(i)`` / poll
``parrived(i)`` → ``wait`` (complete the epoch) → ``start`` again (buffer
reuse), exactly the flow of the paper's Figure 1.

Two implementations share these state machines:

* ``IMPL_MPIPCL`` — the layered library the paper evaluates: every
  ``pready`` issues an internal point-to-point send (lock-protected under
  ``MPI_THREAD_MULTIPLE``, eager or rendezvous by partition size).
* ``IMPL_NATIVE`` — an idealized native implementation (our extension,
  probing the paper's "what a well-optimized implementation could provide"
  remarks): lock-free ``pready`` with a hardware-doorbell cost and
  RDMA-write partitions that never need a rendezvous round trip.

Partition counts must match between the two sides (an MPIPCL restriction
the paper notes in §6.1); we verify it at bind time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import PartitionError, RequestStateError
from ..obs.kinds import (PART_ARRIVED, PART_BUFFER_READ, PART_BUFFER_WRITE,
                         PART_PARRIVED, PART_PREADY,
                         PART_RECV_EPOCH_COMPLETE, PART_RECV_START,
                         PART_SEND_EPOCH_COMPLETE, PART_SEND_INJECTED,
                         PART_SEND_START, PART_START, PART_WAIT)
from ..sim import Event
from ..mpi.protocol import Frame, FrameKind

__all__ = ["IMPL_MPIPCL", "IMPL_NATIVE", "PartitionedSendRequest",
           "PartitionedRecvRequest", "partition_sizes"]

IMPL_MPIPCL = "mpipcl"
IMPL_NATIVE = "native"
_IMPLS = (IMPL_MPIPCL, IMPL_NATIVE)


def partition_sizes(nbytes: int, partitions: int) -> List[int]:
    """Split ``nbytes`` into ``partitions`` near-equal chunks.

    Every partition gets ``nbytes // partitions`` bytes and the first
    ``nbytes % partitions`` partitions get one extra byte, so sizes differ
    by at most one byte and sum exactly to ``nbytes``.
    """
    if partitions < 1:
        raise PartitionError(f"partitions must be >= 1, got {partitions}")
    if nbytes < 0:
        raise PartitionError(f"negative buffer size: {nbytes}")
    if nbytes < partitions:
        raise PartitionError(
            f"cannot split {nbytes} B into {partitions} partitions")
    base, rem = divmod(nbytes, partitions)
    return [base + (1 if i < rem else 0) for i in range(partitions)]


class _PartitionedBase:
    """State shared by both sides of a partitioned transfer."""

    #: ``"send"`` or ``"recv"``; set by the concrete subclass and carried
    #: on every lifecycle event this request emits.
    side = ""

    def __init__(self, proc, comm_id: int, peer_rank: int, tag: int,
                 nbytes: int, partitions: int, impl: str,
                 bufkey: Optional[str]):
        if impl not in _IMPLS:
            raise PartitionError(f"unknown implementation {impl!r}; "
                                 f"choose from {_IMPLS}")
        self.proc = proc
        self.sim = proc.sim
        self.comm_id = comm_id
        self.peer_rank = peer_rank
        self.tag = tag
        self.nbytes = nbytes
        self.partitions = partitions
        self.sizes = partition_sizes(nbytes, partitions)
        self.impl = impl
        self.bufkey = bufkey or (f"r{proc.rank}.c{comm_id}.t{tag}."
                                 f"{type(self).__name__}")
        self.epoch = 0
        self.active = False
        self.peer: Any = None
        self._epoch_done: Optional[Event] = None
        #: Triggers when init-time matching binds us to the remote half;
        #: start() blocks on it, as a real first transfer would block on
        #: the runtime's internal handshake.
        self._bound_event: Event = Event(self.sim)

    # -- binding (performed by the cluster registry at init time) --------
    def bind(self, peer: "_PartitionedBase") -> None:
        """Pair this request with its remote counterpart.

        This is the once-only matching step; the MPIPCL restriction that
        both sides declare the same partition count is enforced here.
        """
        if self.peer is not None:
            raise RequestStateError("partitioned request already bound")
        if peer.partitions != self.partitions:
            raise PartitionError(
                f"partition count mismatch: {self.partitions} vs "
                f"{peer.partitions} (MPIPCL requires equal counts)")
        if peer.nbytes != self.nbytes:
            raise PartitionError(
                f"buffer size mismatch: {self.nbytes} vs {peer.nbytes}")
        if peer.impl != self.impl:
            raise PartitionError(
                f"implementation mismatch: {self.impl} vs {peer.impl}")
        self.peer = peer
        self._bound_event.succeed(peer)

    @property
    def bound(self) -> bool:
        """True once init-time matching paired this request with its peer."""
        return self.peer is not None

    def _await_bound(self):
        """Generator: block until the remote init half has been matched."""
        if not self.bound:
            yield self._bound_event

    def _require_inactive(self) -> None:
        if self.active:
            raise RequestStateError(
                "start() on an active partitioned request (wait first)")

    def _check_partition(self, partition: int) -> None:
        if not (0 <= partition < self.partitions):
            raise PartitionError(
                f"partition {partition} out of range "
                f"[0, {self.partitions})")
        if not self.active:
            raise RequestStateError(
                "partition operation outside an active epoch (call start)")

    def wait(self, tc):
        """Generator: complete the current epoch (``MPI_Wait``).

        Charges one call overhead, then blocks until every partition of the
        epoch has been transferred; returns the completion time.
        """
        self.proc.obs.emit(PART_WAIT, self.sim.now, self.proc.rank,
                           self.side, self.epoch, self)
        if self._epoch_done is None:
            raise RequestStateError("wait() before start()")
        yield from self.proc._mpi_entry(tc, self.proc.costs.call_overhead)
        done = self._epoch_done
        if not done.triggered:
            # A blocked MPI_Wait spin-polls like any other blocking call
            # and contributes progress contention under MULTIPLE.
            yield from self.proc.blocking_wait(tc, done)
        self.active = False
        return done.value

    def test(self) -> bool:
        """Instantaneous epoch-completion poll (``MPI_Test``)."""
        return self._epoch_done is not None and self._epoch_done.triggered


class PartitionedSendRequest(_PartitionedBase):
    """Send side: ``psend_init`` → ``start`` → ``pready``* → ``wait``."""

    side = "send"

    def __init__(self, proc, comm_id: int, dest: int, tag: int,
                 nbytes: int, partitions: int, impl: str = IMPL_MPIPCL,
                 bufkey: Optional[str] = None):
        super().__init__(proc, comm_id, dest, tag, nbytes, partitions,
                         impl, bufkey)
        self._ready: List[bool] = []
        self._injected = 0
        self._injected_partitions: Set[int] = set()

    @property
    def dest(self) -> int:
        """Destination rank."""
        return self.peer_rank

    def start(self, tc):
        """Generator: arm a new send epoch."""
        self.proc.obs.emit(PART_START, self.sim.now, self.proc.rank,
                           self.side, self.epoch, self)
        yield from self._await_bound()
        self._require_inactive()
        if self._epoch_done is not None and not self._epoch_done.triggered:
            raise RequestStateError("start() before previous epoch's wait()")
        self.epoch += 1
        self.active = True
        self._ready = [False] * self.partitions
        self._injected = 0
        self._injected_partitions.clear()
        self._epoch_done = Event(self.sim)
        cost = (self.proc.costs.start_cost
                + self.partitions * self.proc.costs.start_cost_per_partition)
        yield from self.proc._mpi_entry(tc, cost)
        self.proc.obs.emit(PART_SEND_START, self.sim.now, self.proc.rank,
                           self.epoch)
        return self

    def pready(self, tc, partition: int):
        """Generator: mark one partition ready for transfer (``MPI_Pready``).

        The MPIPCL path is an internal isend: full call overhead plus the
        library lock under ``MULTIPLE``.  The native path is a lock-free
        flag-set plus doorbell.  Either way the calling thread pays the
        buffer-read (hot/cold cache) cost for its partition.
        """
        self.proc.obs.emit(PART_PREADY, self.sim.now, self.proc.rank,
                           partition, self.epoch, self)
        self._check_partition(partition)
        if self._ready[partition]:
            raise RequestStateError(
                f"pready called twice on partition {partition} in epoch "
                f"{self.epoch}")
        self._ready[partition] = True
        pbytes = self.sizes[partition]
        costs = self.proc.costs
        params = self.proc.fabric.params_between(self.proc.rank,
                                                 self.peer_rank)
        if self.impl == IMPL_NATIVE:
            # Lock-free flag set + doorbell; the NIC DMAs from user memory.
            cost = costs.native_pready_cost
            locked = False
        else:
            # MPIPCL: an internal MPI_Isend on a pre-matched request.
            # Eager partitions pay the bounce-buffer copy *outside* the
            # library lock (memcpy needs no lock), so concurrent threads
            # overlap their copies — the cold-cache amortization the paper
            # observes in §4.2.  Rendezvous partitions are zero-copy.
            if params.is_eager(pbytes):
                copy = self.proc.cache.access_time(
                    f"{self.bufkey}.p{partition}", pbytes)
                if copy > 0:
                    yield self.sim.sleep(copy)
            cost = (costs.pready_cost + costs.call_overhead
                    + costs.post_cost + params.send_overhead)
            locked = True
        yield from self.proc._mpi_entry(tc, cost, locked=locked)
        eager = self.impl == IMPL_NATIVE or params.is_eager(pbytes)
        if eager:
            frame = Frame(FrameKind.PDATA, self.proc.rank, self.peer_rank,
                          nbytes=pbytes, preq=self.peer,
                          partition=partition, epoch=self.epoch)
            tx = self.proc.transmit(self.peer_rank, pbytes, frame)
            ep = self.epoch
            tx.injected.callbacks.append(
                lambda ev: self._partition_injected(ep, partition,
                                                    self.sim.now))
        else:
            frame = Frame(FrameKind.PRTS, self.proc.rank, self.peer_rank,
                          nbytes=pbytes, sreq=self, preq=self.peer,
                          partition=partition, epoch=self.epoch)
            self.proc.transmit(self.peer_rank, 0, frame)

    def pready_range(self, tc, lo: int, hi: int):
        """Generator: ``MPI_Pready_range`` — mark partitions [lo, hi]."""
        if lo > hi:
            raise PartitionError(f"empty pready range [{lo}, {hi}]")
        for p in range(lo, hi + 1):
            yield from self.pready(tc, p)

    def pready_list(self, tc, partitions):
        """Generator: ``MPI_Pready_list`` — mark an explicit partition set.

        Duplicates in the list are an error, matching the standard's
        each-partition-exactly-once rule per epoch.
        """
        partitions = list(partitions)
        if len(set(partitions)) != len(partitions):
            raise PartitionError(
                f"duplicate partitions in pready_list: {partitions}")
        for p in partitions:
            yield from self.pready(tc, p)

    def note_buffer_write(self, partition: int) -> None:
        """Annotate an application write into ``partition``'s send buffer.

        Zero-cost instrumentation: real partitioned programs fill each
        partition before marking it ready, and writing after ``pready`` is a
        data race with the transfer.  Programs that want that race caught
        call this where the write happens; under
        :func:`repro.analysis.enable_checking` a write into a
        partition already marked ready this epoch is reported
        (rule ``PART004``).  Without a subscriber the emit is a no-op.
        """
        self.proc.obs.emit(PART_BUFFER_WRITE, self.sim.now, self.proc.rank,
                           partition, self.epoch, self)

    # -- runtime hooks ----------------------------------------------------
    def _partition_injected(self, epoch: int, partition: int,
                            now: float) -> None:
        if epoch != self.epoch:
            return  # stale completion from an abandoned epoch
        if partition in self._injected_partitions:
            # Retransmission path (lossy mode): a rendezvous partition's
            # data frame can be re-injected after an ACK loss — the
            # epoch completes on distinct partitions, not raw injections.
            return
        self._injected_partitions.add(partition)
        self._injected += 1
        self.proc.obs.emit(PART_SEND_INJECTED, now, self.proc.rank,
                           partition, epoch)
        if self._injected == self.partitions:
            self._epoch_done.succeed(now)
            self.proc.obs.emit(PART_SEND_EPOCH_COMPLETE, now,
                               self.proc.rank, epoch)


class PartitionedRecvRequest(_PartitionedBase):
    """Receive side: ``precv_init`` → ``start`` → ``parrived``* → ``wait``."""

    side = "recv"

    def __init__(self, proc, comm_id: int, source: int, tag: int,
                 nbytes: int, partitions: int, impl: str = IMPL_MPIPCL,
                 bufkey: Optional[str] = None):
        super().__init__(proc, comm_id, source, tag, nbytes, partitions,
                         impl, bufkey)
        self._arrived_events: List[Event] = []
        self._arrived = 0
        #: Partitions that landed before our start() armed their epoch,
        #: keyed by sender epoch (MPIPCL buffers these as unexpected
        #: internal messages).
        self._early: Dict[int, List[Tuple[int, float, Any]]] = {}

    @property
    def source(self) -> int:
        """Source rank."""
        return self.peer_rank

    def start(self, tc):
        """Generator: arm a new receive epoch (posts internal receives)."""
        self.proc.obs.emit(PART_START, self.sim.now, self.proc.rank,
                           self.side, self.epoch, self)
        yield from self._await_bound()
        self._require_inactive()
        if self._epoch_done is not None and not self._epoch_done.triggered:
            raise RequestStateError("start() before previous epoch's wait()")
        self.epoch += 1
        self.active = True
        self._arrived_events = [Event(self.sim) for _ in range(self.partitions)]
        self._arrived = 0
        self._epoch_done = Event(self.sim)
        cost = (self.proc.costs.start_cost
                + self.partitions * self.proc.costs.start_cost_per_partition)
        yield from self.proc._mpi_entry(tc, cost)
        self.proc.obs.emit(PART_RECV_START, self.sim.now, self.proc.rank,
                           self.epoch)
        # Reconcile partitions that raced ahead of this start().
        for partition, when, payload in self._early.pop(self.epoch, []):
            self._mark_arrived(partition, when, payload)
        return self

    def parrived(self, tc, partition: int):
        """Generator: ``MPI_Parrived`` — poll one partition; returns bool.

        Thread-safe flag check: no lock even under ``MULTIPLE``.  Legal on
        an inactive request that has completed an epoch (MPI 4.0 §4.2.3:
        the flag is then true).
        """
        self.proc.obs.emit(PART_PARRIVED, self.sim.now, self.proc.rank,
                           partition, self.epoch, self)
        if not (0 <= partition < self.partitions):
            raise PartitionError(
                f"partition {partition} out of range "
                f"[0, {self.partitions})")
        if not self._arrived_events:
            raise RequestStateError("parrived() before the first start()")
        yield from self.proc._mpi_entry(
            tc, self.proc.costs.parrived_cost, locked=False)
        return self._arrived_events[partition].triggered

    def arrived_event(self, partition: int) -> Event:
        """The event that triggers when ``partition`` lands.

        Valid during the epoch *and* after its ``wait()`` (the events are
        replaced only by the next ``start()``), so harnesses can read
        arrival timestamps from the event values post-completion.
        """
        if not (0 <= partition < self.partitions):
            raise PartitionError(
                f"partition {partition} out of range "
                f"[0, {self.partitions})")
        if not self._arrived_events:
            raise RequestStateError("arrived_event() before start()")
        return self._arrived_events[partition]

    @property
    def arrived_count(self) -> int:
        """Partitions received so far in the current epoch."""
        return self._arrived

    def note_buffer_read(self, partition: int) -> None:
        """Annotate an application read of ``partition``'s receive buffer.

        Zero-cost instrumentation, the receive-side mirror of
        :meth:`PartitionedSendRequest.note_buffer_write`: consuming a
        partition before it has actually arrived reads garbage.  Under
        :func:`repro.analysis.enable_checking` a read of a
        partition that has not landed this epoch is reported
        (rule ``PART005``).  Without a subscriber the emit is a no-op.
        """
        self.proc.obs.emit(PART_BUFFER_READ, self.sim.now, self.proc.rank,
                           partition, self.epoch, self)

    # -- runtime hooks ----------------------------------------------------
    def _partition_arrived(self, epoch: int, partition: int, now: float,
                           payload: Any = None) -> None:
        """Called by the progress engine when a PDATA frame lands."""
        if not self.active or epoch != self.epoch:
            if epoch < self.epoch:
                raise RequestStateError(
                    f"partition for stale epoch {epoch} arrived in epoch "
                    f"{self.epoch}")
            self._early.setdefault(epoch, []).append(
                (partition, now, payload))
            return
        self._mark_arrived(partition, now, payload)

    def _mark_arrived(self, partition: int, now: float, payload: Any) -> None:
        # Early-arrival replays pass a past ``now``, so arrival records can
        # carry timestamps behind the clock; sinks order by emission, not
        # by time.
        self.proc.obs.emit(PART_ARRIVED, now, self.proc.rank, partition,
                           self.epoch, self.sizes[partition], self)
        ev = self._arrived_events[partition]
        if ev.triggered:
            raise RequestStateError(
                f"partition {partition} arrived twice in epoch {self.epoch}")
        ev.succeed((now, payload))
        self._arrived += 1
        if self._arrived == self.partitions:
            self._epoch_done.succeed(now)
            self.proc.obs.emit(PART_RECV_EPOCH_COMPLETE, now,
                               self.proc.rank, self.epoch)
