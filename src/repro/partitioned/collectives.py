"""Partitioned collectives preview (the paper's §6.1 / Holmes et al. [20]).

The paper closes by pointing at *partitioned collective communication* as
the natural next step.  This module prototypes the flagship case: a
**pipelined partitioned broadcast**.  The root exposes a partitioned send
to each child in a binomial tree; every interior rank relays each
partition the moment it arrives (an arrival event triggers the child-side
``pready``), so partitions stream down the tree without waiting for the
whole buffer at any level — the collective analogue of early-bird
communication.

For comparison, :func:`whole_message_bcast_time` runs the classic
binomial broadcast of the same buffer, letting benchmarks quantify the
pipelining gain (≈ depth × (m - m/n)/BW hidden for deep trees).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .requests import IMPL_MPIPCL, PartitionedRecvRequest, \
    PartitionedSendRequest

__all__ = ["PartitionedBroadcast", "binomial_children"]

#: Reserved tag base for partitioned-collective plumbing.
_PBCAST_TAG = 80_000


def binomial_children(rank: int, root: int, size: int):
    """Children and parent of ``rank`` in the binomial broadcast tree.

    Returns ``(parent_or_None, [children...])`` using the same virtual-rank
    construction as :func:`repro.mpi.collectives.bcast`.
    """
    if not (0 <= root < size):
        raise ConfigurationError(f"root {root} out of range [0, {size})")
    if not (0 <= rank < size):
        raise ConfigurationError(f"rank {rank} out of range [0, {size})")
    vrank = (rank - root) % size
    parent: Optional[int] = None
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank ^ mask) + root) % size
            break
        mask <<= 1
    children: List[int] = []
    # Children are vrank | bit for bits below our parent-bit (or all bits
    # when we are the root).
    bit = 1
    limit = mask if parent is not None else size
    while bit < limit:
        child = vrank | bit
        if child != vrank and child < size and not (vrank & bit):
            children.append((child + root) % size)
        if vrank & bit:
            break
        bit <<= 1
    return parent, children


def _highest_bit(n: int) -> int:
    bit = 1
    while bit < n:
        bit <<= 1
    return bit


class PartitionedBroadcast:
    """A persistent, pipelined partitioned broadcast.

    Build one per rank (collectively, same arguments), then per epoch::

        yield from pb.start(tc)
        if rank == root:
            # threads fill partitions and call pb.pready(tc, i)
        yield from pb.wait(tc)      # everyone: buffer fully delivered

    Interior ranks need no application code at all: relays are armed
    automatically at ``start`` and forward each partition on arrival.
    """

    def __init__(self, ctx, root: int, nbytes: int, partitions: int,
                 impl: str = IMPL_MPIPCL):
        self.ctx = ctx
        self.root = root
        self.nbytes = nbytes
        self.partitions = partitions
        self.impl = impl
        self.rank = ctx.rank
        self.size = ctx.size
        self.parent, self.children = binomial_children(self.rank, root,
                                                       self.size)
        self._recv: Optional[PartitionedRecvRequest] = None
        self._sends: Dict[int, PartitionedSendRequest] = {}
        self._initialized = False

    # -- setup (serial code, like psend_init/precv_init) -----------------
    def init(self, tc):
        """Generator: create the per-link partitioned requests.

        Collective: every rank of the communicator must call it.
        """
        comm = self.ctx.comm
        if self._initialized:
            raise ConfigurationError("PartitionedBroadcast.init called twice")
        if self.parent is not None:
            self._recv = yield from comm.precv_init(
                tc, self.parent, _PBCAST_TAG, self.nbytes, self.partitions,
                impl=self.impl)
        for child in self.children:
            self._sends[child] = yield from comm.psend_init(
                tc, child, _PBCAST_TAG, self.nbytes, self.partitions,
                impl=self.impl)
        self._initialized = True
        return self

    # -- per-epoch lifecycle ----------------------------------------------
    def start(self, tc):
        """Generator: arm one broadcast epoch (and the relay plumbing)."""
        if not self._initialized:
            raise ConfigurationError("start() before init()")
        if self._recv is not None:
            yield from self._recv.start(tc)
        for ps in self._sends.values():
            yield from ps.start(tc)
        if self._recv is not None and self._sends:
            self._arm_relays()
        return self

    def pready(self, tc, partition: int):
        """Generator: root-side partition hand-off (fans out to children)."""
        if self.rank != self.root:
            raise ConfigurationError(
                "only the root calls PartitionedBroadcast.pready")
        for ps in self._sends.values():
            yield from ps.pready(tc, partition)

    def wait(self, tc):
        """Generator: complete the epoch on this rank.

        The root completes when every child link drained; interior ranks
        when their receive completed *and* their relays drained; leaves on
        receive completion.
        """
        if self._recv is not None:
            yield from self._recv.wait(tc)
        for ps in self._sends.values():
            yield from ps.wait(tc)

    def arrived_event(self, partition: int):
        """This rank's arrival event for ``partition`` (non-root only)."""
        if self._recv is None:
            raise ConfigurationError("the root has no arrival events")
        return self._recv.arrived_event(partition)

    # -- internals ----------------------------------------------------------
    def _arm_relays(self) -> None:
        """Forward each partition to the children the moment it arrives.

        The relay runs as a per-partition simulated process using the
        device-context trick: a lock-free native forward when the links are
        native, or an MPIPCL internal isend otherwise, charged to a relay
        actor pinned to the NIC socket.
        """
        from ..threadsim import ThreadContext
        relay_core = (self.ctx.spec.nic_socket
                      * self.ctx.spec.cores_per_socket)
        relay_tc = ThreadContext(self.ctx, thread_id=0, core=relay_core,
                                 team=None)

        def relay(partition: int):
            ev = self._recv.arrived_event(partition)
            if not ev.triggered:
                yield ev
            for ps in self._sends.values():
                yield from ps.pready(relay_tc, partition)

        for p in range(self.partitions):
            self.ctx.sim.process(
                relay(p), name=f"r{self.rank}.pbcast.relay{p}")
