"""MPI 4.0 Partitioned point-to-point communication.

Implements the partitioned API the paper benchmarks (``MPI_Psend_init``,
``MPI_Precv_init``, ``MPI_Start``, ``MPI_Pready``, ``MPI_Parrived``,
``MPI_Wait``) over the simulated runtime, in two flavours:

* :data:`IMPL_MPIPCL` — the layered implementation the paper evaluates;
* :data:`IMPL_NATIVE` — an idealized native implementation (extension).

Access is normally through :class:`repro.mpi.comm.Communicator`
(``comm.psend_init`` / ``comm.precv_init``); this package holds the request
state machines.
"""

from .collectives import PartitionedBroadcast, binomial_children
from .requests import (
    IMPL_MPIPCL,
    IMPL_NATIVE,
    PartitionedRecvRequest,
    PartitionedSendRequest,
    partition_sizes,
)

__all__ = [
    "PartitionedBroadcast",
    "binomial_children",
    "IMPL_MPIPCL",
    "IMPL_NATIVE",
    "PartitionedRecvRequest",
    "PartitionedSendRequest",
    "partition_sizes",
]
