"""CI-width-targeted trial allocation for noisy and faulty cells.

Hunold & Carpen-Amarie ("MPI Benchmarking Revisited", PAPERS.md) showed
that a fixed repetition count spends most of its budget on cells that
converged after a handful of samples.  :class:`AdaptiveTrialPlanner`
replaces the fixed count: it runs whole benchmark trials in batches and
stops a cell as soon as the pruned-mean confidence interval of every
watched metric is narrower than a relative target — bounded below by
``min_trials`` (never trust two samples) and above by ``max_trials``
(never let one pathological cell eat the sweep).

Determinism: trial ``t`` of a cell reseeds the configuration with
``derive_cell_seed(seed, m, n, trial=t)`` (trial 0 keeps the
configuration's own seed, so a planner run is a strict superset of the
unplanned run).  The same configuration therefore always produces the
same trial count, the same samples, and the same merged digest — planner
results are cacheable like any other, keyed with the planner's
:meth:`~AdaptiveTrialPlanner.cache_salt` so changing the targets never
aliases an old entry.

Deterministic cells bypass the loop entirely — every trial would be
bit-identical, so repetitions add spread of exactly zero and the planner
runs one plain trial.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..errors import ConfigurationError
from .statistics import ci_halfwidth, pruned_mean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> metrics)
    from ..core.config import PtpBenchmarkConfig
    from ..core.runner import PtpResult

__all__ = ["AdaptiveTrialPlanner", "DEFAULT_PLANNER_METRICS"]

#: Metrics whose CI must converge (Eq. 1–3; the early-bird fraction is a
#: ratio of counts and is often exactly zero, which makes a *relative*
#: target meaningless for it).
DEFAULT_PLANNER_METRICS: Tuple[str, ...] = (
    "overhead", "perceived_bandwidth", "application_availability")


@dataclass(frozen=True)
class AdaptiveTrialPlanner:
    """Run trials per cell until the pruned-mean CI is tight enough.

    Attributes
    ----------
    ci_target:
        Relative half-width target: stop when ``halfwidth <= ci_target *
        |pruned mean|`` for every metric in ``metrics``.
    min_trials / max_trials:
        Hard bounds on the number of simulations per nondeterministic
        cell.
    batch:
        Trials added between convergence checks after ``min_trials``.
    confidence_z:
        Normal quantile of the interval (1.96 ≈ 95%).
    trim_fraction:
        Outlier pruning applied before both the mean and its CI — the
        interval describes the statistic the reports publish.
    """

    ci_target: float = 0.05
    min_trials: int = 3
    max_trials: int = 20
    batch: int = 2
    confidence_z: float = 1.96
    trim_fraction: float = 0.05
    metrics: Tuple[str, ...] = DEFAULT_PLANNER_METRICS

    def __post_init__(self) -> None:
        if self.ci_target <= 0:
            raise ConfigurationError(
                f"ci_target must be > 0: {self.ci_target}")
        if self.min_trials < 1:
            raise ConfigurationError(
                f"min_trials must be >= 1: {self.min_trials}")
        if self.max_trials < self.min_trials:
            raise ConfigurationError(
                f"max_trials ({self.max_trials}) must be >= min_trials "
                f"({self.min_trials})")
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1: {self.batch}")
        if not self.metrics:
            raise ConfigurationError("planner needs at least one metric")

    def cache_salt(self) -> str:
        """Distinguishes planner-merged results in the ``ResultCache``.

        Two sweeps with different convergence settings may run different
        trial counts for the same cell; salting the fingerprint keeps
        their cache entries apart (and apart from unplanned results).
        """
        return ("planner|" + "|".join(
            f"{v:g}" if isinstance(v, float) else str(v)
            for v in (self.ci_target, self.min_trials, self.max_trials,
                      self.batch, self.confidence_z, self.trim_fraction))
            + "|" + ",".join(self.metrics))

    def _converged(self, values: List[float]) -> bool:
        if len(values) < 2:
            return False
        halfwidth = ci_halfwidth(values, self.confidence_z,
                                 self.trim_fraction)
        mean = pruned_mean(values, self.trim_fraction)
        if mean == 0.0:
            return halfwidth == 0.0
        return halfwidth <= self.ci_target * abs(mean)

    def trial_config(self, config: "PtpBenchmarkConfig",
                     trial: int) -> "PtpBenchmarkConfig":
        """The reseeded configuration trial ``trial`` of a cell runs.

        Trial 0 is the configuration itself (a planned run is a strict
        superset of the unplanned one); later trials derive decorrelated
        seeds through
        :func:`~repro.core.parallel.derive_cell_seed`.
        """
        if trial == 0:
            return config
        # Imported here: core.runner imports repro.metrics at module
        # scope, so a top-level import would be circular.
        from ..core.parallel import derive_cell_seed
        return config.with_overrides(
            seed=derive_cell_seed(config.seed, config.message_bytes,
                                  config.partitions, trial=trial))

    def trial_configs(self, config: "PtpBenchmarkConfig", start: int,
                      count: int) -> List["PtpBenchmarkConfig"]:
        """The reseeded configs for trials ``start .. start+count-1``.

        The batch counterpart of :meth:`trial_config`: one seed-derivation
        pass for a whole dispatch batch, which is how the pool's batched
        dispatcher submits follow-up trial chunks in one go.
        """
        from ..core.parallel import derive_cell_seed
        configs: List["PtpBenchmarkConfig"] = []
        for trial in range(start, start + count):
            if trial == 0:
                configs.append(config)
            else:
                configs.append(config.with_overrides(
                    seed=derive_cell_seed(config.seed, config.message_bytes,
                                          config.partitions, trial=trial)))
        return configs

    def plan_next(self, config: "PtpBenchmarkConfig",
                  results: List["PtpResult"]) -> int:
        """How many more trials to run, given the completed ones.

        ``results`` must hold the cell's completed trials in trial order.
        Returns 0 when the cell is done (CI converged, ``max_trials``
        reached, or a deterministic cell that already ran its single
        trial).  This is the *whole* decision procedure — the serial
        :meth:`run_cell` loop and the worker-pool manager both call it,
        so batching decisions (and therefore merged digests) cannot
        diverge between execution modes.
        """
        n = len(results)
        if config.is_deterministic:
            # Every repetition would be bit-identical; one trial says it
            # all.
            return 0 if n else 1
        if n < self.min_trials:
            return self.min_trials - n
        if n >= self.max_trials:
            return 0
        values = [[getattr(s.metrics, name)
                   for r in results for s in r.samples]
                  for name in self.metrics]
        # A faulty cell can abandon every iteration; empty sample sets
        # carry no information, so keep sampling to the cap.
        if all(v and self._converged(v) for v in values):
            return 0
        return min(self.batch, self.max_trials - n)

    def merge_trials(self, config: "PtpBenchmarkConfig",
                     results: List["PtpResult"]) -> "PtpResult":
        """Merge a cell's completed trials (in trial order) into one result.

        Samples from successive trials are concatenated and renumbered;
        the merged event digest hashes the per-trial digests in order,
        so it still proves "same trials, same events, same order".
        """
        return _merge_trials(config, results)

    def run_cell(self, config: "PtpBenchmarkConfig") -> "PtpResult":
        """All trials of one cell, merged into a single ``PtpResult``.

        The serial driver around :meth:`plan_next` /
        :meth:`trial_config` / :meth:`merge_trials`; the worker-pool
        manager runs the same three calls with the trials farmed out as
        pool tasks, which is why the two paths are bit-identical.  A
        deterministic configuration short-circuits to one plain trial.
        """
        # Imported here: core.runner imports repro.metrics at module
        # scope, so a top-level import would be circular.
        from ..core.runner import run_ptp_benchmark

        if config.is_deterministic:
            return run_ptp_benchmark(config)

        results: List["PtpResult"] = []
        while True:
            count = self.plan_next(config, results)
            if count == 0:
                break
            for _ in range(count):
                results.append(run_ptp_benchmark(
                    self.trial_config(config, len(results))))

        return _merge_trials(config, results)


def _merge_trials(config: "PtpBenchmarkConfig",
                  results: list) -> "PtpResult":
    """Concatenate trial results into one ``PtpResult`` (trial order)."""
    from ..core.runner import PtpResult, PtpSample

    merged = PtpResult(config=config, source="des", trials=len(results))
    iteration = 0
    for r in results:
        for s in r.samples:
            merged.samples.append(PtpSample(
                iteration=iteration, timeline=s.timeline,
                metrics=s.metrics))
            iteration += 1
    if len(results) == 1:
        merged.event_digest = results[0].event_digest
    else:
        blob = "|".join(r.event_digest or "-" for r in results)
        merged.event_digest = hashlib.sha256(
            blob.encode("ascii")).hexdigest()
    outcomes = [r.fault_outcome for r in results if r.fault_outcome]
    if outcomes:
        # Trial 0 runs the configuration's own seed; its outcome is the
        # one an unplanned run would have reported.
        merged.fault_outcome = outcomes[0]
    return merged
