"""The paper's §3.1 metric definitions, timelines, and summary statistics."""

from .definitions import (
    PtpMetrics,
    application_availability,
    early_bird_fraction,
    overhead,
    perceived_bandwidth,
)
from .planner import DEFAULT_PLANNER_METRICS, AdaptiveTrialPlanner
from .statistics import (SampleSummary, ci_halfwidth, pruned_mean, summarize,
                         trim_outliers)
from .timeline import PartitionTimeline

__all__ = [
    "PtpMetrics",
    "application_availability",
    "early_bird_fraction",
    "overhead",
    "perceived_bandwidth",
    "SampleSummary",
    "ci_halfwidth",
    "pruned_mean",
    "summarize",
    "trim_outliers",
    "PartitionTimeline",
    "AdaptiveTrialPlanner",
    "DEFAULT_PLANNER_METRICS",
]
