"""Summary statistics with the paper's outlier handling.

§4.1: "The results shown are averages over several trials, and we have
pruned extreme noise samples from the dataset to avoid extreme outliers
that do not often occur in practice."  :func:`pruned_mean` implements
exactly that — a symmetric trimmed mean — and :class:`SampleSummary`
bundles the dispersion numbers the reports print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["pruned_mean", "trim_outliers", "SampleSummary", "summarize",
           "ci_halfwidth"]


def trim_outliers(values: Sequence[float],
                  trim_fraction: float = 0.05) -> np.ndarray:
    """Drop the top and bottom ``trim_fraction`` of samples (by value).

    With fewer than ``1 / trim_fraction`` samples nothing is dropped, so
    tiny sample sets are returned unchanged rather than emptied.
    """
    if not (0.0 <= trim_fraction < 0.5):
        raise ConfigurationError(
            f"trim_fraction must be in [0, 0.5): {trim_fraction}")
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ConfigurationError("cannot trim an empty sample set")
    if not np.isfinite(arr).all():
        raise ConfigurationError("sample set contains non-finite values")
    k = int(arr.size * trim_fraction)
    if k == 0:
        return arr
    return arr[k:arr.size - k]


def pruned_mean(values: Sequence[float],
                trim_fraction: float = 0.05) -> float:
    """The paper's reporting statistic: mean after pruning extremes."""
    return float(np.mean(trim_outliers(values, trim_fraction)))


def ci_halfwidth(values: Sequence[float],
                 confidence_z: float = 1.96,
                 trim_fraction: float = 0.05) -> float:
    """Half-width of the normal-approximation CI around the pruned mean.

    ``z * s / sqrt(k)`` over the *trimmed* sample set (the same pruning
    the reported mean uses, so the interval describes the statistic we
    actually publish).  Fewer than two surviving samples carry no spread
    information: return ``inf`` so convergence loops keep sampling.
    """
    if confidence_z <= 0:
        raise ConfigurationError(
            f"confidence_z must be > 0: {confidence_z}")
    if len(values) < 2:
        return float("inf")
    arr = trim_outliers(values, trim_fraction)
    if arr.size < 2:
        return float("inf")
    return float(confidence_z * np.std(arr, ddof=1) / np.sqrt(arr.size))


@dataclass(frozen=True)
class SampleSummary:
    """Dispersion summary of one metric across iterations.

    Attributes mirror what a benchmark table needs: the pruned mean (the
    headline number), plus min/max/median/std of the raw samples and the
    sample count.
    """

    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def relative_std(self) -> float:
        """Coefficient of variation.

        A zero mean with nonzero spread is infinitely unstable relative
        to its center, not "perfectly stable" — report ``inf``, never a
        misleading ``0.0``.
        """
        if self.mean:
            return self.std / abs(self.mean)
        return float("inf") if self.std else 0.0


def summarize(values: Sequence[float],
              trim_fraction: float = 0.05) -> SampleSummary:
    """Build a :class:`SampleSummary` (pruned mean, raw dispersion)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty sample set")
    if not np.isfinite(arr).all():
        # NaN *and* ±inf: one infinite sample would silently poison
        # mean/std/max, so reject every non-finite value up front.
        raise ConfigurationError("sample set contains non-finite values")
    return SampleSummary(
        mean=pruned_mean(arr, trim_fraction),
        median=float(np.median(arr)),
        std=float(np.std(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
