"""The four micro-benchmark metrics of §3.1, as pure functions + a bundle.

Each function implements one numbered equation of the paper:

* :func:`overhead` — Eq. (1): ``t_part / t_pt2pt``.
* :func:`perceived_bandwidth` — Eq. (2): ``m / t_part_last``.
* :func:`application_availability` — Eq. (3): ``1 - t_after_join/t_pt2pt``.
* :func:`early_bird_fraction` — Eq. (4): ``t_before_join / t_part``.

:class:`PtpMetrics` evaluates all four on a
:class:`~repro.metrics.timeline.PartitionTimeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .timeline import PartitionTimeline

__all__ = ["overhead", "perceived_bandwidth", "application_availability",
           "early_bird_fraction", "PtpMetrics"]


def overhead(t_part: float, t_pt2pt: float) -> float:
    """Eq. (1): slowdown of ``n`` partition transfers vs one send of ``m``.

    ~1 for one partition or large messages; grows with partition count for
    latency-bound sizes.
    """
    if t_pt2pt <= 0:
        raise ConfigurationError(f"t_pt2pt must be positive: {t_pt2pt}")
    if t_part < 0:
        raise ConfigurationError(f"t_part must be non-negative: {t_part}")
    return t_part / t_pt2pt


def perceived_bandwidth(message_bytes: int, t_part_last: float) -> float:
    """Eq. (2): bandwidth a single-send model would need to match the
    partitioned finish time, in bytes/second.

    Exceeds physical link bandwidth when early partitions ship while late
    threads still compute — that headroom is the point of the metric.
    """
    if message_bytes <= 0:
        raise ConfigurationError(
            f"message_bytes must be positive: {message_bytes}")
    if t_part_last <= 0:
        raise ConfigurationError(
            f"t_part_last must be positive: {t_part_last}")
    return message_bytes / t_part_last


def application_availability(t_after_join: float, t_pt2pt: float) -> float:
    """Eq. (3): fraction of the single-send time handed back to the CPU.

    1.0 means every partition arrived before the equivalent thread join
    (the CPU never waits on communication); values fall toward 0 — and can
    go negative — when partitioned traffic drags on long after the join.
    """
    if t_pt2pt <= 0:
        raise ConfigurationError(f"t_pt2pt must be positive: {t_pt2pt}")
    if t_after_join < 0:
        raise ConfigurationError(
            f"t_after_join must be non-negative: {t_after_join}")
    return 1.0 - t_after_join / t_pt2pt


def early_bird_fraction(t_before_join: float, t_part: float) -> float:
    """Eq. (4): fraction of partitioned communication that happened before
    the equivalent thread join, in [0, 1].

    Asymptotically approaches (but per the paper never exactly reaches) 1;
    ~0 means the implementation provides no early-bird capability.
    """
    if t_part < 0:
        raise ConfigurationError(f"t_part must be non-negative: {t_part}")
    if t_before_join < 0:
        raise ConfigurationError(
            f"t_before_join must be non-negative: {t_before_join}")
    if t_part == 0.0:
        return 0.0
    frac = t_before_join / t_part
    if frac > 1.0 + 1e-9:
        raise ConfigurationError(
            f"t_before_join {t_before_join} exceeds t_part {t_part}")
    return min(frac, 1.0)


@dataclass(frozen=True)
class PtpMetrics:
    """All four §3.1 metrics for one measured iteration."""

    overhead: float
    perceived_bandwidth: float
    application_availability: float
    early_bird_fraction: float

    @classmethod
    def from_timeline(cls, tl: PartitionTimeline) -> "PtpMetrics":
        """Evaluate Eqs. (1)–(4) on one timeline."""
        return cls(
            overhead=overhead(tl.t_part, tl.pt2pt_time),
            perceived_bandwidth=perceived_bandwidth(
                tl.message_bytes, tl.last_transfer_time),
            application_availability=application_availability(
                tl.t_after_join, tl.pt2pt_time),
            early_bird_fraction=early_bird_fraction(
                tl.t_before_join, tl.t_part),
        )
