"""Partition-transfer timelines — the raw material of the paper's metrics.

A :class:`PartitionTimeline` records, for one measured iteration, when each
partition was marked ready (``MPI_Pready``) and when it arrived at the
receiver (``MPI_Parrived`` observable), plus the equivalent single-send
model's thread-join time and one-send duration.  The four §3.1 metrics are
all pure functions of this record (see :mod:`repro.metrics.definitions`),
mirroring the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["PartitionTimeline"]


@dataclass(frozen=True)
class PartitionTimeline:
    """One iteration's timestamps (all in simulated seconds).

    Attributes
    ----------
    message_bytes:
        Total message size ``m`` (all partitions together).
    pready_times:
        ``pready_times[i]`` — when partition ``i`` was marked ready.
    arrival_times:
        ``arrival_times[i]`` — when partition ``i`` became visible to
        ``MPI_Parrived`` at the receiver.
    join_time:
        When the *equivalent single-send model's* threads joined (the
        reference point for availability and early-bird, §3.1.3–3.1.4).
    pt2pt_time:
        Duration of the equivalent single send/receive of ``m`` bytes
        (``t_pt2pt`` in the paper: send start to receive completion).
    """

    message_bytes: int
    pready_times: Sequence[float]
    arrival_times: Sequence[float]
    join_time: float
    pt2pt_time: float

    def __post_init__(self) -> None:
        if len(self.pready_times) != len(self.arrival_times):
            raise ConfigurationError(
                f"{len(self.pready_times)} pready vs "
                f"{len(self.arrival_times)} arrival timestamps")
        if not self.pready_times:
            raise ConfigurationError("timeline needs at least one partition")
        if self.message_bytes <= 0:
            raise ConfigurationError("message_bytes must be positive")
        if self.pt2pt_time <= 0:
            raise ConfigurationError("pt2pt_time must be positive")
        for p, a in zip(self.pready_times, self.arrival_times):
            if a < p:
                raise ConfigurationError(
                    f"partition arrived at {a} before its pready at {p}")

    @property
    def partitions(self) -> int:
        """Partition count ``n``."""
        return len(self.pready_times)

    @property
    def first_pready(self) -> float:
        """Timestamp of the first ``MPI_Pready``."""
        return min(self.pready_times)

    @property
    def last_arrival(self) -> float:
        """Timestamp of the last partition arrival."""
        return max(self.arrival_times)

    @property
    def t_part(self) -> float:
        """§3.1.1: first ``MPI_Pready`` → last ``MPI_Parrived``."""
        return self.last_arrival - self.first_pready

    @property
    def last_transfer_time(self) -> float:
        """§3.1.2: duration of the transfer that *finishes last*.

        The "Thread #4 data transfer" of Figure 3: from that partition's
        pready to its arrival, including any queueing behind earlier
        partitions still on the wire.
        """
        idx = max(range(self.partitions),
                  key=lambda i: self.arrival_times[i])
        return self.arrival_times[idx] - self.pready_times[idx]

    @property
    def t_after_join(self) -> float:
        """§3.1.3: how long partitioned traffic continues past the join."""
        return max(0.0, self.last_arrival - self.join_time)

    @property
    def t_before_join(self) -> float:
        """§3.1.4: wall-clock partitioned-communication time before the
        equivalent join.

        The overlap of the communication window
        ``[first_pready, last_arrival]`` with ``(-inf, join_time]``.  The
        paper sums per-transfer segments along its (serialized) send
        timeline; with transfers serialized on one NIC the two readings
        coincide, and the overlap form stays well-defined when transfers
        overlap.
        """
        return max(0.0, min(self.last_arrival, self.join_time)
                   - self.first_pready)

    def transfer_durations(self) -> List[float]:
        """Per-partition pready→arrival durations (diagnostics)."""
        return [a - p for p, a in zip(self.pready_times,
                                      self.arrival_times)]
