"""Runtime side of fault injection: link faults and the reliable transport.

:class:`LinkFaults` is the per-rank decision engine the NIC consults on
every transmission — *whether* to stall, degrade, or drop.  All
randomness comes from one named stream of the cluster's
:class:`~repro.sim.rng.RandomStreams` (``faults/rank{r}/link``), so the
decisions replay bit-identically for a given seed, and no stream is even
created when the plan is absent.

:class:`ReliableTransport` makes a lossy fabric survivable: every
non-ACK frame a rank transmits gets a sender-local sequence number and a
pending-table entry; an ACK timeout armed at injection time retransmits
the frame with capped exponential backoff until the peer's ACK clears it
or the retry budget runs out.  Receivers ACK every tracked frame —
including duplicates, since the duplicate usually means the *ACK* was
the casualty — and de-duplicate by ``(src, seq)`` before the frame
reaches protocol handling, which is what keeps retransmission safe for
partitioned fragments (``Parrived`` would otherwise see a partition land
twice).

Both classes share one :class:`FaultStats` so a trial can be summarized
into a :class:`~repro.faults.plan.FaultOutcome`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..network.nic import Transmission
from ..obs.kinds import (FAULT_DEGRADE, FAULT_DROP, FAULT_DUPLICATE,
                         FAULT_STALL, RETRY_ABANDONED, RETRY_ACK,
                         RETRY_RETRANSMIT)
from .plan import FaultOutcome, FaultPlan, RetryPolicy

__all__ = ["FaultStats", "LinkFaults", "ReliableTransport"]


class FaultStats:
    """Shared mutable counters for one trial's fault activity."""

    __slots__ = ("drops", "stalls", "degraded", "duplicates", "acks",
                 "retransmits", "abandoned", "fail_stops")

    def __init__(self) -> None:
        self.drops = 0
        self.stalls = 0
        self.degraded = 0
        self.duplicates = 0
        self.acks = 0
        self.retransmits = 0
        self.abandoned = 0
        self.fail_stops = 0

    def outcome(self, delivered: bool, reason: str = "") -> FaultOutcome:
        """Freeze the counters into a :class:`FaultOutcome`."""
        return FaultOutcome(
            delivered=delivered, drops=self.drops,
            retransmits=self.retransmits, duplicates=self.duplicates,
            acks=self.acks, abandoned=self.abandoned, stalls=self.stalls,
            fail_stops=self.fail_stops, reason=reason)


class LinkFaults:
    """Per-rank fault decisions the NIC consults on every transmission."""

    __slots__ = ("plan", "rank", "sim", "obs", "rng", "stats")

    def __init__(self, plan: FaultPlan, rank: int, sim, obs, rng, stats):
        self.plan = plan
        self.rank = rank
        self.sim = sim
        self.obs = obs
        self.rng = rng
        self.stats = stats

    def stall_delay(self, now: float) -> float:
        """Seconds to stall before injecting; emits ``fault.nic_stall``."""
        delay = self.plan.stall_delay(now)
        if delay > 0.0:
            self.stats.stalls += 1
            self.obs.emit(FAULT_STALL, now, self.rank, delay)
        return delay

    def degraded(self, now: float, dst_rank: int, wire_time: float,
                 latency: float):
        """``(wire_time, latency)`` after any active degradation window."""
        bw, lat = self.plan.degrade_at(now)
        if bw == 1.0 and lat == 1.0:
            return wire_time, latency
        self.stats.degraded += 1
        self.obs.emit(FAULT_DEGRADE, now, self.rank, dst_rank, bw, lat)
        return wire_time / bw, latency * lat

    def drop(self, tx: Transmission) -> bool:
        """Decide whether the fabric loses ``tx`` after injection."""
        if self.plan.drop_probability <= 0.0:
            return False
        if self.rng.random() >= self.plan.drop_probability:
            return False
        self.note_drop(tx)
        return True

    def note_drop(self, tx: Transmission) -> None:
        """Count and emit one lost frame (also used for black-holing)."""
        self.stats.drops += 1
        payload = tx.payload
        kind = getattr(payload, "kind", None)
        self.obs.emit(FAULT_DROP, self.sim.now, self.rank, tx.dst_rank,
                      kind.value if kind is not None else "",
                      getattr(payload, "seq", -1), tx.nbytes)


class _Pending:
    """Sender-side bookkeeping for one unacknowledged frame."""

    __slots__ = ("frame", "dst_rank", "nbytes", "wire_time", "latency",
                 "gap", "attempts", "acked", "abandoned")

    def __init__(self, frame, dst_rank, nbytes, wire_time, latency, gap):
        self.frame = frame
        self.dst_rank = dst_rank
        self.nbytes = nbytes
        self.wire_time = wire_time
        self.latency = latency
        self.gap = gap
        self.attempts = 0
        self.acked = False
        self.abandoned = False


class ReliableTransport:
    """Sender-side retransmission plus receiver-side ACK/de-duplication.

    One instance per rank, active only in lossy mode.  The owning
    :class:`~repro.mpi.process.MPIProcess` calls :meth:`track` when it
    transmits a frame, :meth:`on_ack` when an ACK frame arrives, and
    :meth:`accept` for every inbound sequenced frame (the process sends
    the actual ACK frame itself — the transport stays protocol-agnostic).
    """

    __slots__ = ("sim", "nic", "rank", "policy", "stats", "obs",
                 "_pending", "_seen", "_next_seq")

    def __init__(self, sim, nic, rank: int, policy: RetryPolicy,
                 stats: FaultStats, obs):
        self.sim = sim
        self.nic = nic
        self.rank = rank
        self.policy = policy
        self.stats = stats
        self.obs = obs
        self._pending: Dict[int, _Pending] = {}
        self._seen: Dict[int, Set[int]] = {}
        self._next_seq = 0

    @property
    def in_flight(self) -> int:
        """Frames transmitted but not yet acknowledged or abandoned."""
        return len(self._pending)

    # -- sender side ----------------------------------------------------

    def track(self, tx: Transmission, frame) -> None:
        """Register ``frame`` for ACK tracking before it is enqueued.

        Assigns the sequence number and arms the first ACK timer when the
        NIC finishes injecting (timing out a frame still queued behind
        others would retransmit it before it ever hit the wire).
        """
        seq = self._next_seq
        self._next_seq += 1
        frame.seq = seq
        entry = _Pending(frame, tx.dst_rank, tx.nbytes, tx.wire_time,
                         tx.latency, tx.gap)
        self._pending[seq] = entry
        tx.injected.callbacks.append(
            lambda ev, entry=entry: self._arm(entry))

    def on_ack(self, src_rank: int, seq: int) -> None:
        """An ACK from ``src_rank`` arrived for sequence ``seq``."""
        entry = self._pending.pop(seq, None)
        if entry is None:
            return  # duplicate or post-abandonment ACK; nothing pending
        entry.acked = True
        self.stats.acks += 1
        self.obs.emit(RETRY_ACK, self.sim.now, self.rank, src_rank, seq)

    def _arm(self, entry: _Pending) -> None:
        if entry.acked or entry.abandoned:
            return
        timer = self.sim.timeout(self.policy.timeout_after(entry.attempts))
        timer.callbacks.append(
            lambda ev, entry=entry: self._expired(entry))

    def _expired(self, entry: _Pending) -> None:
        if entry.acked or entry.abandoned:
            return
        if entry.attempts >= self.policy.max_retries:
            entry.abandoned = True
            self._pending.pop(entry.frame.seq, None)
            self.stats.abandoned += 1
            self.obs.emit(RETRY_ABANDONED, self.sim.now, self.rank,
                          entry.dst_rank, entry.frame.seq, entry.attempts)
            return
        entry.attempts += 1
        self.stats.retransmits += 1
        self.obs.emit(RETRY_RETRANSMIT, self.sim.now, self.rank,
                      entry.dst_rank, entry.frame.seq, entry.attempts,
                      self.policy.timeout_after(entry.attempts))
        # A fresh Transmission with no completion callbacks: protocol
        # hooks (eager completion, Pready injection counting) fired on
        # the original injection and must not fire again.
        tx = Transmission(dst_rank=entry.dst_rank, nbytes=entry.nbytes,
                          wire_time=entry.wire_time, latency=entry.latency,
                          payload=entry.frame, gap=entry.gap)
        self.nic.enqueue(tx)
        tx.injected.callbacks.append(
            lambda ev, entry=entry: self._arm(entry))

    # -- receiver side --------------------------------------------------

    def accept(self, src_rank: int, seq: int) -> bool:
        """True when ``(src_rank, seq)`` is new; False for a duplicate."""
        seen = self._seen.setdefault(src_rank, set())
        if seq in seen:
            self.stats.duplicates += 1
            self.obs.emit(FAULT_DUPLICATE, self.sim.now, self.rank,
                          src_rank, seq)
            return False
        seen.add(seq)
        return True
