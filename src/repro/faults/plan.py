"""Deterministic fault plans for the simulated cluster.

A :class:`FaultPlan` describes *what goes wrong* during a trial: eager
packets dropped with a fixed probability, windows in simulated time where
a link's ``bandwidth``/``latency`` degrade, periodic NIC injection
stalls, per-rank compute slowdown, and a fail-stop of one rank at time T.
The plan itself is pure configuration — every random decision it implies
is drawn from the cluster's existing :class:`~repro.sim.rng.RandomStreams`
(SHA-256 of ``"{seed}\\x1f{stream-name}"``), and the sweep engine already
derives one seed per cell, so a faulty sweep is exactly as bit-reproducible
as a clean one: same seed + same plan ⇒ same drops, same retransmits,
same ``event_digest``.

:class:`RetryPolicy` is the matching survival story: every tracked frame
is retransmitted after an ACK timeout with capped exponential backoff
until it is acknowledged or ``max_retries`` is exhausted (see
``repro.faults.transport``).  :class:`FaultOutcome` is the structured
record a trial leaves behind instead of crashing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["DegradeWindow", "FailStop", "RetryPolicy", "FaultPlan",
           "FaultOutcome", "parse_fault_spec"]


@dataclass(frozen=True)
class DegradeWindow:
    """One interval of simulated time where a link runs degraded.

    While ``start <= now < end`` every transmission's wire time is divided
    by ``bandwidth_scale`` (0.5 = half the bandwidth, twice the wire time)
    and its propagation latency multiplied by ``latency_scale``.
    """

    start: float
    end: float
    bandwidth_scale: float = 1.0
    latency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"degrade window needs 0 <= start < end: "
                f"[{self.start}, {self.end})")
        if not 0 < self.bandwidth_scale <= 1.0:
            raise ConfigurationError(
                f"bandwidth_scale must be in (0, 1]: {self.bandwidth_scale}")
        if self.latency_scale < 1.0:
            raise ConfigurationError(
                f"latency_scale must be >= 1: {self.latency_scale}")

    def covers(self, now: float) -> bool:
        """Whether simulated time ``now`` falls inside this window."""
        return self.start <= now < self.end


@dataclass(frozen=True)
class FailStop:
    """Rank ``rank`` stops at simulated time ``time``: its NIC injects
    nothing afterwards and frames routed to it are black-holed."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"fail-stop rank must be >= 0: "
                                     f"{self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"fail-stop time must be >= 0: "
                                     f"{self.time}")


@dataclass(frozen=True)
class RetryPolicy:
    """ACK-timeout retransmission with capped exponential backoff.

    A tracked frame is retransmitted when no ACK arrives within the
    current timeout; each retry multiplies the timeout by
    ``backoff_factor`` up to ``max_backoff``.  After ``max_retries``
    unacknowledged attempts the frame is abandoned (a ``retry.abandoned``
    event — the trial then usually ends in a :class:`FaultOutcome` with
    ``delivered=False``).
    """

    ack_timeout: float = 10e-6
    backoff_factor: float = 2.0
    max_backoff: float = 1e-3
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ConfigurationError(
                f"ack_timeout must be positive: {self.ack_timeout}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if self.max_backoff < self.ack_timeout:
            raise ConfigurationError(
                f"max_backoff ({self.max_backoff}) must be >= ack_timeout "
                f"({self.ack_timeout})")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}")

    def timeout_after(self, attempts: int) -> float:
        """The ACK timeout in effect after ``attempts`` retransmissions."""
        return min(self.ack_timeout * self.backoff_factor ** attempts,
                   self.max_backoff)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong during one trial, as configuration.

    Attributes
    ----------
    drop_probability:
        Per-transmission probability that the fabric loses the frame
        after injection (sender-side NIC work is still paid).  Any value
        > 0 switches the cluster into lossy-transport mode: frames carry
        sequence numbers, receivers ACK and de-duplicate, senders
        retransmit per ``retry``.
    degrade_windows:
        Intervals where links run at reduced bandwidth / raised latency.
    stall_period / stall_duration:
        Every ``stall_period`` seconds of simulated time each NIC stalls
        for ``stall_duration`` seconds before injecting (deterministic,
        phase-aligned to t=0).
    rank_slowdown:
        ``((rank, factor), ...)`` — compute on ``rank`` takes
        ``factor``× the nominal wall time.
    fail_stop:
        Optional fail-stop of one rank at a fixed time.
    deadline:
        Simulated-time budget for one trial; a trial still running at the
        deadline is abandoned and recorded as a :class:`FaultOutcome`.
    retry:
        The retransmission policy used in lossy mode.
    """

    drop_probability: float = 0.0
    degrade_windows: Tuple[DegradeWindow, ...] = ()
    stall_period: float = 0.0
    stall_duration: float = 0.0
    rank_slowdown: Tuple[Tuple[int, float], ...] = ()
    fail_stop: Optional[FailStop] = None
    deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1): {self.drop_probability}")
        if self.stall_period < 0 or self.stall_duration < 0:
            raise ConfigurationError("stall period/duration must be >= 0")
        if self.stall_duration > 0 and self.stall_period <= 0:
            raise ConfigurationError(
                "stall_duration needs a positive stall_period")
        if self.stall_period > 0 and self.stall_duration >= self.stall_period:
            raise ConfigurationError(
                f"stall_duration ({self.stall_duration}) must be shorter "
                f"than stall_period ({self.stall_period})")
        seen = set()
        for entry in self.rank_slowdown:
            rank, factor = entry
            if rank < 0:
                raise ConfigurationError(
                    f"slowdown rank must be >= 0: {rank}")
            if factor < 1.0:
                raise ConfigurationError(
                    f"slowdown factor must be >= 1: {factor}")
            if rank in seen:
                raise ConfigurationError(
                    f"duplicate slowdown entry for rank {rank}")
            seen.add(rank)
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive: {self.deadline}")

    # -- queries the runtime makes per transmission ---------------------

    @property
    def lossy(self) -> bool:
        """True when the plan requires the reliable (ACK/retry) transport."""
        return self.drop_probability > 0.0

    @property
    def active(self) -> bool:
        """True when the plan perturbs anything at all."""
        return (self.lossy or bool(self.degrade_windows)
                or self.stall_duration > 0 or bool(self.rank_slowdown)
                or self.fail_stop is not None or self.deadline is not None)

    def degrade_at(self, now: float) -> Tuple[float, float]:
        """``(bandwidth_scale, latency_scale)`` in effect at ``now``."""
        bw, lat = 1.0, 1.0
        for win in self.degrade_windows:
            if win.covers(now):
                bw *= win.bandwidth_scale
                lat *= win.latency_scale
        return bw, lat

    def stall_delay(self, now: float) -> float:
        """Seconds the NIC must stall before injecting at ``now``."""
        if self.stall_duration <= 0:
            return 0.0
        phase = now % self.stall_period
        return self.stall_duration - phase if phase < self.stall_duration \
            else 0.0

    def slowdown_for(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = unaffected)."""
        for entry_rank, factor in self.rank_slowdown:
            if entry_rank == rank:
                return factor
        return 1.0

    def describe(self) -> str:
        """Compact single-line summary for labels and reports."""
        parts = []
        if self.drop_probability:
            parts.append(f"drop={self.drop_probability:g}")
        for win in self.degrade_windows:
            parts.append(f"degrade=[{win.start:g},{win.end:g})"
                         f"bw×{win.bandwidth_scale:g}"
                         f"/lat×{win.latency_scale:g}")
        if self.stall_duration:
            parts.append(f"stall={self.stall_duration:g}/{self.stall_period:g}")
        for rank, factor in self.rank_slowdown:
            parts.append(f"slow=r{rank}×{factor:g}")
        if self.fail_stop is not None:
            parts.append(f"failstop=r{self.fail_stop.rank}"
                         f"@{self.fail_stop.time:g}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}")
        return ",".join(parts) if parts else "clean"


@dataclass(frozen=True)
class FaultOutcome:
    """What the fault machinery observed during one trial.

    ``delivered`` is True when every benchmark iteration completed;
    abandoned trials (deadline exceeded, fail-stop, retries exhausted)
    carry ``delivered=False`` plus a human-readable ``reason`` — the
    sweep records the outcome instead of crashing.
    """

    delivered: bool
    drops: int = 0
    retransmits: int = 0
    duplicates: int = 0
    acks: int = 0
    abandoned: int = 0
    stalls: int = 0
    fail_stops: int = 0
    reason: str = ""

    def describe(self) -> str:
        """One-line outcome summary for reports and CLI output."""
        state = "delivered" if self.delivered else \
            f"ABANDONED ({self.reason})" if self.reason else "ABANDONED"
        return (f"{state}: {self.drops} drops, {self.retransmits} "
                f"retransmits, {self.duplicates} duplicates, "
                f"{self.abandoned} frames given up")

    def to_dict(self) -> dict:
        """JSON-ready field mapping (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultOutcome":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# CLI spec parsing
# ---------------------------------------------------------------------------

_SPEC_HELP = """\
comma-separated key=value tokens:
  drop=P                    per-transmission loss probability in [0, 1)
  degrade=S:E:BW[:LAT]      window [S, E) at BW×bandwidth, LAT×latency
                            (repeatable)
  stall=PERIOD/DURATION     every PERIOD s the NIC stalls DURATION s
  slow=RANK:FACTOR          rank's compute takes FACTOR× (repeatable)
  failstop=RANK@TIME        rank stops at simulated TIME
  deadline=T                abandon a trial still running at time T
  ack_timeout=T             initial ACK timeout (default 1e-05)
  backoff=F                 timeout multiplier per retry (default 2)
  max_backoff=T             timeout ceiling (default 0.001)
  retries=N                 retransmissions before giving up (default 10)
example: drop=0.05,stall=0.002/0.0001,deadline=5.0"""


def _float(token: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"--faults: {token!r} needs a number, got {text!r}")


def _int(token: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"--faults: {token!r} needs an integer, got {text!r}")


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the CLI ``--faults`` grammar into a :class:`FaultPlan`.

    The grammar is :data:`parse_fault_spec.GRAMMAR`, also printed by
    ``python -m repro faults``.
    """
    windows = []
    slowdowns = []
    plan_kw: dict = {}
    retry_kw: dict = {}
    seen = set()
    tokens = [t.strip() for t in spec.split(",") if t.strip()]
    if not tokens:
        raise ConfigurationError(
            "--faults: empty spec; omit the flag for a clean run")
    for token in tokens:
        if "=" not in token:
            raise ConfigurationError(
                f"--faults: expected key=value, got {token!r}")
        key, _, value = token.partition("=")
        key = key.strip()
        value = value.strip()
        # degrade and slow accumulate; every other key is single-shot.
        if key not in ("degrade", "slow"):
            if key in seen:
                raise ConfigurationError(
                    f"--faults: duplicate key {key!r}")
            seen.add(key)
        if key == "drop":
            plan_kw["drop_probability"] = _float(token, value)
        elif key == "degrade":
            parts = value.split(":")
            if len(parts) not in (3, 4):
                raise ConfigurationError(
                    f"--faults: degrade needs START:END:BW[:LAT], "
                    f"got {value!r}")
            windows.append(DegradeWindow(
                start=_float(token, parts[0]),
                end=_float(token, parts[1]),
                bandwidth_scale=_float(token, parts[2]),
                latency_scale=(_float(token, parts[3])
                               if len(parts) == 4 else 1.0)))
        elif key == "stall":
            period, sep, duration = value.partition("/")
            if not sep:
                raise ConfigurationError(
                    f"--faults: stall needs PERIOD/DURATION, got {value!r}")
            plan_kw["stall_period"] = _float(token, period)
            plan_kw["stall_duration"] = _float(token, duration)
        elif key == "slow":
            rank, sep, factor = value.partition(":")
            if not sep:
                raise ConfigurationError(
                    f"--faults: slow needs RANK:FACTOR, got {value!r}")
            slowdowns.append((_int(token, rank), _float(token, factor)))
        elif key == "failstop":
            rank, sep, when = value.partition("@")
            if not sep:
                raise ConfigurationError(
                    f"--faults: failstop needs RANK@TIME, got {value!r}")
            plan_kw["fail_stop"] = FailStop(rank=_int(token, rank),
                                            time=_float(token, when))
        elif key == "deadline":
            plan_kw["deadline"] = _float(token, value)
        elif key == "ack_timeout":
            retry_kw["ack_timeout"] = _float(token, value)
        elif key == "backoff":
            retry_kw["backoff_factor"] = _float(token, value)
        elif key == "max_backoff":
            retry_kw["max_backoff"] = _float(token, value)
        elif key == "retries":
            retry_kw["max_retries"] = _int(token, value)
        else:
            raise ConfigurationError(
                f"--faults: unknown key {key!r} in {token!r}")
    if windows:
        plan_kw["degrade_windows"] = tuple(windows)
    if slowdowns:
        plan_kw["rank_slowdown"] = tuple(slowdowns)
    if retry_kw:
        plan_kw["retry"] = RetryPolicy(**retry_kw)
    return FaultPlan(**plan_kw)


#: Re-exported so the CLI can print the grammar without re-stating it.
parse_fault_spec.GRAMMAR = _SPEC_HELP  # type: ignore[attr-defined]
