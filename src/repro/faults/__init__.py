"""Deterministic fault injection and the retry/backoff transport.

``repro.faults`` opens the scenario space the paper's perfect-fabric
assumption closes off: seed-derived packet loss, link-degradation
windows, NIC stalls, per-rank slowdown, and fail-stop — plus the
ACK-timeout retransmission machinery that lets trials survive them.
See ``docs/faults.md``.

Configuration lives in :class:`FaultPlan` (built directly or parsed from
the CLI ``--faults`` grammar via :func:`parse_fault_spec`); the runtime
pieces (:class:`LinkFaults`, :class:`ReliableTransport`) are wired up by
:class:`~repro.mpi.cluster.Cluster` when a plan is present and add zero
work to the hot path when it is not.
"""

from .plan import (DegradeWindow, FailStop, FaultOutcome, FaultPlan,
                   RetryPolicy, parse_fault_spec)
from .transport import FaultStats, LinkFaults, ReliableTransport

__all__ = ["DegradeWindow", "FailStop", "FaultOutcome", "FaultPlan",
           "RetryPolicy", "parse_fault_spec", "FaultStats", "LinkFaults",
           "ReliableTransport"]
