"""Closed-form (simulation-free) evaluation of deterministic cells.

For noise-free, fault-free configurations the DES is a deterministic
composition of LogGP-class costs, so its timeline — and therefore the
paper's four metrics — can be computed directly from ``NetworkParams`` +
``PtpBenchmarkConfig`` in microseconds.  :func:`evaluate_analytic`
produces a ``PtpResult`` marked ``source="analytic"``;
:func:`analytic_supported` says whether a configuration qualifies (and
why not); :func:`plan_prune` splits a whole sweep grid into analytic and
DES cells before fan-out.  Cross-validation against the simulator lives
in ``tests/test_analytic.py`` and is gated at :data:`ANALYTIC_RTOL`.
"""

from .model import (ANALYTIC_RTOL, analytic_supported, evaluate_analytic,
                    evaluate_timeline)
from .prune import PruneDecision, PrunePlan, plan_prune

__all__ = [
    "ANALYTIC_RTOL",
    "analytic_supported",
    "evaluate_analytic",
    "evaluate_timeline",
    "PruneDecision",
    "PrunePlan",
    "plan_prune",
]
