"""Closed-form evaluation of deterministic benchmark cells.

For a noise-free, fault-free configuration the DES is a deterministic
function of its parameters: every thread computes for exactly
``compute_seconds``, every MPI call costs a fixed amount, and every frame
moves through four FIFO stations (the library lock, the sender NIC, the
receiver progress engine, and — for rendezvous partitions — the
receiver NIC and sender progress engine on the PRTS/PCTS round trip).
Each station's service time is closed-form in ``NetworkParams`` +
``MPICosts`` + ``MachineSpec``; the cell's timeline is those service
times composed through a max/sum pipeline recurrence, evaluated here
over at most ``6 * partitions`` arithmetic steps — no simulator, no
event queue, no processes.

The recurrence reproduces the DES timeline to float round-off
(cross-validated to < 1e-9 relative error over the paper grid and the
eager/rendezvous boundary; the property-test gate in
``tests/test_analytic.py`` and the documented tolerance in
``docs/analytic.md`` is :data:`ANALYTIC_RTOL`).

Eligibility (:func:`analytic_supported`) is strict: any configuration it
cannot reproduce *exactly* — noise, faults, non-MULTIPLE threading, a
hot-cache working set that does not fit the LLC (eviction order starts
to matter), or a hot cache with no warmup iteration (the first measured
iteration would differ from the rest) — falls back to the DES.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..core.config import COLD, HOT, PtpBenchmarkConfig
from ..core.runner import PtpResult, PtpSample
from ..machine import bind_threads, scaled_compute_time
from ..metrics import PartitionTimeline, PtpMetrics
from ..mpi.constants import ThreadingMode
from ..partitioned.requests import IMPL_NATIVE, partition_sizes
from ..threadsim.openmp import DEFAULT_OPENMP_COSTS

__all__ = ["ANALYTIC_RTOL", "analytic_supported", "evaluate_timeline",
           "evaluate_analytic"]

#: Documented relative tolerance of the analytic model vs the DES.
#: Measured worst-case disagreement over the paper grid (plus boundary,
#: native, cold-cache, spillover, and oversubscription cells) is ~1e-10 —
#: pure float round-off from composing the same costs in a different
#: order.  The property tests gate at this bound with margin.
ANALYTIC_RTOL = 1e-6

#: Head room demanded of the hot-cache LLC footprint check: barrier
#: messages and bookkeeping keys also occupy residency, so a working set
#: within one page of capacity is not trusted to stay eviction-free.
_LLC_MARGIN = 4096


def _footprint_ok(config: PtpBenchmarkConfig) -> bool:
    """True if every hot-cache access the model times is a guaranteed hit.

    Per rank: every *timed* buffer must fit the LLC on its own, and the
    iteration's whole key footprint (timed copies plus zero-cost
    ``touch`` installs) must fit together — otherwise deterministic
    oldest-first eviction starts deciding hit/miss and the closed form
    no longer holds.
    """
    params = config.inter_node
    llc = config.spec.llc_bytes - _LLC_MARGIN
    sizes = partition_sizes(config.message_bytes, config.partitions)
    mpipcl = config.impl != IMPL_NATIVE
    msg_eager = params.is_eager(config.message_bytes)

    sender_timed: List[int] = []
    sender_all: List[int] = []
    recv_timed: List[int] = []
    recv_all: List[int] = []
    for nb in sizes:
        if mpipcl and params.is_eager(nb):
            sender_timed.append(nb)
            sender_all.append(nb)
            recv_timed.append(nb)
            recv_all.append(nb)
        else:
            # Sender is zero-copy; receiver installs via touch().
            recv_all.append(min(nb, config.spec.llc_bytes))
    if msg_eager:
        sender_timed.append(config.message_bytes)
        sender_all.append(config.message_bytes)
        recv_timed.append(config.message_bytes)
        recv_all.append(config.message_bytes)

    for timed, footprint in ((sender_timed, sender_all),
                             (recv_timed, recv_all)):
        if not timed:
            continue
        if max(timed) > llc or sum(footprint) > llc:
            return False
    return True


def analytic_supported(config: PtpBenchmarkConfig) -> Optional[str]:
    """Why ``config`` cannot be answered analytically, or ``None`` if it can.

    The rules (see ``docs/analytic.md``):

    * the configuration must be deterministic — no fault plan, and a
      noise model that returns exactly ``compute_seconds`` for every
      thread (``NoNoise`` or any percent model at 0%);
    * ``MPI_THREAD_MULTIPLE`` (the benchmark's mode; FUNNELED/SERIALIZED
      change the lock discipline);
    * a hot cache needs ``warmup >= 1`` (iteration 0 would otherwise
      run cold and differ from the rest) and a working set that fits the
      LLC, so every timed access is a guaranteed hit.
    """
    if not config.is_deterministic:
        if config.faults is not None:
            return "fault plan attached"
        return f"nondeterministic noise model ({config.noise.describe()})"
    if config.mode is not ThreadingMode.MULTIPLE:
        return f"threading mode {config.mode.value} (model assumes MULTIPLE)"
    if config.cache == HOT:
        if config.warmup < 1:
            return "hot cache without a warmup iteration"
        if not _footprint_ok(config):
            return "hot-cache working set exceeds the LLC"
    return None


def evaluate_timeline(config: PtpBenchmarkConfig) -> PartitionTimeline:
    """The deterministic iteration's timeline, computed in closed form.

    Mirrors one measured iteration of
    :func:`~repro.core.runner.run_ptp_trial` exactly: same relative
    clock (times anchored at ``bench.part_begin`` /
    ``bench.single_begin``), same cost composition, same FIFO ordering
    at every station.  Caller is responsible for checking
    :func:`analytic_supported` first.
    """
    spec = config.spec
    costs = config.costs
    params = config.inter_node   # two ranks, one per node, one switch hop
    omp = DEFAULT_OPENMP_COSTS
    m, n = config.message_bytes, config.partitions
    nthreads = config.threads
    ppt = config.partitions_per_thread
    binding = bind_threads(nthreads, spec, config.bind_policy)
    sizes = partition_sizes(m, n)
    latency = params.path_latency(1)
    native = config.impl == IMPL_NATIVE
    hot = config.cache != COLD
    copy_bw = spec.cache_bandwidth if hot else spec.memory_bandwidth

    def access(nbytes: int) -> float:
        # Hot: a guaranteed LLC hit (the eligibility footprint check);
        # cold: the per-iteration invalidation makes every copy a miss.
        return nbytes / copy_bw if nbytes else 0.0

    def numa_pen(core: int) -> float:
        return (spec.inter_socket_penalty
                if spec.is_remote_to_nic(core) else 0.0)

    def lock_service(core: int) -> float:
        hold = costs.lock_hold
        if spec.is_remote_to_nic(core):
            hold += costs.lock_remote_penalty
        return (costs.pready_cost + costs.call_overhead + costs.post_cost
                + params.send_overhead + numa_pen(core) + hold)

    fork = omp.fork_cost(nthreads)
    joinc = omp.join_cost(nthreads)
    wall = [scaled_compute_time(config.compute_seconds,
                                binding.oversubscription_factor(t), spec)
            for t in range(nthreads)]

    # ---- partitioned phase: the station pipeline ---------------------
    # Five FIFO servers; jobs flow thread -> lock -> sender NIC ->
    # receiver progress (eager PDATA arrives here) and, for rendezvous
    # partitions, on around the PRTS -> PCTS -> PDATA loop.  A small
    # chronological merge keeps each server's service order equal to its
    # arrival order, exactly as the DES's FIFO queues do.
    pready = [0.0] * n
    arrival = [0.0] * n
    free = {"lock": 0.0, "snic": 0.0, "rprog": 0.0,
            "rnic": 0.0, "sprog": 0.0}
    heap: list = []
    seq = 0

    def push(t: float, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (t, seq, kind, payload))
        seq += 1

    def emit_pready(tid: int, p: int, t: float) -> None:
        # MPI_Pready stamps its event at call time, before any cost.
        pready[p] = t
        if native:
            push(t, "native", (tid, p))
        elif params.is_eager(sizes[p]):
            # Eager bounce-buffer copy runs outside the library lock.
            push(t + access(sizes[p]), "lock", (tid, p))
        else:
            push(t, "lock", (tid, p))

    def chain_next(tid: int, p: int, t: float) -> None:
        if p + 1 < (tid + 1) * ppt:
            emit_pready(tid, p + 1, t)

    for tid in range(nthreads):
        emit_pready(tid, tid * ppt, fork + wall[tid])

    gap = params.injection_gap
    control = params.wire_time(0)

    while heap:
        t, _, kind, payload = heapq.heappop(heap)
        if kind == "lock":
            tid, p = payload
            comp = max(free["lock"], t) + lock_service(binding.core_of(tid))
            free["lock"] = comp
            if params.is_eager(sizes[p]):
                push(comp, "snic", ("pdata", p, True))
            else:
                push(comp, "snic", ("prts", p, False))
            chain_next(tid, p, comp)
        elif kind == "native":
            tid, p = payload
            comp = t + costs.native_pready_cost + numa_pen(
                binding.core_of(tid))
            push(comp, "snic", ("pdata", p, False))
            chain_next(tid, p, comp)
        elif kind == "snic":
            what, p, copied = payload
            wire = control if what == "prts" else params.wire_time(sizes[p])
            comp = max(free["snic"], t) + gap + wire
            free["snic"] = comp
            push(comp + latency, "rprog", (what, p, copied))
        elif kind == "rprog":
            what, p, copied = payload
            if what == "pdata":
                cost = params.recv_overhead
                if copied:   # eager MPIPCL partitions copy out of the
                    cost += access(sizes[p])   # bounce buffer
                comp = max(free["rprog"], t) + cost
                free["rprog"] = comp
                arrival[p] = comp
            else:
                comp = max(free["rprog"], t) + costs.post_cost
                free["rprog"] = comp
                push(comp, "rnic", p)
        elif kind == "rnic":
            comp = max(free["rnic"], t) + gap + control
            free["rnic"] = comp
            push(comp + latency, "sprog", payload)
        else:  # sprog
            comp = (max(free["sprog"], t) + costs.post_cost
                    + params.rendezvous_overhead)
            free["sprog"] = comp
            push(comp, "snic", ("pdata", payload, False))

    # ---- single-send phase -------------------------------------------
    join_time = fork + max(wall) + joinc

    # The main thread lives on the NIC socket's first core: no NUMA
    # penalty, no remote lock surcharge, and an uncontended lock.
    entry = (costs.call_overhead + costs.post_cost + params.send_overhead
             + costs.lock_hold)
    if params.is_eager(m):
        pt2pt = (access(m) + entry
                 + gap + params.wire_time(m) + latency
                 + params.match_cost + params.recv_overhead + access(m))
    else:
        pt2pt = (entry
                 + gap + control + latency                       # RTS
                 + params.match_cost + costs.post_cost           # match
                 + gap + control + latency                       # CTS
                 + costs.post_cost + params.rendezvous_overhead
                 + gap + params.wire_time(m) + latency           # RDATA
                 + params.recv_overhead)

    return PartitionTimeline(
        message_bytes=m,
        pready_times=tuple(pready),
        arrival_times=tuple(arrival),
        join_time=join_time,
        pt2pt_time=pt2pt,
    )


def evaluate_analytic(config: PtpBenchmarkConfig) -> PtpResult:
    """A ``PtpResult`` for a deterministic cell, without a simulator.

    Every measured iteration of a deterministic trial is identical, so
    the one closed-form timeline is replicated ``config.iterations``
    times (sharing the frozen timeline/metrics objects).  The result is
    marked ``source="analytic"`` with ``trials=0`` — no simulation ran —
    and carries no event digest (there was no event stream to hash).
    """
    reason = analytic_supported(config)
    if reason is not None:
        from ..errors import ConfigurationError
        raise ConfigurationError(
            f"config not analytic-eligible: {reason}")
    timeline = evaluate_timeline(config)
    metrics = PtpMetrics.from_timeline(timeline)
    result = PtpResult(config=config, source="analytic", trials=0)
    for it in range(config.iterations):
        result.samples.append(
            PtpSample(iteration=it, timeline=timeline, metrics=metrics))
    return result
