"""Classify a sweep grid into analytic and DES cells before fan-out.

``plan_prune`` is the grid-level face of :func:`repro.analytic.model.
analytic_supported`: given the cells a sweep is about to run, it decides
up front which ones the closed-form evaluator will answer and which must
go to the simulator (and why).  ``run_cells`` consults the same
per-config predicate cell by cell; this module exists so callers — the
CLI's provenance footer, capacity planning, tests — can see the split
without executing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..core.config import PtpBenchmarkConfig
from .model import analytic_supported

__all__ = ["PruneDecision", "PrunePlan", "plan_prune"]


@dataclass(frozen=True)
class PruneDecision:
    """One cell's routing: analytic when ``reason`` is ``None``."""

    config: PtpBenchmarkConfig
    reason: Optional[str]

    @property
    def analytic(self) -> bool:
        return self.reason is None


@dataclass(frozen=True)
class PrunePlan:
    """The grid split into analytic-eligible and simulation-bound cells."""

    decisions: Tuple[PruneDecision, ...]

    @property
    def analytic_cells(self) -> Tuple[PtpBenchmarkConfig, ...]:
        return tuple(d.config for d in self.decisions if d.analytic)

    @property
    def des_cells(self) -> Tuple[PtpBenchmarkConfig, ...]:
        return tuple(d.config for d in self.decisions if not d.analytic)

    def describe(self) -> str:
        """One line for logs: counts plus the distinct DES reasons."""
        n_an = sum(1 for d in self.decisions if d.analytic)
        n_des = len(self.decisions) - n_an
        line = (f"{len(self.decisions)} cells: {n_an} analytic, "
                f"{n_des} simulated")
        reasons = sorted({d.reason for d in self.decisions if d.reason})
        if reasons:
            line += " (" + "; ".join(reasons) + ")"
        return line


def plan_prune(cells: Iterable[PtpBenchmarkConfig]) -> PrunePlan:
    """Decide, per cell, whether the analytic evaluator may answer it."""
    return PrunePlan(decisions=tuple(
        PruneDecision(config=c, reason=analytic_supported(c))
        for c in cells))
