"""The built-in event taxonomy, registered on the process-wide schema.

Every instrumented component of the substrate emits one of the kinds
below; the module-level constants are the interned
:class:`~repro.obs.schema.EventKind` handles emit sites import directly
(one attribute load at emit time, no string lookup).

Categories
----------
``part.*``
    Partitioned-request lifecycle.  The *entry* kinds (``part.init``,
    ``part.start``, ``part.wait``, ``part.pready``, ``part.parrived``,
    ``part.buffer_write``, ``part.buffer_read``, ``part.arrived``) fire
    where the old checker shadow hooks did — before argument validation —
    and carry the live request object in the internal ``req`` field so
    the dynamic checker can shadow the state machine.  The remaining
    kinds mark post-cost runtime milestones.
``send.* / recv.*``
    Ordinary point-to-point milestones.
``thread.* / team.*``
    Simulated OpenMP regions.
``nic.*``
    Per-rank NIC transmit engine activity.
``bench.*``
    Phase markers emitted by the micro-benchmark runner; the streaming
    :class:`~repro.obs.timeline.TimelineBuilder` turns them (plus
    ``part.pready``/``part.arrived``) into
    :class:`~repro.metrics.timeline.PartitionTimeline` objects.
``fault.*``
    Injected faults firing (``repro.faults``): dropped frames, NIC
    stalls, degraded-link transmissions, duplicate deliveries, and
    fail-stops.  Silent when no :class:`~repro.faults.FaultPlan` is
    configured.
``retry.*``
    The reliable transport reacting to faults: retransmissions, ACKs
    clearing pending frames, and frames abandoned after the retry
    budget.
``pool.*``
    Lifecycle of the persistent worker pool (:mod:`repro.core.pool`):
    worker boots, task dispatch/completion, work stealing, crash
    recovery, and end-of-run drains.  Unlike every other category these
    are *manager-side* events stamped with host-monotonic seconds since
    pool creation — they describe how a sweep was executed, never what
    it computed, so they are excluded from result event digests by
    construction (the per-cell digest is sealed inside the worker).
``service.*``
    The benchmark daemon (:mod:`repro.service`): request admission,
    quota rejections, scheduler batches, and responses.  Like ``pool.*``
    these are host-side lifecycle events (seconds since the service
    started) describing how requests were served, never what they
    computed.
"""

from __future__ import annotations

from .schema import SCHEMA

__all__ = [
    "PART_INIT", "PART_START", "PART_WAIT", "PART_PREADY", "PART_PARRIVED",
    "PART_BUFFER_WRITE", "PART_BUFFER_READ", "PART_ARRIVED",
    "PART_SEND_START", "PART_RECV_START", "PART_SEND_INJECTED",
    "PART_SEND_EPOCH_COMPLETE", "PART_RECV_EPOCH_COMPLETE",
    "SEND_START", "SEND_COMPLETE", "RECV_POST", "RECV_COMPLETE",
    "RECV_CANCELLED", "THREAD_COMPUTED", "TEAM_FORK", "TEAM_JOIN",
    "NIC_TX_START", "NIC_TX_DONE",
    "BENCH_PART_BEGIN", "BENCH_SINGLE_BEGIN", "BENCH_JOIN",
    "BENCH_SEND_BEGIN", "BENCH_RECV_COMPLETE",
    "FAULT_DROP", "FAULT_STALL", "FAULT_DEGRADE", "FAULT_DUPLICATE",
    "FAULT_FAILSTOP", "RETRY_RETRANSMIT", "RETRY_ACK", "RETRY_ABANDONED",
    "POOL_WORKER_BOOT", "POOL_DISPATCH", "POOL_RESULT",
    "POOL_DISPATCH_BATCH", "POOL_RESULT_BATCH", "POOL_STEAL",
    "POOL_WORKER_CRASH", "POOL_DRAIN",
    "SERVICE_REQUEST", "SERVICE_RESPONSE", "SERVICE_REJECT",
    "SERVICE_QUOTA_REJECT", "SERVICE_BATCH",
]

# -- partitioned lifecycle (entry events; req is in-process only) ----------
PART_INIT = SCHEMA.register(
    "part.init", ("rank", "side", "peer", "tag", "nbytes", "partitions",
                  "req"), internal=("req",),
    doc="psend_init/precv_init registered a partitioned request")
PART_START = SCHEMA.register(
    "part.start", ("rank", "side", "epoch", "req"), internal=("req",),
    doc="start() called to arm a new epoch (pre-validation)")
PART_WAIT = SCHEMA.register(
    "part.wait", ("rank", "side", "epoch", "req"), internal=("req",),
    doc="wait() entered to complete the current epoch")
PART_PREADY = SCHEMA.register(
    "part.pready", ("rank", "partition", "epoch", "req"),
    internal=("req",),
    doc="MPI_Pready call time for one partition (pre-cost, the paper's "
        "sender-side timestamp)")
PART_PARRIVED = SCHEMA.register(
    "part.parrived", ("rank", "partition", "epoch", "req"),
    internal=("req",),
    doc="MPI_Parrived poll of one partition")
PART_BUFFER_WRITE = SCHEMA.register(
    "part.buffer_write", ("rank", "partition", "epoch", "req"),
    internal=("req",),
    doc="application annotated a send-buffer write")
PART_BUFFER_READ = SCHEMA.register(
    "part.buffer_read", ("rank", "partition", "epoch", "req"),
    internal=("req",),
    doc="application annotated a receive-buffer read")
PART_ARRIVED = SCHEMA.register(
    "part.arrived", ("rank", "partition", "epoch", "nbytes", "req"),
    internal=("req",),
    doc="one partition landed in the receive buffer (the paper's "
        "receiver-side timestamp)")

# -- partitioned runtime milestones (post-cost, wire-only) -----------------
PART_SEND_START = SCHEMA.register(
    "part.send_start", ("rank", "epoch"),
    doc="send-side start() completed (costs charged)")
PART_RECV_START = SCHEMA.register(
    "part.recv_start", ("rank", "epoch"),
    doc="receive-side start() completed (internal receives posted)")
PART_SEND_INJECTED = SCHEMA.register(
    "part.send_injected", ("rank", "partition", "epoch"),
    doc="NIC finished injecting one partition's data")
PART_SEND_EPOCH_COMPLETE = SCHEMA.register(
    "part.send_epoch_complete", ("rank", "epoch"),
    doc="every partition of the epoch has been injected")
PART_RECV_EPOCH_COMPLETE = SCHEMA.register(
    "part.recv_epoch_complete", ("rank", "epoch"),
    doc="every partition of the epoch has arrived")

# -- ordinary point-to-point ----------------------------------------------
SEND_START = SCHEMA.register(
    "send.start", ("rank", "dest", "tag", "nbytes"),
    doc="isend posted (eager injection or RTS queued)")
SEND_COMPLETE = SCHEMA.register(
    "send.complete", ("rank", "dest", "tag", "nbytes"),
    doc="send-side completion (buffer reusable)")
RECV_POST = SCHEMA.register(
    "recv.post", ("rank", "source", "tag"),
    doc="receive posted to the matching engine")
RECV_COMPLETE = SCHEMA.register(
    "recv.complete", ("rank", "source", "tag", "nbytes"),
    doc="receive-side completion (data in the user buffer)")
RECV_CANCELLED = SCHEMA.register(
    "recv.cancelled", ("rank", "tag"),
    doc="MPI_Cancel succeeded on a pending receive")

# -- simulated threads -----------------------------------------------------
THREAD_COMPUTED = SCHEMA.register(
    "thread.computed", ("rank", "thread", "nominal", "wall"),
    doc="one thread finished a compute burst (nominal vs wall seconds)")
TEAM_FORK = SCHEMA.register(
    "team.fork", ("rank", "nthreads"),
    doc="parallel region opened")
TEAM_JOIN = SCHEMA.register(
    "team.join", ("rank", "team", "nthreads"),
    doc="parallel region joined (implicit barrier paid)")

# -- NIC transmit engine ---------------------------------------------------
NIC_TX_START = SCHEMA.register(
    "nic.tx_start", ("rank", "dst", "nbytes"),
    doc="transmit engine started serializing one message")
NIC_TX_DONE = SCHEMA.register(
    "nic.tx_done", ("rank", "dst", "nbytes"),
    doc="injection finished; propagation toward the destination begins")

# -- micro-benchmark phase markers ----------------------------------------
BENCH_PART_BEGIN = SCHEMA.register(
    "bench.part_begin", ("rank", "iteration", "message_bytes",
                         "partitions"),
    doc="partitioned phase: parallel region about to open (the anchor "
        "of the iteration's relative clock)")
BENCH_SINGLE_BEGIN = SCHEMA.register(
    "bench.single_begin", ("rank", "iteration"),
    doc="single-send phase: parallel region about to open")
BENCH_JOIN = SCHEMA.register(
    "bench.join", ("rank", "iteration"),
    doc="single-send phase: compute threads joined")
BENCH_SEND_BEGIN = SCHEMA.register(
    "bench.send_begin", ("rank", "iteration"),
    doc="single-send phase: the reference m-byte send is being posted")
BENCH_RECV_COMPLETE = SCHEMA.register(
    "bench.recv_complete", ("rank", "iteration"),
    doc="single-send phase: the reference receive completed "
        "(closes the iteration)")

# -- fault injection (repro.faults) ---------------------------------------
FAULT_DROP = SCHEMA.register(
    "fault.drop", ("rank", "dst", "kind", "seq", "nbytes"),
    doc="the fabric lost one injected frame (kind/seq identify it; "
        "seq is -1 for untracked frames)")
FAULT_STALL = SCHEMA.register(
    "fault.nic_stall", ("rank", "duration"),
    doc="the NIC stalled before injecting (periodic stall window)")
FAULT_DEGRADE = SCHEMA.register(
    "fault.link_degrade", ("rank", "dst", "bandwidth_scale",
                           "latency_scale"),
    doc="one transmission ran inside a link-degradation window")
FAULT_DUPLICATE = SCHEMA.register(
    "fault.duplicate", ("rank", "src", "seq"),
    doc="receiver discarded an already-delivered frame (re-ACKed)")
FAULT_FAILSTOP = SCHEMA.register(
    "fault.fail_stop", ("rank",),
    doc="rank failed-stop: NIC dead, inbound frames black-holed")

# -- reliable transport (retry/backoff) -----------------------------------
RETRY_RETRANSMIT = SCHEMA.register(
    "retry.retransmit", ("rank", "dst", "seq", "attempt", "timeout"),
    doc="ACK timeout expired; the frame is being re-injected "
        "(timeout = the next backoff interval)")
RETRY_ACK = SCHEMA.register(
    "retry.ack", ("rank", "src", "seq"),
    doc="an ACK cleared one pending frame at the sender")
RETRY_ABANDONED = SCHEMA.register(
    "retry.abandoned", ("rank", "dst", "seq", "attempts"),
    doc="retry budget exhausted; the frame is given up for lost")

# -- persistent worker pool (repro.core.pool; manager-side) ----------------
POOL_WORKER_BOOT = SCHEMA.register(
    "pool.worker_boot", ("worker", "pid", "boot_seconds"),
    doc="a pool worker finished booting (imports + warm tables)")
POOL_DISPATCH = SCHEMA.register(
    "pool.dispatch", ("worker", "task"),
    doc="the manager handed one task to a worker")
POOL_RESULT = SCHEMA.register(
    "pool.result", ("worker", "task"),
    doc="one task's streamed result reached the manager")
POOL_DISPATCH_BATCH = SCHEMA.register(
    "pool.dispatch_batch", ("worker", "tasks"),
    doc="the manager handed one chunk of tasks to a worker in a single "
        "queue message (batched dispatch)")
POOL_RESULT_BATCH = SCHEMA.register(
    "pool.result_batch", ("worker", "tasks"),
    doc="one chunk's worth of streamed results reached the manager in a "
        "single queue message")
POOL_STEAL = SCHEMA.register(
    "pool.steal", ("thief", "victim", "task"),
    doc="an idle worker stole a queued task from a loaded peer")
POOL_WORKER_CRASH = SCHEMA.register(
    "pool.worker_crash", ("worker", "task"),
    doc="a worker process died; its work is requeued or run inline "
        "(task is -1 when nothing was in flight)")
POOL_DRAIN = SCHEMA.register(
    "pool.drain", ("tasks", "stolen", "crashes"),
    doc="one pool run drained: every streamed result was consumed")

# -- benchmark daemon (repro.service; host-side) ---------------------------
SERVICE_REQUEST = SCHEMA.register(
    "service.request", ("client", "priority", "fingerprint"),
    doc="the scheduler admitted one benchmark request")
SERVICE_RESPONSE = SCHEMA.register(
    "service.response", ("client", "fingerprint", "wait_seconds"),
    doc="one request was answered (wait = admission to completion)")
SERVICE_REJECT = SCHEMA.register(
    "service.reject", ("client", "status", "reason"),
    doc="a request was rejected before scheduling (malformed config, "
        "bad payload); status is the HTTP-style code")
SERVICE_QUOTA_REJECT = SCHEMA.register(
    "service.quota_reject", ("client", "inflight", "limit"),
    doc="a request exceeded its client's in-flight quota (429)")
SERVICE_BATCH = SCHEMA.register(
    "service.batch", ("size", "queued"),
    doc="the scheduler dispatched one batch of requests to the engine "
        "(queued = requests still waiting after the batch was cut)")
