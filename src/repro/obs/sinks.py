"""Built-in sinks: memory capture, counters/histograms, stream digests.

A sink is anything with ``accept(record)`` (called once per subscribed
event, in emission order) and ``finalize()`` (called when the stream
ends).  The streaming :class:`~repro.obs.timeline.TimelineBuilder` and
the dynamic checker (:class:`repro.analysis.checker.Checker`) are sinks
too; this module holds the generic ones.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .record import EventRecord

__all__ = ["Sink", "MemorySink", "CounterSink", "DigestSink",
           "canonical_line"]


class Sink:
    """Base class for event consumers; subclasses override :meth:`accept`.

    The base class declares empty ``__slots__`` so the built-in sinks can
    be fully slotted (accept() runs once per subscribed event);
    subclasses that don't declare ``__slots__`` get a ``__dict__`` as
    usual.
    """

    __slots__ = ()

    def accept(self, record: EventRecord) -> None:
        """Receive one event record (emission order is guaranteed)."""

    def finalize(self) -> None:
        """Called once after the last event of the stream."""


class MemorySink(Sink):
    """Retains every accepted record in a list for later inspection.

    Replaces the query surface of the old ``TraceRecorder``: filter by
    kind name and payload fields, pull timestamps, or bracket a span.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[EventRecord] = []

    def accept(self, record: EventRecord) -> None:
        """Append the record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[str] = None,
               **fields: Any) -> List[EventRecord]:
        """Records matching a kind name and/or exact payload field values."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind.name != kind:
                continue
            if any(rec.get(f, _MISSING) != v for f, v in fields.items()):
                continue
            out.append(rec)
        return out

    def times(self, kind: str, **fields: Any) -> List[float]:
        """Timestamps of matching records, in emission order."""
        return [rec.time for rec in self.filter(kind, **fields)]

    def first(self, kind: str, **fields: Any) -> Optional[EventRecord]:
        """Earliest matching record, or None."""
        matches = self.filter(kind, **fields)
        return matches[0] if matches else None

    def last(self, kind: str, **fields: Any) -> Optional[EventRecord]:
        """Latest matching record, or None."""
        matches = self.filter(kind, **fields)
        return matches[-1] if matches else None

    def span(self, kind: str, **fields: Any) -> float:
        """Last-minus-first timestamp over matching records (0.0 if <2)."""
        ts = self.times(kind, **fields)
        return ts[-1] - ts[0] if len(ts) >= 2 else 0.0


_MISSING = object()


def _bucket(nbytes: int) -> int:
    """Power-of-two histogram bucket index for a byte count."""
    return max(0, int(nbytes).bit_length() - 1)


class CounterSink(Sink):
    """Aggregates per-``(kind, rank)`` event counts and byte histograms.

    Feeds the diagnostics report: any record carrying a ``rank`` field is
    counted under that rank (rank -1 otherwise), and records with an
    ``nbytes`` field additionally land in a power-of-two size histogram.
    """

    __slots__ = ("counts", "histograms", "total")

    def __init__(self) -> None:
        self.counts: Dict[Tuple[str, int], int] = {}
        self.histograms: Dict[str, Dict[int, int]] = {}
        self.total = 0

    def accept(self, record: EventRecord) -> None:
        """Count the record and histogram its ``nbytes`` if present."""
        rank = record.get("rank", -1)
        if not isinstance(rank, int):
            rank = -1
        key = (record.kind.name, rank)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.total += 1
        nbytes = record.get("nbytes")
        if isinstance(nbytes, int) and nbytes > 0:
            hist = self.histograms.setdefault(record.kind.name, {})
            bucket = _bucket(nbytes)
            hist[bucket] = hist.get(bucket, 0) + 1

    def count(self, kind: str, rank: Optional[int] = None) -> int:
        """Total events of ``kind`` (for one rank, or all ranks)."""
        if rank is not None:
            return self.counts.get((kind, rank), 0)
        return sum(n for (k, _), n in self.counts.items() if k == kind)

    def rank_counts(self, rank: int) -> Dict[str, int]:
        """Kind → count mapping for one rank."""
        return {k: n for (k, r), n in sorted(self.counts.items())
                if r == rank}

    def rows(self) -> List[Tuple[str, int, int]]:
        """Sorted ``(kind, rank, count)`` rows for tabular reports."""
        return [(k, r, n) for (k, r), n in sorted(self.counts.items())]

    def histogram_rows(self, kind: str) -> List[Tuple[str, int]]:
        """Sorted ``(size-range, count)`` rows for one kind's histogram."""
        hist = self.histograms.get(kind, {})
        return [(f"[{1 << b}, {1 << (b + 1)})", n)
                for b, n in sorted(hist.items())]


def _serialize_block(triples) -> str:
    """The exact canonical byte stream for ``(time, kind, values)``
    triples: one ``canonical_line`` per triple, each newline-terminated.

    Batch form so :class:`DigestSink` pays the setup (local bindings,
    output list, caches) once per block instead of once per record; the
    per-line format is the contract :func:`canonical_line` documents.
    Two caches amortize the expensive string formatting without changing
    a single output byte:

    * the previous timestamp's hex string is reused when the next triple
      carries the *same float object* (``is`` check — bursts of events at
      one sim instant share the clock object, and identity can never
      conflate ``0.0`` with ``-0.0`` the way ``==`` would);
    * ``(prefix, value)`` fragments for exact ``int``/``str`` payloads
      (ranks, byte counts, tags — the overwhelming majority) are memoized
      per block.  ``bool`` never enters the cache (its class is ``bool``,
      not ``int``), so ``True`` cannot alias a cached ``1``.
    """
    out: List[str] = []
    append = out.append
    frags: Dict[Tuple[str, Any], str] = {}
    frag_get = frags.get
    last_time: Any = None
    last_hex = ""
    for time, kind, values in triples:
        if time is last_time:
            append(last_hex)
        else:
            last_time = time
            last_hex = (time.hex() if time.__class__ is float
                        else (format(time, "x") if isinstance(time, int)
                              else float(time).hex()))
            append(last_hex)
        append(kind._canon_name)
        idx = kind._wire_index
        if len(values) != len(idx):
            values = [values[i] for i in idx]
        # Exact-class checks first, most common type (int payloads:
        # ranks, byte counts, partition indices) leading; the isinstance
        # chain keeps subclasses such as numpy scalars rendering exactly
        # as plain repr()/hex() dispatch would.
        for prefix, value in zip(kind._canon_prefixes, values):
            cls = value.__class__
            if cls is int or cls is str:
                key = (prefix, value)
                frag = frag_get(key)
                if frag is None:
                    frags[key] = frag = prefix + repr(value)
                append(frag)
            elif cls is float:
                append(prefix + value.hex())
            elif cls is bool or isinstance(value, bool):
                append(prefix + ("true" if value else "false"))
            elif isinstance(value, float):
                append(prefix + value.hex())
            else:
                append(prefix + repr(value))
        append("\n")
    return "".join(out)


def canonical_line(record: EventRecord) -> str:
    """Bit-stable one-line serialization of a record's wire fields.

    ``<time>|<kind>|<field>=<value>|...`` — floats render via
    ``float.hex()`` so the representation is exact; the digest over these
    lines is what the serial / ``--jobs N`` / cached bit-identity tests
    compare.
    """
    return _serialize_block(
        ((record.time, record.kind, record.values),))[:-1]


class DigestSink(Sink):
    """SHA-256 digest over the canonical event stream.

    Equal digests mean bit-identical streams: same kinds, same order,
    same timestamps, same wire payloads.  Used by the runner to prove
    serial, parallel, and cached sweeps observe the same events.
    """

    __slots__ = ("_hash", "_pending", "count")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._pending: List[Tuple[Any, Any, Tuple]] = []
        self.count = 0

    def accept(self, record: EventRecord) -> None:
        """Fold the record's canonical line into the digest.

        Events are buffered and serialized in blocks — the byte stream
        hashed is identical to hashing each canonical line (plus newline)
        individually, so the digest value is unchanged, but the
        per-record cost drops to a list append.  Payload tuples are
        immutable, so deferring serialization cannot change what is
        hashed.
        """
        self._pending.append((record.time, record.kind, record.values))
        self.count += 1
        if len(self._pending) >= 512:
            self._fold()

    def accept_raw(self, time: float, kind, values: Tuple) -> None:
        """Record-free fast path: same stream bytes, no
        :class:`EventRecord` allocation (see ``EventBus.emit``)."""
        self._pending.append((time, kind, values))
        self.count += 1
        if len(self._pending) >= 512:
            self._fold()

    def _fold(self) -> None:
        pending = self._pending
        if pending:
            self._hash.update(_serialize_block(pending).encode("utf-8"))
            del pending[:]

    def finalize(self) -> None:
        """Fold any buffered lines once the stream ends."""
        self._fold()

    def hexdigest(self) -> str:
        """Digest of everything accepted so far."""
        self._fold()
        return self._hash.hexdigest()
