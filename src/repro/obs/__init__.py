"""Structured instrumentation: typed events, one bus, pluggable sinks.

``repro.obs`` is the single substrate every recorder in the suite is
built on — the architecture a Caliper-style analysis layer gives real
MPI benchmarks.  The pieces:

* :mod:`~repro.obs.schema` — registered event kinds with declared
  fields and interned integer ids (:data:`SCHEMA` holds the built-ins
  from :mod:`~repro.obs.kinds`).
* :mod:`~repro.obs.record` — slotted, immutable :class:`EventRecord`.
* :mod:`~repro.obs.bus` — :class:`EventBus` with per-kind dispatch; an
  emit with no subscriber costs one list index plus a falsy test.
* :mod:`~repro.obs.sinks` — :class:`MemorySink` (capture + queries),
  :class:`CounterSink` (per-rank counts and byte histograms for the
  diagnostics report), :class:`DigestSink` (SHA-256 stream identity).
* :mod:`~repro.obs.timeline` — the streaming :class:`TimelineBuilder`
  producing :class:`~repro.metrics.timeline.PartitionTimeline` objects.
* :mod:`~repro.obs.export` — JSONL and Chrome ``about://tracing``
  exporters (``repro trace export``).

A quick capture::

    cluster = Cluster(nranks=2)
    mem = cluster.obs.record("part.*")   # MemorySink on all part events
    cluster.run(program)
    mem.times("part.arrived")
"""

from . import kinds
from .bus import EventBus
from .export import (event_to_dict, to_chrome_trace, write_chrome_trace,
                     write_jsonl)
from .record import EventRecord
from .schema import SCHEMA, EventKind, EventSchema
from .sinks import (CounterSink, DigestSink, MemorySink, Sink,
                    canonical_line)
from .timeline import TimelineBuilder

__all__ = [
    "SCHEMA",
    "EventKind",
    "EventSchema",
    "EventRecord",
    "EventBus",
    "Sink",
    "MemorySink",
    "CounterSink",
    "DigestSink",
    "canonical_line",
    "TimelineBuilder",
    "event_to_dict",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "kinds",
]
