"""The event bus: per-kind sink dispatch with a near-zero disabled path.

Each :class:`EventBus` keeps one sink list per registered kind, indexed
by the kind's interned integer id.  :meth:`EventBus.emit` therefore costs
one list index and one falsy test when nothing subscribes to that kind —
the guarantee the ``obs_emission_disabled`` kernel in
``benchmarks/bench_kernel.py`` measures and ``scripts/bench_guard.py``
gates at 5% over baseline.

Sinks subscribe with kind patterns (``"part.*"``, ``"*"``) resolved
through the schema; records are delivered in emission order, which is the
total order every exporter and digest preserves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .record import EventRecord
from .schema import SCHEMA, EventKind, EventSchema
from .sinks import MemorySink, Sink

__all__ = ["EventBus"]

#: Truthy marker stored in ``EventBus._raw_by_kind`` when at least one of
#: a kind's sinks needs a built :class:`EventRecord`.  Falsy entries mean
#: "no subscribers", so the disabled emit path stays a single index plus
#: one falsy test.
_RECORD_PATH = ("record-path",)


class EventBus:
    """Dispatches :class:`~repro.obs.record.EventRecord` to subscribed sinks."""

    __slots__ = ("schema", "_by_kind", "_raw_by_kind", "_subs")

    def __init__(self, schema: Optional[EventSchema] = None) -> None:
        self.schema = schema if schema is not None else SCHEMA
        self._by_kind: List[List[Sink]] = [[] for _ in
                                           range(len(self.schema))]
        # Per kind: tuple of bound ``accept_raw`` methods when *every*
        # subscriber supports the record-free path (empty tuple = no
        # subscribers), or the _RECORD_PATH marker when at least one sink
        # needs a built EventRecord.  Kept in lockstep with _by_kind by
        # _refresh_raw.
        self._raw_by_kind: List[tuple] = [() for _ in
                                          range(len(self.schema))]
        self._subs: List[Tuple[Sink, Tuple[EventKind, ...]]] = []

    def attach(self, sink: Sink, patterns=("*",)) -> Sink:
        """Subscribe ``sink`` to every kind matching ``patterns``.

        Returns the sink, so ``builder = bus.attach(TimelineBuilder(...))``
        reads naturally.  Unknown patterns raise
        :class:`~repro.errors.ConfigurationError`.
        """
        kinds = tuple(self.schema.resolve(patterns))
        for kind in kinds:
            self._ensure(kind.id).append(sink)
            self._refresh_raw(kind.id)
        self._subs.append((sink, kinds))
        return sink

    def detach(self, sink: Sink) -> None:
        """Unsubscribe ``sink`` from every kind it was attached to."""
        for recorded, kinds in self._subs:
            if recorded is sink:
                for kind in kinds:
                    lst = self._ensure(kind.id)
                    while sink in lst:
                        lst.remove(sink)
                    self._refresh_raw(kind.id)
        self._subs = [(s, k) for s, k in self._subs if s is not sink]

    def _refresh_raw(self, kind_id: int) -> None:
        """Recompute the raw-dispatch entry for one kind."""
        raws = []
        for sink in self._by_kind[kind_id]:
            fn = getattr(sink, "accept_raw", None)
            if fn is None:
                self._raw_by_kind[kind_id] = _RECORD_PATH
                return
            raws.append(fn)
        self._raw_by_kind[kind_id] = tuple(raws)

    def record(self, *patterns: str) -> MemorySink:
        """Attach and return a fresh :class:`MemorySink` for ``patterns``.

        The one-liner for tests and ad-hoc inspection::

            mem = bus.record("part.*")
        """
        return self.attach(MemorySink(), patterns or ("*",))

    def subscribed(self, kind: EventKind) -> bool:
        """True when at least one sink listens to ``kind``."""
        return (kind.id < len(self._by_kind)
                and bool(self._by_kind[kind.id]))

    def emit(self, kind: EventKind, time: float, *values) -> None:
        """Deliver one event to the sinks subscribed to ``kind``.

        The disabled fast path — no subscriber for this kind — is a list
        index plus a falsy check.  When every subscriber implements
        ``accept_raw`` (e.g. a lone :class:`~repro.obs.sinks.DigestSink`),
        the payload is handed over as ``(time, kind, values)`` and no
        :class:`EventRecord` is allocated; otherwise the record object is
        built once and shared by every sink.
        """
        try:
            raw = self._raw_by_kind[kind.id]
        except IndexError:
            # Kind registered after this bus was built; nothing can have
            # subscribed to it yet.
            self._ensure(kind.id)
            return
        if not raw:
            return
        if raw is not _RECORD_PATH:
            for fn in raw:
                fn(time, kind, values)
            return
        record = EventRecord(time, kind, values)
        for sink in self._by_kind[kind.id]:
            sink.accept(record)

    def finalize(self) -> None:
        """Tell every attached sink the stream is complete."""
        seen = []
        for sink, _ in self._subs:
            if any(sink is s for s in seen):
                continue
            seen.append(sink)
            sink.finalize()

    def _ensure(self, kind_id: int) -> List[Sink]:
        while len(self._by_kind) <= kind_id:
            self._by_kind.append([])
            self._raw_by_kind.append(())
        return self._by_kind[kind_id]
