"""Slotted, immutable event records.

An :class:`EventRecord` is the unit that flows from an emit site through
the bus to every subscribed sink: the simulated timestamp, the interned
:class:`~repro.obs.schema.EventKind`, and the payload values in the
kind's declared field order.  Records are immutable after construction —
the same object is handed to every sink, so no sink may mutate it — and
slotted, so a run that records millions of events stays cheap.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .schema import EventKind

__all__ = ["EventRecord"]

#: Bypass for the immutability guard below — one record is built per
#: subscribed emission, so the three stores in ``__init__`` are hot.
_set = object.__setattr__


class EventRecord:
    """One immutable event: ``(time, kind, values)``.

    ``values`` is a tuple aligned with ``kind.fields``.  Use :attr:`data`
    for a field-name → value mapping, or :meth:`get` for one field.
    """

    __slots__ = ("time", "kind", "values")

    def __init__(self, time: float, kind: EventKind, values: Tuple):
        _set(self, "time", time)
        _set(self, "kind", kind)
        _set(self, "values", values)

    def __setattr__(self, name, value):
        raise AttributeError(
            f"EventRecord is immutable; cannot set {name!r}")

    def __delattr__(self, name):
        raise AttributeError(
            f"EventRecord is immutable; cannot delete {name!r}")

    def __repr__(self) -> str:
        pairs = ", ".join(f"{f}={v!r}"
                          for f, v in zip(self.kind.fields, self.values))
        return f"<{self.kind.name} t={self.time:g} {pairs}>"

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return (self.time == other.time and self.kind is other.kind
                and self.values == other.values)

    def __hash__(self) -> int:
        return hash((self.time, self.kind.id, self.values))

    @property
    def data(self) -> Dict[str, Any]:
        """Field-name → value mapping for every declared field."""
        return dict(zip(self.kind.fields, self.values))

    def get(self, field: str, default: Any = None) -> Any:
        """The value of one named field (``default`` if not declared)."""
        try:
            return self.values[self.kind.fields.index(field)]
        except ValueError:
            return default

    def wire(self) -> Dict[str, Any]:
        """Exportable payload: declared fields minus internal ones."""
        return dict(zip(self.kind.wire_fields,
                        self.kind.wire_values(self.values)))
