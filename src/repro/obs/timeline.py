"""Streaming construction of :class:`PartitionTimeline` objects.

The :class:`TimelineBuilder` sink replaces the runner's post-hoc list
surgery: it consumes the ``bench.*`` phase markers plus ``part.pready``
and ``part.arrived``, and finalizes one
:class:`~repro.metrics.timeline.PartitionTimeline` per iteration the
moment its closing ``bench.recv_complete`` arrives.

Clock convention (matching the paper's Figure 3 side-by-side timelines):
``pready``/``arrival`` times are relative to the partitioned phase's
``bench.part_begin`` anchor; ``join_time`` is relative to
``bench.single_begin``; ``pt2pt_time`` is ``bench.recv_complete`` minus
``bench.send_begin``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..metrics.timeline import PartitionTimeline
from .record import EventRecord
from .sinks import Sink

__all__ = ["TimelineBuilder"]


class _Draft:
    """Mutable per-iteration state while the stream is mid-iteration."""

    __slots__ = ("iteration", "message_bytes", "partitions", "anchor",
                 "pready", "arrival", "single_anchor", "join_abs",
                 "send_start")

    def __init__(self, iteration: int, message_bytes: int,
                 partitions: int, anchor: float):
        self.iteration = iteration
        self.message_bytes = message_bytes
        self.partitions = partitions
        self.anchor = anchor
        self.pready: List[Optional[float]] = [None] * partitions
        self.arrival: List[Optional[float]] = [None] * partitions
        self.single_anchor: Optional[float] = None
        self.join_abs: Optional[float] = None
        self.send_start: Optional[float] = None


class TimelineBuilder(Sink):
    """Builds one :class:`PartitionTimeline` per benchmark iteration.

    Attach with :attr:`PATTERNS`; completed ``(iteration, timeline)``
    pairs accumulate in :attr:`timelines` in iteration order.  A stream
    that violates the benchmark's phase structure (missing markers,
    double timestamps) raises :class:`~repro.errors.SimulationError` —
    a malformed stream must never silently produce a metric.
    """

    #: The subscription this sink needs.
    PATTERNS = ("bench.*", "part.pready", "part.arrived")

    def __init__(self, allow_partial: bool = False) -> None:
        self.timelines: List[Tuple[int, PartitionTimeline]] = []
        self._draft: Optional[_Draft] = None
        #: Fault-tolerant mode (``repro.faults``): an abandoned trial
        #: legitimately ends mid-iteration, so finalize() discards the
        #: open draft instead of raising.  Completed iterations are
        #: still validated strictly.
        self.allow_partial = allow_partial
        #: Iterations discarded by a partial finalize (for reporting).
        self.discarded = 0

    def accept(self, record: EventRecord) -> None:
        """Fold one event into the current iteration's draft."""
        name = record.kind.name
        if name == "part.pready":
            self._stamp(record, "pready")
        elif name == "part.arrived":
            self._stamp(record, "arrival")
        elif name == "bench.part_begin":
            if self._draft is not None:
                raise SimulationError(
                    f"bench.part_begin for iteration "
                    f"{record.get('iteration')} while iteration "
                    f"{self._draft.iteration} is still open")
            self._draft = _Draft(record.get("iteration"),
                                 record.get("message_bytes"),
                                 record.get("partitions"), record.time)
        elif name == "bench.single_begin":
            self._require(record).single_anchor = record.time
        elif name == "bench.join":
            self._require(record).join_abs = record.time
        elif name == "bench.send_begin":
            self._require(record).send_start = record.time
        elif name == "bench.recv_complete":
            self._finish(record)

    def finalize(self) -> None:
        """Verify the stream closed its last iteration."""
        if self._draft is not None:
            if self.allow_partial:
                self.discarded += 1
                self._draft = None
                return
            raise SimulationError(
                f"event stream ended with iteration "
                f"{self._draft.iteration} still open (no "
                f"bench.recv_complete)")

    def _require(self, record: EventRecord) -> _Draft:
        if self._draft is None:
            raise SimulationError(
                f"{record.kind.name} outside a benchmark iteration "
                f"(no bench.part_begin seen)")
        return self._draft

    def _stamp(self, record: EventRecord, which: str) -> None:
        draft = self._require(record)
        partition = record.get("partition")
        slots = getattr(draft, which)
        if not (0 <= partition < draft.partitions):
            raise SimulationError(
                f"{record.kind.name} names partition {partition} outside "
                f"[0, {draft.partitions})")
        if slots[partition] is not None:
            raise SimulationError(
                f"duplicate {record.kind.name} for partition {partition} "
                f"in iteration {draft.iteration}")
        slots[partition] = record.time

    def _finish(self, record: EventRecord) -> None:
        draft = self._require(record)
        missing = [
            label for label, value in (
                ("single_anchor", draft.single_anchor),
                ("join", draft.join_abs),
                ("send_begin", draft.send_start),
            ) if value is None
        ]
        for which in ("pready", "arrival"):
            if any(t is None for t in getattr(draft, which)):
                missing.append(which)
        if missing:
            raise SimulationError(
                f"iteration {draft.iteration} closed with incomplete "
                f"timeline data: missing {', '.join(missing)}")
        timeline = PartitionTimeline(
            message_bytes=draft.message_bytes,
            pready_times=[t - draft.anchor for t in draft.pready],
            arrival_times=[t - draft.anchor for t in draft.arrival],
            join_time=draft.join_abs - draft.single_anchor,
            pt2pt_time=record.time - draft.send_start,
        )
        self.timelines.append((draft.iteration, timeline))
        self._draft = None
