"""Event-stream exporters: JSONL and Chrome ``about://tracing``.

Both exporters see only *wire* fields (internal fields such as live
request objects never leave the process) and preserve emission order.
The Chrome format follows the Trace Event Format's JSON-object flavour:
a top-level ``traceEvents`` list of instant events, timestamps in
microseconds, one ``tid`` lane per rank — load the file at
``about://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO

from .record import EventRecord

__all__ = ["event_to_dict", "write_jsonl", "to_chrome_trace",
           "write_chrome_trace"]


def event_to_dict(record: EventRecord) -> Dict[str, Any]:
    """One record as a flat JSON-able dict (wire fields only)."""
    out: Dict[str, Any] = {"t": record.time, "kind": record.kind.name}
    out.update(record.wire())
    return out


def write_jsonl(records: Iterable[EventRecord], stream: TextIO) -> int:
    """Write one JSON object per line; returns the number of lines."""
    count = 0
    for record in records:
        stream.write(json.dumps(event_to_dict(record), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def to_chrome_trace(records: Iterable[EventRecord]) -> Dict[str, Any]:
    """The Chrome trace-viewer JSON object for an event stream.

    Every record becomes an instant event (``ph: "i"``, thread scope)
    with ``ts`` in microseconds, ``pid`` 0 (one simulated job) and
    ``tid`` set to the record's rank, so the viewer lays ranks out as
    separate lanes.
    """
    events: List[Dict[str, Any]] = []
    ranks = set()
    for record in records:
        wire = record.wire()
        rank = wire.get("rank", 0)
        if not isinstance(rank, int):
            rank = 0
        ranks.add(rank)
        name = record.kind.name
        events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": record.time * 1e6,
            "pid": 0,
            "tid": rank,
            "args": wire,
        })
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": "repro simulation"}},
    ]
    metadata.extend(
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
         "args": {"name": f"rank {rank}"}}
        for rank in sorted(ranks)
    )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def write_chrome_trace(records: Iterable[EventRecord],
                       stream: TextIO) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    trace = to_chrome_trace(records)
    json.dump(trace, stream, indent=1)
    stream.write("\n")
    return len(trace["traceEvents"])
