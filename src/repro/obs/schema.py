"""Typed event schema: registered kinds with declared fields.

Every event flowing through :mod:`repro.obs` belongs to a *kind* that was
registered up front with the fields its payload carries.  Registration
interns the kind: emitters hold the returned :class:`EventKind` object and
the bus dispatches on its small integer :attr:`~EventKind.id`, so the
disabled-emission fast path is an index into a list, not a dict lookup on
a string.

Fields may be declared *internal* (e.g. the live request object handed to
the dynamic checker); internal fields never leave the process — exporters
and digests see only the *wire* fields, which are required to be
JSON-primitive values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["EventKind", "EventSchema", "SCHEMA"]


class EventKind:
    """One registered, interned event kind.

    Attributes
    ----------
    id:
        Dense integer id within the owning schema (the bus dispatch key).
    name:
        Dotted category string, e.g. ``"part.pready"``.
    fields:
        Declared payload field names, in emission order.
    internal:
        Subset of ``fields`` that never leaves the process (live objects
        for in-process sinks such as the dynamic checker).
    doc:
        One-line description for the kinds reference table.
    """

    __slots__ = ("id", "name", "fields", "internal", "doc", "wire_fields",
                 "_canon_name", "_canon_prefixes", "_wire_index")

    def __init__(self, kind_id: int, name: str, fields: Sequence[str],
                 internal: Sequence[str], doc: str):
        object.__setattr__(self, "id", kind_id)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", tuple(fields))
        object.__setattr__(self, "internal", frozenset(internal))
        object.__setattr__(self, "doc", doc)
        object.__setattr__(self, "wire_fields", tuple(
            f for f in fields if f not in self.internal))
        # Precomputed separator-carrying fragments of the canonical wire
        # format ("|<name>", "|<field>="), so serialization concatenates
        # instead of re-formatting per record.
        object.__setattr__(self, "_canon_name", "|" + name)
        object.__setattr__(self, "_canon_prefixes", tuple(
            "|" + f + "=" for f in self.wire_fields))
        object.__setattr__(self, "_wire_index", tuple(
            i for i, f in enumerate(fields) if f not in self.internal))

    def __setattr__(self, name, value):  # pragma: no cover - guard only
        raise AttributeError(f"EventKind is immutable; cannot set {name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventKind {self.name} #{self.id} {self.fields}>"

    def wire_values(self, values: Tuple) -> Tuple:
        """The exportable subset of one record's values, in field order."""
        idx = self._wire_index
        if len(idx) == len(values):
            return values
        return tuple(values[i] for i in idx)


class EventSchema:
    """A registry of :class:`EventKind` objects with dense integer ids.

    One process-wide instance (:data:`SCHEMA`) carries every built-in kind
    (see :mod:`repro.obs.kinds`); tests may build private schemas.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, EventKind] = {}
        self._kinds: List[EventKind] = []

    def register(self, name: str, fields: Sequence[str] = (),
                 internal: Sequence[str] = (), doc: str = "") -> EventKind:
        """Register a new kind; returns the interned :class:`EventKind`.

        Re-registering a name is an error — kind ids must stay stable for
        the lifetime of the schema.
        """
        if name in self._by_name:
            raise ConfigurationError(f"event kind {name!r} already "
                                     f"registered")
        unknown = set(internal) - set(fields)
        if unknown:
            raise ConfigurationError(
                f"event kind {name!r}: internal fields {sorted(unknown)} "
                f"not in declared fields {tuple(fields)}")
        kind = EventKind(len(self._kinds), name, fields, internal, doc)
        self._by_name[name] = kind
        self._kinds.append(kind)
        return kind

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._kinds)

    def kind(self, name: str) -> EventKind:
        """The kind registered under ``name`` (raises on unknown names)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown event kind {name!r}")

    def kinds(self) -> List[EventKind]:
        """Every registered kind, in id order."""
        return list(self._kinds)

    def resolve(self, patterns: Iterable[str]) -> List[EventKind]:
        """Expand kind patterns into registered kinds, in id order.

        A pattern is an exact kind name (``part.pready``), a category
        wildcard (``part.*``), or ``*`` for everything.  A pattern that
        matches nothing raises :class:`~repro.errors.ConfigurationError` —
        a typo'd filter silently exporting nothing would defeat the tool.
        """
        selected: Dict[int, EventKind] = {}
        for pattern in patterns:
            pattern = pattern.strip()
            if not pattern:
                continue
            if pattern == "*":
                matches = self._kinds
            elif pattern.endswith(".*"):
                prefix = pattern[:-1]  # keep the dot
                matches = [k for k in self._kinds
                           if k.name.startswith(prefix)]
            else:
                matches = ([self._by_name[pattern]]
                           if pattern in self._by_name else [])
            if not matches:
                known = ", ".join(sorted(self._by_name))
                raise ConfigurationError(
                    f"unknown event kind or pattern {pattern!r} "
                    f"(known kinds: {known})")
            for kind in matches:
                selected[kind.id] = kind
        return [selected[i] for i in sorted(selected)]


#: The process-wide schema holding every built-in kind.
SCHEMA = EventSchema()
