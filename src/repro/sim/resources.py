"""Shared-resource primitives for the simulation kernel.

These model contended hardware and software objects:

* :class:`Resource` — a counted resource with a FIFO wait queue (e.g. a NIC
  DMA engine, a CPU core slot).
* :class:`Mutex` — a single-holder lock that records contention statistics;
  used to model the MPI library's global lock under ``MPI_THREAD_MULTIPLE``.
* :class:`Store` — an unbounded FIFO message store (producer/consumer
  channel), used for progress-engine work queues.

All wait queues are strictly FIFO, so simulations remain deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, List, Optional

from ..errors import SimulationError
from .core import Event, Simulator

__all__ = ["Resource", "Mutex", "Store", "MutexStats"]


class Resource:
    """A counted, FIFO-queued resource.

    ``request()`` returns an :class:`~repro.sim.core.Event` that triggers when
    a unit becomes available; the caller must later call ``release()``.

    Example
    -------
    >>> sim = Simulator()
    >>> nic = Resource(sim, capacity=1)
    >>> def user(sim, nic, hold):
    ...     req = nic.request()
    ...     yield req
    ...     yield sim.sleep(hold)
    ...     nic.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one unit; the returned event triggers on acquisition."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
            granted = True
        else:
            self._waiters.append(ev)
            granted = False
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.on_resource_request(self, ev, granted)
        return ev

    def release(self) -> None:
        """Return one unit, waking the longest-waiting requester if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        handed: Optional[Event] = None
        if self._waiters:
            # Hand the unit directly to the next waiter (count unchanged).
            handed = self._waiters.popleft()
            handed.succeed(self)
        else:
            self._in_use -= 1
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.on_resource_release(self, handed)

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending request; returns False if already granted."""
        try:
            self._waiters.remove(event)
        except ValueError:
            return False
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.on_resource_cancel(self, event)
        return True


@dataclass
class MutexStats:
    """Aggregate contention statistics for a :class:`Mutex`.

    Attributes
    ----------
    acquisitions:
        Number of successful lock acquisitions.
    contended_acquisitions:
        Acquisitions that had to wait because the lock was held.
    total_wait_time:
        Summed simulated time spent waiting for the lock.
    total_hold_time:
        Summed simulated time the lock was held.
    max_queue_length:
        Longest observed wait queue.
    """

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_time: float = 0.0
    total_hold_time: float = 0.0
    max_queue_length: int = 0
    _acquire_times: List[float] = field(default_factory=list, repr=False)

    @property
    def mean_wait_time(self) -> float:
        """Average waiting time per acquisition (0 when never acquired)."""
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.acquisitions

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that found the lock held."""
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions


class Mutex:
    """A single-holder lock with contention accounting.

    Models the coarse-grained lock most MPI implementations take around
    critical sections under ``MPI_THREAD_MULTIPLE``.  Use as::

        yield from mutex.acquire()
        yield sim.sleep(critical_section_cost)
        mutex.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self.stats = MutexStats()
        self._held_since: Optional[float] = None

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._resource.in_use > 0

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator-style acquisition (``yield from mutex.acquire()``)."""
        start = self.sim.now
        contended = self.locked
        queue_len = self._resource.queue_length + (1 if contended else 0)
        if queue_len > self.stats.max_queue_length:
            self.stats.max_queue_length = queue_len
        yield self._resource.request()
        self.stats.acquisitions += 1
        if contended:
            self.stats.contended_acquisitions += 1
        self.stats.total_wait_time += self.sim.now - start
        self._held_since = self.sim.now

    def release(self) -> None:
        """Release the lock, crediting hold time to the statistics."""
        if self._held_since is not None:
            self.stats.total_hold_time += self.sim.now - self._held_since
        self._held_since = None
        self._resource.release()


class Store:
    """An unbounded FIFO channel between producer and consumer processes.

    ``put()`` never blocks; ``get()`` returns an event that triggers when an
    item is available (immediately if the store is non-empty).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
