"""Deterministic discrete-event simulation kernel.

The kernel provides:

* :class:`Simulator` — the virtual-time event loop.
* :class:`Process` / :class:`Event` / :class:`Timeout` — coroutine plumbing.
* :class:`Resource` / :class:`Mutex` / :class:`Store` — contended objects.
* :class:`RandomStreams` — named, reproducible RNG streams.

Everything above the kernel (machine, network, MPI runtime) is expressed in
terms of these primitives, so the entire benchmark suite is deterministic
given a master seed.  Instrumentation lives one layer up, in
:mod:`repro.obs`.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from .resources import Mutex, MutexStats, Resource, Store
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "Mutex",
    "MutexStats",
    "Resource",
    "Store",
    "RandomStreams",
]
