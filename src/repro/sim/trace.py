"""Event tracing for simulations.

A :class:`TraceRecorder` collects timestamped, typed records emitted by
instrumented components (MPI runtime, NIC, threads).  The metric
definitions in :mod:`repro.metrics` are computed from these traces, exactly
as the paper computes its metrics from timestamps taken around
``MPI_Pready`` / ``MPI_Parrived`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped event.

    Attributes
    ----------
    time:
        Simulation time of the record, in seconds.
    kind:
        Dotted category string, e.g. ``"part.pready"`` or ``"nic.tx_done"``.
    data:
        Free-form payload (partition index, message size, rank, ...).
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """An append-only log of :class:`TraceRecord` entries.

    Components call :meth:`emit`; analyses use :meth:`filter`,
    :meth:`first` and :meth:`last` to pull out the timestamps they need.
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._enabled = True

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def enabled(self) -> bool:
        """Whether :meth:`emit` currently records anything."""
        return self._enabled

    def disable(self) -> None:
        """Stop recording (emit becomes a no-op)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume recording."""
        self._enabled = True

    def clear(self) -> None:
        """Drop all records (e.g. between warm-up and measured iterations)."""
        self.records.clear()

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Append one record if tracing is enabled."""
        if self._enabled:
            self.records.append(TraceRecord(time, kind, data))

    def filter(self, kind: str, **match: Any) -> List[TraceRecord]:
        """All records of ``kind`` whose data contains every ``match`` item."""
        out = []
        for rec in self.records:
            if rec.kind != kind:
                continue
            if all(rec.data.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def times(self, kind: str, **match: Any) -> List[float]:
        """Timestamps of all matching records, in emission order."""
        return [rec.time for rec in self.filter(kind, **match)]

    def first(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        """Earliest matching record, or None."""
        recs = self.filter(kind, **match)
        return min(recs, key=lambda r: r.time) if recs else None

    def last(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        """Latest matching record, or None."""
        recs = self.filter(kind, **match)
        return max(recs, key=lambda r: r.time) if recs else None

    def span(self, kind_a: str, kind_b: str) -> Optional[Tuple[float, float]]:
        """(first time of ``kind_a``, last time of ``kind_b``) or None."""
        a = self.first(kind_a)
        b = self.last(kind_b)
        if a is None or b is None:
            return None
        return (a.time, b.time)
