"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event loop in the style of SimPy,
purpose-built for simulating multi-threaded MPI programs in *virtual time*.
Simulated entities (threads, NICs, progress engines) are :class:`Process`
objects wrapping Python generators.  A process advances by ``yield``-ing
:class:`Event` objects; the kernel resumes it when the event triggers.

Determinism
-----------
Two runs with the same seeds produce bit-identical schedules.  The event
queue breaks time ties with a monotonically increasing sequence number, so
insertion order is the tie-break and no ordering ever depends on hash
randomization or object identity.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc(sim, "b", 2.0))
>>> _ = sim.process(proc(sim, "a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ConfigurationError, DeadlockError, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
]

#: Sentinel marking an event whose value has not been set yet.
_PENDING = object()

#: Sentinel for an event nothing has waited on yet.  Most :class:`Timeout`
#: events (compute delays, NIC gaps) trigger and get processed without ever
#: acquiring a waiter besides the process that created them — keeping this
#: sentinel instead of an empty list avoids one list allocation per event
#: on the kernel's hottest path.
_NO_WAITERS = object()


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening in simulated time that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it: the kernel schedules it at the current simulation time and,
    when it is popped from the queue, runs the registered callbacks (which is
    how waiting processes get resumed).

    Events are single-shot: triggering twice raises :class:`SimulationError`.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_scheduled",
                 "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Waiter list states: :data:`_NO_WAITERS` (nothing registered yet),
        #: a list (registered callbacks), or ``None`` (processed).
        self._callbacks: Any = _NO_WAITERS
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    @property
    def callbacks(self) -> Optional[list]:
        """Callables ``cb(event)`` invoked when the event is processed.

        ``None`` once the event has been processed.  The list is
        materialized lazily on first access so events nothing ever waits on
        (the common fate of a :class:`Timeout`) never allocate one.
        """
        cbs = self._callbacks
        if cbs is _NO_WAITERS:
            cbs = self._callbacks = []
        return cbs

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for a failed event)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown at their ``yield``
        statement.  If nothing waits on a failed event, the simulator raises
        the exception at the end of the step (mirroring SimPy's "unhandled
        failure" behaviour) unless :meth:`defused` is set.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, delay=self.delay)


class _Initialize(Event):
    """Internal event used to kick a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        sim._schedule(self, priority=-1)


class Process(Event):
    """A simulated activity wrapping a generator.

    The process is itself an :class:`Event` that triggers when the generator
    returns (successfully, with the ``return`` value as payload) or raises
    (a failure, with the exception as payload).
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "throw"):
            raise TypeError(f"process target must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        init = _Initialize(sim)
        init._callbacks = [self._resume]

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is None:
            raise SimulationError(
                f"cannot interrupt process {self.name} from within itself")
        # Detach from the event we were waiting on, then resume immediately
        # with the interrupt.
        cbs = self._target._callbacks
        if isinstance(cbs, list) and self._resume in cbs:
            cbs.remove(self._resume)
        hit = Event(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        hit._callbacks = [self._resume]
        self.sim._schedule(hit)

    # -- kernel plumbing --------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active_proc = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_ev = self.gen.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_ev = self.gen.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.sim._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.sim._schedule(self)
                break

            if not isinstance(next_ev, Event):
                exc2 = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}")
                try:
                    self.gen.throw(exc2)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self.sim._schedule(self)
                    break
                except BaseException as raised:
                    self._ok = False
                    self._value = raised
                    self.sim._schedule(self)
                    break
                continue

            cbs = next_ev._callbacks
            if cbs is None:
                # Already processed: loop synchronously with its value.
                event = next_ev
                continue

            if cbs is _NO_WAITERS:
                next_ev._callbacks = [self._resume]
            else:
                cbs.append(self._resume)
            self._target = next_ev
            break
        self.sim._active_proc = None


class Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            cbs = ev._callbacks
            if cbs is None:
                self._check(ev)
            elif cbs is _NO_WAITERS:
                ev._callbacks = [self._check]
            else:
                cbs.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._value is not _PENDING and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _finish(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when *all* sub-events have triggered (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._finish(event)
            return
        self._count += 1
        if self._count == len(self.events):
            self._finish(event)


class AnyOf(Condition):
    """Triggers when *any* sub-event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._finish(event)


class Simulator:
    """The event loop: a priority queue of events in virtual time.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, event)`` invoked for every processed
        event; a kernel-level debugging hook for recording raw schedules.
    """

    def __init__(self, trace: Optional[Callable[[float, Event], None]] = None):
        self._now = 0.0
        self._queue: list = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        self._trace = trace
        #: Number of events processed so far (monotone counter, useful in tests).
        self.events_processed = 0
        #: Optional resource observer (see :mod:`repro.analysis.deadlock`).
        #: When set, :class:`~repro.sim.resources.Resource` notifies it of
        #: every request/grant/release so wait-for graphs can be built.
        #: ``None`` (the default) keeps the hot path free of any overhead.
        self.monitor: Optional[Any] = None

    # -- public API -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first of ``events`` to trigger."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events`` triggered."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> None:
        """Run until the queue drains or simulated time passes ``until``.

        With ``detect_deadlock=True`` a drained queue before ``until`` raises
        :class:`~repro.errors.DeadlockError` — useful when simulating MPI
        programs that must terminate on their own.  Deadlock detection is
        defined *relative to the horizon*: it needs an explicit ``until``,
        so passing ``detect_deadlock=True`` without one raises
        :class:`~repro.errors.ConfigurationError` (it used to be silently
        ignored).  To watch for stuck processes without a time horizon, use
        :meth:`run_until_complete` on the process of interest instead.
        """
        if detect_deadlock and until is None:
            raise ConfigurationError(
                "detect_deadlock=True needs an explicit until= horizon: a "
                "drained queue is only a deadlock if it happens before a "
                "time the simulation was expected to reach")
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until} is in the past (now={self._now})")
        queue = self._queue
        step = self._step
        if until is None:
            while queue:
                step()
            return
        while queue:
            if queue[0][0] > until:
                self._now = until
                return
            step()
        if detect_deadlock and self._now < until:
            raise DeadlockError(
                f"event queue drained at t={self._now} before until={until}")

    def run_until_complete(self, proc: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes and return its value (re-raising failures)."""
        while not proc.triggered:
            if not self._queue:
                raise DeadlockError(
                    f"process {proc.name!r} cannot complete: queue drained "
                    f"at t={self._now}")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"process {proc.name!r} did not finish by t={limit}")
            self._step()
        # Drain same-time stragglers of the completing event itself.
        if not proc.processed:
            self._step_until_processed(proc)
        if proc._ok:
            return proc._value
        raise proc._value

    # -- internals ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        seq = self._seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def _step(self) -> None:
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("time ran backwards")
        self._now = when
        self.events_processed += 1
        if self._trace is not None:
            self._trace(when, event)
        callbacks = event._callbacks
        event._callbacks = None
        if callbacks is not _NO_WAITERS and callbacks:
            for cb in callbacks:
                cb(event)
        elif not event._ok and not event._defused:
            raise event._value

    def _step_until_processed(self, event: Event) -> None:
        while not event.processed and self._queue:
            self._step()
