"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event loop in the style of SimPy,
purpose-built for simulating multi-threaded MPI programs in *virtual time*.
Simulated entities (threads, NICs, progress engines) are :class:`Process`
objects wrapping Python generators.  A process advances by ``yield``-ing
:class:`Event` objects; the kernel resumes it when the event triggers.

Determinism
-----------
Two runs with the same seeds produce bit-identical schedules.  The event
queue breaks time ties with a monotonically increasing sequence number, so
insertion order is the tie-break and no ordering ever depends on hash
randomization or object identity.

Hot-path anatomy
----------------
Three coordinated fast paths keep per-event cost low without changing any
observable ordering (the instrumentation digests of
:mod:`repro.obs` are bit-identical with and without them):

* **Immediate-event ring** — events scheduled at the current time (every
  :meth:`Event.succeed` hand-off, process kick-offs, interrupts, store
  wake-ups) go to FIFO deques drained ahead of the heap, skipping the
  ``heappush``/``heappop`` pair while preserving the exact
  ``(time, priority, seq)`` tie-break order.  Future events are
  time-bucketed: the heap orders unique float timestamps and a deque per
  timestamp keeps same-time events in seq order for free.
* **Allocation-free sleeps** — :meth:`Simulator.sleep` recycles
  kernel-owned :class:`Timeout` objects through a free list, so the
  dominant fire-and-forget delays (compute time, NIC gaps) allocate
  nothing in steady state.
* **Single-waiter dispatch** — ``Event._callbacks`` holds a bare callable
  for the overwhelmingly common sole-waiter case and is only promoted to
  a list on the second subscriber, eliminating a list allocation plus an
  iteration per processed event.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc(sim, "b", 2.0))
>>> _ = sim.process(proc(sim, "a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ConfigurationError, DeadlockError, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
]

#: Sentinel marking an event whose value has not been set yet.
_PENDING = object()

#: Sentinel for an event nothing has waited on yet.  Most :class:`Timeout`
#: events (compute delays, NIC gaps) trigger and get processed without ever
#: acquiring a waiter besides the process that created them — keeping this
#: sentinel instead of an empty list avoids one list allocation per event
#: on the kernel's hottest path.
_NO_WAITERS = object()

_INF = float("inf")


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening in simulated time that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it: the kernel schedules it at the current simulation time and,
    when it is popped from the queue, runs the registered callbacks (which is
    how waiting processes get resumed).

    Events are single-shot: triggering twice raises :class:`SimulationError`.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_scheduled",
                 "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Waiter states: :data:`_NO_WAITERS` (nothing registered yet), a
        #: bare callable (exactly one waiter — the common case), a list
        #: (two or more waiters), or ``None`` (processed).
        self._callbacks: Any = _NO_WAITERS
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    @property
    def callbacks(self) -> Optional[list]:
        """Callables ``cb(event)`` invoked when the event is processed.

        ``None`` once the event has been processed.  The list is
        materialized lazily on first access — events nothing ever waits on
        (the common fate of a :class:`Timeout`) never allocate one, and a
        sole waiter is stored as a bare callable until a second subscriber
        forces promotion.
        """
        cbs = self._callbacks
        if cbs is _NO_WAITERS:
            cbs = self._callbacks = []
        elif cbs is not None and type(cbs) is not list:
            cbs = self._callbacks = [cbs]
        return cbs

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for a failed event)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined zero-delay _schedule: the already-triggered guard above
        # subsumes the double-schedule check, so a succeed() hand-off is a
        # seq bump plus one ring append.
        self._scheduled = True
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        sim._ring.append((seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown at their ``yield``
        statement.  If nothing waits on a failed event, the simulator raises
        the exception at the end of the step (mirroring SimPy's "unhandled
        failure" behaviour) unless :meth:`defused` is set.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if not (0.0 <= delay < _INF):
            # A NaN delay fails both comparisons; inf fails the second.
            # Either would silently corrupt the heap's total order.
            raise SimulationError(
                f"timeout delay must be finite and non-negative: {delay!r}")
        # Event.__init__ and _schedule inlined: a timeout is born triggered
        # and scheduled, so the construction path is pure attribute stores
        # plus one ring append / heap push.
        self.sim = sim
        self._callbacks = _NO_WAITERS
        self._ok = True
        self._scheduled = True
        self._defused = False
        if delay.__class__ is not float:
            delay = float(delay)
        self.delay = delay
        self._value = value
        seq = sim._seq = sim._seq + 1
        if delay == 0.0:
            sim._ring.append((seq, self))
        else:
            when = sim._now + delay
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = (seq, self)
                heappush(sim._queue, when)
            elif bucket.__class__ is tuple:
                buckets[when] = deque((bucket, (seq, self)))
            else:
                bucket.append((seq, self))


class _Sleep(Timeout):
    """A kernel-owned, recycled timeout (see :meth:`Simulator.sleep`).

    Instances live on the simulator's free list between uses, so the
    contract is strict: a sleep event must be yielded immediately by the
    process that created it and never stored, composed into a condition,
    or inspected after it fires — the kernel resets its state the moment
    its callbacks have run.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        Event.__init__(self, sim)
        self.delay = 0.0
        self._ok = True
        self._scheduled = True


class _Initialize(Event):
    """Internal event used to kick a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        # Inlined Event.__init__ plus a direct init-ring append.  The init
        # ring carries no sequence numbers (priority -1 outranks every
        # same-time priority-0 event regardless of age), so the kernel-wide
        # counter is not bumped here; relative order among ring and heap
        # entries — the only places seqs are compared — is unaffected.
        self.sim = sim
        self._callbacks = _NO_WAITERS
        self._value = None
        self._ok = True
        self._scheduled = True
        self._defused = False
        sim._init_ring.append(self)


class Process(Event):
    """A simulated activity wrapping a generator.

    The process is itself an :class:`Event` that triggers when the generator
    returns (successfully, with the ``return`` value as payload) or raises
    (a failure, with the exception as payload).
    """

    __slots__ = ("gen", "name", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "throw"):
            raise TypeError(f"process target must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        #: The bound resume method, created once: registering a waiter is
        #: then a pointer store instead of a bound-method allocation, and
        #: detaching can compare by identity.
        self._resume_cb = self._resume
        init = _Initialize(sim)
        init._callbacks = self._resume_cb

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        target = self._target
        if target is None:
            raise SimulationError(
                f"cannot interrupt process {self.name} from within itself")
        # O(1) detach from the event we were waiting on: a sole waiter is
        # cleared outright; on a multi-waiter list our entry is left in
        # place and neutralized by the ``_target`` guard in ``_resume``
        # when the event eventually fires (no O(n) ``list.remove``).
        resume = self._resume_cb
        if target._callbacks is resume:
            target._callbacks = _NO_WAITERS
        hit = Event(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        hit._callbacks = resume
        self._target = hit
        self.sim._schedule(hit)

    # -- kernel plumbing --------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._target is not event and type(event) is not _Initialize:
            # Stale wake-up: an interrupt moved us off this event while it
            # still held our callback (see interrupt()).
            return
        self.sim._active_proc = self
        self._target = None
        gen = self.gen
        while True:
            try:
                if event._ok:
                    next_ev = gen.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_ev = gen.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.sim._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.sim._schedule(self)
                break

            if not isinstance(next_ev, Event):
                exc2 = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}")
                try:
                    gen.throw(exc2)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self.sim._schedule(self)
                    break
                except BaseException as raised:
                    self._ok = False
                    self._value = raised
                    self.sim._schedule(self)
                    break
                continue

            cbs = next_ev._callbacks
            if cbs is None:
                # Already processed: loop synchronously with its value.
                event = next_ev
                continue

            resume = self._resume_cb
            if cbs is _NO_WAITERS:
                next_ev._callbacks = resume
            elif type(cbs) is list:
                cbs.append(resume)
            else:
                next_ev._callbacks = [cbs, resume]
            self._target = next_ev
            break
        self.sim._active_proc = None


class Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        check = self._check
        for ev in self.events:
            cbs = ev._callbacks
            if cbs is None:
                check(ev)
            elif cbs is _NO_WAITERS:
                ev._callbacks = check
            elif type(cbs) is list:
                cbs.append(check)
            else:
                ev._callbacks = [cbs, check]

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._value is not _PENDING and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _finish(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when *all* sub-events have triggered (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._finish(event)
            return
        self._count += 1
        if self._count == len(self.events):
            self._finish(event)


class AnyOf(Condition):
    """Triggers when *any* sub-event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._finish(event)


class Simulator:
    """The event loop: a priority queue of events in virtual time.

    Events scheduled at the *current* time bypass the heap entirely: they
    land on FIFO rings (one for ordinary events, one for the higher-priority
    process kick-offs) that :meth:`_step` drains with the exact ordering the
    heap would have produced — each ring entry carries its sequence number,
    so an event already sitting in the heap for this same instant still wins
    the tie when its sequence number is older.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, event)`` invoked for every processed
        event; a kernel-level debugging hook for recording raw schedules.
        Note that trace hooks must not retain :meth:`sleep` events — those
        are recycled the moment they are processed.
    """

    def __init__(self, trace: Optional[Callable[[float, Event], None]] = None):
        self._now = 0.0
        #: Future events, time-bucketed: ``_queue`` is a heap of *unique*
        #: float timestamps and ``_buckets`` maps each of them to either
        #: a bare ``(seq, event)`` pair (one event at that time — the
        #: common case) or a FIFO deque of such pairs.  Only events with
        #: a strictly positive delay land here; the rings below hold
        #: everything scheduled for the current instant.  Buckets are in
        #: ascending seq order by construction (the seq counter is
        #: monotonic), so draining a bucket front-to-back reproduces
        #: exactly the ``(time, seq)`` order a flat heap would give —
        #: but events sharing a timestamp cost O(1) instead of a log-n
        #: sift, and the heap itself compares bare floats instead of
        #: tuples.
        self._queue: list = []
        self._buckets: dict = {}
        #: Immediate events (``delay == 0``, priority 0) as ``(seq, event)``.
        self._ring: deque = deque()
        #: Immediate process kick-offs (priority -1): always processed
        #: before any same-time priority-0 event, so no seq is needed.
        self._init_ring: deque = deque()
        #: Recycled :class:`_Sleep` events (see :meth:`sleep`).
        self._sleep_pool: list = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        self._trace = trace
        #: Number of events processed so far (monotone counter, useful in tests).
        self.events_processed = 0
        #: Optional resource observer (see :mod:`repro.analysis.deadlock`).
        #: When set, :class:`~repro.sim.resources.Resource` notifies it of
        #: every request/grant/release so wait-for graphs can be built.
        #: ``None`` (the default) keeps the hot path free of any overhead.
        self.monitor: Optional[Any] = None

    # -- public API -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A recycled timeout for the fire-and-forget ``yield`` idiom.

        Semantically identical to :meth:`timeout`, but the returned event
        comes from a per-simulator free list and goes back on it as soon as
        it has been processed, so steady-state compute delays and NIC gaps
        allocate nothing.  The contract: ``yield sim.sleep(d)`` immediately
        and let go — never store the event, pass it to :class:`AnyOf` /
        :class:`AllOf`, or read it after it fires.  Use :meth:`timeout`
        for anything fancier.
        """
        if not (0.0 <= delay < _INF):
            raise SimulationError(
                f"sleep delay must be finite and non-negative: {delay!r}")
        pool = self._sleep_pool
        if pool:
            ev = pool.pop()
            ev._callbacks = _NO_WAITERS
            ev._defused = False
        else:
            ev = _Sleep(self)
        ev.delay = delay
        ev._value = value
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            self._ring.append((seq, ev))
        else:
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = (seq, ev)
                heappush(self._queue, when)
            elif bucket.__class__ is tuple:
                buckets[when] = deque((bucket, (seq, ev)))
            else:
                bucket.append((seq, ev))
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first of ``events`` to trigger."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events`` triggered."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> None:
        """Run until the queue drains or simulated time passes ``until``.

        With ``detect_deadlock=True`` a drained queue before ``until`` raises
        :class:`~repro.errors.DeadlockError` — useful when simulating MPI
        programs that must terminate on their own.  Deadlock detection is
        defined *relative to the horizon*: it needs an explicit ``until``,
        so passing ``detect_deadlock=True`` without one raises
        :class:`~repro.errors.ConfigurationError` (it used to be silently
        ignored).  To watch for stuck processes without a time horizon, use
        :meth:`run_until_complete` on the process of interest instead.
        """
        if detect_deadlock and until is None:
            raise ConfigurationError(
                "detect_deadlock=True needs an explicit until= horizon: a "
                "drained queue is only a deadlock if it happens before a "
                "time the simulation was expected to reach")
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until} is in the past (now={self._now})")
        # The drain loop below is _step() with the event selection and
        # dispatch inlined (keep the two in sync): at thousands of events
        # per trial the per-event method call and the repeated attribute
        # loads are measurable.  An ``until`` of None becomes an infinite
        # horizon — timeout delays are validated finite, so the horizon
        # check can never fire in that case.
        queue = self._queue
        buckets = self._buckets
        ring = self._ring
        init_ring = self._init_ring
        pool = self._sleep_pool
        trace = self._trace
        pop = heappop
        no_waiters = _NO_WAITERS
        sleep_cls = _Sleep
        list_cls = list
        horizon = _INF if until is None else until
        # ``events_processed`` accumulates in a local and is flushed in
        # the finally block (nothing observes the counter mid-run; tests
        # and benchmarks read it after run() returns).
        processed = 0
        try:
            while queue or ring or init_ring:
                if init_ring:
                    event = init_ring.popleft()
                elif ring:
                    # An event heaped earlier can land exactly at the
                    # current instant; its older seq must still win the
                    # tie.
                    if queue and queue[0] == self._now:
                        bucket = buckets[queue[0]]
                        singleton = bucket.__class__ is tuple
                        if (bucket[0] if singleton
                                else bucket[0][0]) < ring[0][0]:
                            if singleton:
                                event = bucket[1]
                                del buckets[pop(queue)]
                            else:
                                event = bucket.popleft()[1]
                                if not bucket:
                                    del buckets[pop(queue)]
                        else:
                            event = ring.popleft()[1]
                    else:
                        event = ring.popleft()[1]
                else:
                    when = queue[0]
                    if when > horizon:
                        self._now = until
                        return
                    bucket = buckets[when]
                    if bucket.__class__ is tuple:
                        event = bucket[1]
                        del buckets[pop(queue)]
                    else:
                        event = bucket.popleft()[1]
                        if not bucket:
                            del buckets[pop(queue)]
                    self._now = when
                processed += 1
                if trace is not None:
                    trace(self._now, event)
                callbacks = event._callbacks
                event._callbacks = None
                if type(callbacks) is list_cls:
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    elif not event._ok and not event._defused:
                        raise event._value
                elif callbacks is not no_waiters:
                    callbacks(event)
                elif not event._ok and not event._defused:
                    raise event._value
                if type(event) is sleep_cls:
                    pool.append(event)
        finally:
            self.events_processed += processed
        if detect_deadlock and self._now < until:
            raise DeadlockError(
                f"event queue drained at t={self._now} before until={until}")

    def run_until_complete(self, proc: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes and return its value (re-raising failures)."""
        while not proc.triggered:
            if not (self._queue or self._ring or self._init_ring):
                raise DeadlockError(
                    f"process {proc.name!r} cannot complete: queue drained "
                    f"at t={self._now}")
            if limit is not None:
                next_time = (self._now if self._ring or self._init_ring
                             else self._queue[0])
                if next_time > limit:
                    raise SimulationError(
                        f"process {proc.name!r} did not finish by t={limit}")
            self._step()
        # Drain same-time stragglers of the completing event itself.
        if not proc.processed:
            self._step_until_processed(proc)
        if proc._ok:
            return proc._value
        raise proc._value

    # -- internals ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 0) -> None:
        """Enqueue a triggered event.

        ``priority`` must be 0 (ordinary events) or -1 (process kick-offs,
        which always carry ``delay == 0`` and outrank every same-time
        priority-0 event).  Zero-delay events go to the rings; everything
        else is heaped.
        """
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        seq = self._seq = self._seq + 1
        if priority != 0:
            self._init_ring.append(event)
        elif delay == 0.0:
            self._ring.append((seq, event))
        else:
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = (seq, event)
                heappush(self._queue, when)
            elif bucket.__class__ is tuple:
                buckets[when] = deque((bucket, (seq, event)))
            else:
                bucket.append((seq, event))

    def _step(self) -> None:
        init_ring = self._init_ring
        if init_ring:
            # Priority -1 beats any same-time heap entry (the heap only
            # ever holds priority-0 events), and the heap head can never
            # be in the past.
            event = init_ring.popleft()
        else:
            ring = self._ring
            queue = self._queue
            buckets = self._buckets
            if ring:
                # An event heaped earlier can land exactly at the current
                # instant; its older seq must still win the tie, exactly
                # as it would have in a pure-heap kernel.
                event = None
                if queue and queue[0] == self._now:
                    bucket = buckets[queue[0]]
                    singleton = bucket.__class__ is tuple
                    if (bucket[0] if singleton
                            else bucket[0][0]) < ring[0][0]:
                        if singleton:
                            event = bucket[1]
                            del buckets[heappop(queue)]
                        else:
                            event = bucket.popleft()[1]
                            if not bucket:
                                del buckets[heappop(queue)]
                if event is None:
                    event = ring.popleft()[1]
            else:
                when = queue[0]
                if when < self._now:  # pragma: no cover - internal invariant
                    raise SimulationError("time ran backwards")
                bucket = buckets[when]
                if bucket.__class__ is tuple:
                    event = bucket[1]
                    del buckets[heappop(queue)]
                else:
                    event = bucket.popleft()[1]
                    if not bucket:
                        del buckets[heappop(queue)]
                self._now = when
        self.events_processed += 1
        if self._trace is not None:
            self._trace(self._now, event)
        callbacks = event._callbacks
        event._callbacks = None
        if type(callbacks) is list:
            if callbacks:
                for cb in callbacks:
                    cb(event)
            elif not event._ok and not event._defused:
                raise event._value
        elif callbacks is not _NO_WAITERS:
            # Bare callable: the single-waiter fast path.
            callbacks(event)
        elif not event._ok and not event._defused:
            raise event._value
        if type(event) is _Sleep:
            self._sleep_pool.append(event)

    def _step_until_processed(self, event: Event) -> None:
        while not event.processed and (self._queue or self._ring
                                       or self._init_ring):
            self._step()
