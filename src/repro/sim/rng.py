"""Deterministic, named random-number streams.

Every stochastic element of a simulation (each noise model, each thread's
compute jitter) draws from its own named stream derived from a single master
seed.  Streams are independent: adding a new consumer never perturbs the
draws seen by existing consumers, which keeps experiments comparable across
code revisions — the standard "common random numbers" variance-reduction
technique used in simulation studies.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Seed for the whole experiment.  Identical seeds yield identical
        simulations.

    Example
    -------
    >>> rs = RandomStreams(123)
    >>> a = rs.stream("noise/thread-0")
    >>> b = rs.stream("noise/thread-1")
    >>> a is rs.stream("noise/thread-0")
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        """Derive a stream seed by hashing (master_seed, name).

        Uses SHA-256 rather than Python's ``hash`` so the derivation is
        stable across interpreter runs (``PYTHONHASHSEED`` does not leak in).
        """
        digest = hashlib.sha256(
            f"{self.master_seed}\x1f{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose streams are disjoint from ours."""
        return RandomStreams(self._derive_seed(f"spawn/{name}"))

    def reset(self) -> None:
        """Drop all streams; the next ``stream()`` call re-creates them fresh."""
        self._streams.clear()
