"""The daemon's scheduler: admission, batching, and engine dispatch.

Requests arrive one at a time from many HTTP handler threads; the
simulation engine is at its best when handed *grids* (shared pool
sessions, chunked dispatch, single-flight dedup).  The scheduler is the
adapter between those shapes:

* **Admission** enforces a per-client in-flight quota — the one knob
  that keeps a single greedy client from parking everyone else's
  requests behind its own (:class:`~repro.service.protocol.QuotaError`
  becomes the daemon's 429).
* **A priority queue** orders admitted requests (higher ``priority``
  first, FIFO within a priority), so an interactive probe can overtake
  a bulk replay.
* **Batching**: a dispatcher thread cuts the queue into batches — it
  takes what is queued, waits at most ``batch_window`` seconds for
  stragglers, and hands the batch to
  :func:`~repro.core.parallel.run_cells` as one grid.  A thundering
  herd on one config lands in one batch (deduplicated as in-grid
  followers) or across concurrent batches (deduplicated by the cache's
  claim/join single-flight); either way the cell executes **once**.

Every request's result is published through a per-request event, so
handler threads block only on their own request.  Engine failures fan
back as per-request errors; the dispatcher itself never dies.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import PtpBenchmarkConfig
from ..core.parallel import (JOIN_TIMEOUT_SECONDS, ResultCache, SweepStats,
                             config_fingerprint, run_cells)
from ..core.pool import WorkerPool
from ..core.runner import PtpResult
from ..obs import EventBus
from ..obs.kinds import (SERVICE_BATCH, SERVICE_QUOTA_REJECT,
                         SERVICE_REQUEST, SERVICE_RESPONSE)
from .protocol import QuotaError, ServiceError

__all__ = ["SchedulerStats", "SweepScheduler"]

#: How long a dispatcher waits for more requests after the first one of
#: a batch arrived — the window in which a herd coalesces into one grid.
DEFAULT_BATCH_WINDOW = 0.005

#: Ceiling on requests per dispatched batch.
DEFAULT_MAX_BATCH = 64

#: Default per-client in-flight quota.
DEFAULT_QUOTA = 16


@dataclass
class SchedulerStats:
    """Lifetime counters of one scheduler (the ``/stats`` payload)."""

    #: Requests admitted past the quota gate.
    requests: int = 0
    #: Requests answered with a result.
    served: int = 0
    #: Requests that failed inside the engine.
    failed: int = 0
    #: Requests bounced by the per-client quota (the 429s).
    rejected_quota: int = 0
    #: Batches dispatched to the engine.
    batches: int = 0
    #: Cells the engine actually executed (simulated or pooled).
    executed: int = 0
    #: Cells answered from the result cache.
    cache_hits: int = 0
    #: Cells answered by sharing an in-flight execution.
    singleflight_hits: int = 0
    #: Cells answered by the closed-form evaluator.
    analytic: int = 0
    #: Simulated trials behind every executed cell.
    trials: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def absorb_sweep(self, stats: SweepStats) -> None:
        """Fold one engine run's provenance into the lifetime totals."""
        with self._lock:
            self.batches += 1
            self.executed += stats.executed
            self.cache_hits += stats.cache_hits
            self.singleflight_hits += stats.singleflight_hits
            self.analytic += stats.analytic
            self.trials += stats.trials

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically increment the counter called ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> Dict[str, int]:
        """Consistent snapshot of every counter, for ``/stats``."""
        with self._lock:
            return {
                "requests": self.requests,
                "served": self.served,
                "failed": self.failed,
                "rejected_quota": self.rejected_quota,
                "batches": self.batches,
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "singleflight_hits": self.singleflight_hits,
                "analytic": self.analytic,
                "trials": self.trials,
            }


class _Request:
    """One admitted request travelling through the scheduler."""

    __slots__ = ("seq", "priority", "client", "config", "fingerprint",
                 "event", "result", "error", "admitted_at")

    def __init__(self, seq: int, priority: int, client: str,
                 config: PtpBenchmarkConfig, admitted_at: float) -> None:
        self.seq = seq
        self.priority = priority
        self.client = client
        self.config = config
        self.fingerprint = config_fingerprint(config)
        self.event = threading.Event()
        self.result: Optional[PtpResult] = None
        self.error: Optional[BaseException] = None
        self.admitted_at = admitted_at

    def sort_key(self):
        # Higher priority first; FIFO (by admission sequence) within.
        return (-self.priority, self.seq)


class SweepScheduler:
    """Batches admitted requests onto the shared engine backend.

    Parameters
    ----------
    pool / cache / jobs / analytic / join_timeout:
        The engine backend, passed straight to
        :func:`~repro.core.parallel.run_cells`.  A live ``pool`` keeps
        its warm workers across every batch (the daemon's normal mode);
        ``jobs=1`` with no pool executes inline in dispatcher threads.
        The cache is the shared store that deduplicates across batches,
        dispatchers, and any concurrent CLI sweep on the same
        directory.  ``join_timeout`` bounds how long one batch waits on
        another's in-flight twin before recomputing.
    quota:
        Per-client in-flight ceiling (queued + executing).  ``0``
        rejects everything — useful for drain mode and tests.
    batch_window / max_batch:
        Batching shape: after the first queued request is picked up,
        the dispatcher waits up to ``batch_window`` seconds (collecting
        at most ``max_batch`` requests) before cutting the batch.
    dispatchers:
        Dispatcher threads.  More than one lets an expensive batch
        overlap a cheap one — and exercises the cache's claim/join
        single-flight across batches.
    """

    def __init__(self, pool: Optional[WorkerPool] = None,
                 cache: Optional[ResultCache] = None,
                 jobs: int = 1,
                 analytic: str = "off",
                 quota: int = DEFAULT_QUOTA,
                 batch_window: float = DEFAULT_BATCH_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 dispatchers: int = 2,
                 join_timeout: Optional[float] = JOIN_TIMEOUT_SECONDS,
                 ) -> None:
        if quota < 0:
            raise ServiceError(f"quota must be >= 0: {quota}", status=500)
        if max_batch < 1:
            raise ServiceError(
                f"max_batch must be >= 1: {max_batch}", status=500)
        if dispatchers < 1:
            raise ServiceError(
                f"dispatchers must be >= 1: {dispatchers}", status=500)
        self.pool = pool
        self.cache = cache
        self.jobs = jobs
        self.analytic = analytic
        self.quota = quota
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.join_timeout = join_timeout
        self.stats = SchedulerStats()
        #: Host-side ``service.*`` lifecycle events.
        self.obs = EventBus()
        self._t0 = time.monotonic()  # simlint: disable=SIM101
        self._seq = itertools.count()
        self._queue: List[tuple] = []  # heap of (sort_key, _Request)
        self._cv = threading.Condition()
        self._inflight: Dict[str, int] = {}
        self._stopped = False
        self._threads = [
            threading.Thread(target=self._dispatch_loop,
                             name=f"repro-service-d{i}", daemon=True)
            for i in range(dispatchers)
        ]
        for thread in self._threads:
            thread.start()

    def _now(self) -> float:
        return time.monotonic() - self._t0  # simlint: disable=SIM101

    # -- admission ---------------------------------------------------------

    def submit(self, config: PtpBenchmarkConfig, client: str = "anonymous",
               priority: int = 0) -> _Request:
        """Admit one request (quota-gated) onto the priority queue.

        Raises :class:`~repro.service.protocol.QuotaError` when the
        client already has ``quota`` requests in flight.  The returned
        handle is resolved by a dispatcher; wait on it with
        :meth:`wait`.
        """
        with self._cv:
            if self._stopped:
                raise ServiceError("scheduler is shut down", status=503)
            held = self._inflight.get(client, 0)
            if held >= self.quota:
                self.stats.bump("rejected_quota")
                self.obs.emit(SERVICE_QUOTA_REJECT, self._now(), client,
                              held, self.quota)
                raise QuotaError(client, held, self.quota)
            self._inflight[client] = held + 1
            request = _Request(next(self._seq), priority, client, config,
                               self._now())
            heapq.heappush(self._queue, (request.sort_key(), request))
            self.stats.bump("requests")
            self.obs.emit(SERVICE_REQUEST, request.admitted_at, client,
                          priority, request.fingerprint)
            self._cv.notify()
        return request

    def wait(self, request: _Request,
             timeout: Optional[float] = None) -> PtpResult:
        """Block until ``request`` is answered; re-raise its failure."""
        if not request.event.wait(timeout):
            raise ServiceError(
                f"request for {request.fingerprint[:12]}… timed out "
                f"after {timeout:g}s", status=504)
        if request.error is not None:
            error = request.error
            if isinstance(error, ServiceError):
                raise error
            raise ServiceError(f"{type(error).__name__}: {error}",
                               status=500)
        assert request.result is not None
        return request.result

    def execute(self, config: PtpBenchmarkConfig,
                client: str = "anonymous", priority: int = 0,
                timeout: Optional[float] = None) -> PtpResult:
        """Admit, wait, and return — the one-call path handlers use."""
        return self.wait(self.submit(config, client, priority), timeout)

    # -- dispatch ----------------------------------------------------------

    def _take_batch(self) -> Optional[List[_Request]]:
        """Block for the next batch (None when the scheduler stops)."""
        with self._cv:
            while not self._queue:
                if self._stopped:
                    return None
                self._cv.wait()
            batch = [heapq.heappop(self._queue)[1]]
            # The batching window: give the rest of a herd a moment to
            # land so it rides the same grid.
            deadline = time.monotonic() + self.batch_window  # simlint: disable=SIM101
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()  # simlint: disable=SIM101
                if self._queue:
                    batch.append(heapq.heappop(self._queue)[1])
                elif self._stopped or remaining <= 0:
                    break
                else:
                    self._cv.wait(remaining)
            queued = len(self._queue)
        self.obs.emit(SERVICE_BATCH, self._now(), len(batch), queued)
        return batch

    def _finish(self, request: _Request) -> None:
        with self._cv:
            held = self._inflight.get(request.client, 0) - 1
            if held > 0:
                self._inflight[request.client] = held
            else:
                self._inflight.pop(request.client, None)
        request.event.set()

    def _run_batch(self, batch: List[_Request]) -> None:
        configs = [r.config for r in batch]
        try:
            results, stats = run_cells(
                configs, jobs=self.jobs, cache=self.cache,
                analytic=self.analytic, pool=self.pool,
                join_timeout=self.join_timeout)
        except Exception as exc:
            # A whole-batch failure (engine bug, dead pool): every
            # requester gets the error; the dispatcher survives.
            for request in batch:
                request.error = exc
                self.stats.bump("failed")
                self._finish(request)
            return
        self.stats.absorb_sweep(stats)
        now = self._now()
        for request, result in zip(batch, results):
            request.result = result
            self.stats.bump("served")
            self.obs.emit(SERVICE_RESPONSE, now, request.client,
                          request.fingerprint, now - request.admitted_at)
            self._finish(request)

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._run_batch(batch)

    # -- lifecycle ---------------------------------------------------------

    def inflight(self, client: Optional[str] = None) -> int:
        """In-flight requests for one client (or every client)."""
        with self._cv:
            if client is not None:
                return self._inflight.get(client, 0)
            return sum(self._inflight.values())

    def stop(self, timeout: float = 5.0) -> None:
        """Drain-free shutdown: pending requests are failed, not run."""
        with self._cv:
            if self._stopped:
                return
            self._stopped = True
            pending = [entry[1] for entry in self._queue]
            self._queue.clear()
            self._cv.notify_all()
        for request in pending:
            request.error = ServiceError("scheduler shut down before the "
                                         "request ran", status=503)
            self.stats.bump("failed")
            self._finish(request)
        for thread in self._threads:
            thread.join(timeout=timeout)
