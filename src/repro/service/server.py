"""The benchmark daemon: a threaded HTTP/JSON front on the scheduler.

Stdlib only — :class:`http.server.ThreadingHTTPServer` gives every
connection its own handler thread, which blocks in
:meth:`~repro.service.scheduler.SweepScheduler.wait` while the
scheduler's dispatchers run batches on the warm pool.  Four endpoints:

``GET /healthz``
    Liveness: protocol version and uptime, nothing that can block.
``GET /stats``
    The scheduler's lifetime counters plus the shared cache's
    :meth:`~repro.core.parallel.ResultCache.stats` snapshot.
``POST /trial``
    One benchmark cell.  Responds with the JSON summary payload or —
    with ``"format": "wire"`` — the packed binary frame of
    :mod:`repro.core.wire` under ``application/x-repro-wire``, exactly
    the bytes the cache stores for that fingerprint.
``POST /sweep``
    A grid request (``base`` + ``sizes``/``counts``); the whole grid is
    admitted as one batch and answered as an ordered JSON cell list.

Every failure is a structured JSON error body
(:func:`~repro.service.protocol.error_payload`): 400 for malformed
requests, 429 for quota rejections, 503 on shutdown, 500 for engine
failures.  Nothing about a request is trusted: bodies are size-capped
and parsed defensively before they reach the protocol layer.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..core.parallel import ResultCache
from ..core.wire import encode_result
from ..obs.kinds import SERVICE_REJECT
from .protocol import (PROTOCOL_VERSION, ProtocolError, ServiceError,
                       error_payload, parse_sweep_request,
                       parse_trial_request, result_to_payload)
from .scheduler import SweepScheduler

__all__ = ["MAX_BODY_BYTES", "SweepService", "serve"]

#: Request bodies above this are rejected outright (413) before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Binary responses (the cache's wire frames) use this content type.
WIRE_CONTENT_TYPE = "application/x-repro-wire"


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the service rides on ``server.service``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-sweepd"

    # The default handler logs every request to stderr; the daemon's
    # request log is the service.* event stream instead.
    def log_message(self, fmt, *args):  # noqa: D102
        if self.server.service.verbose:  # type: ignore[attr-defined]
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def service(self) -> "SweepService":
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"))

    def _send_error(self, exc: ServiceError, client: str = "?") -> None:
        service = self.service
        service.scheduler.obs.emit(
            SERVICE_REJECT, service.scheduler._now(), client, exc.status,
            exc.reason)
        self._send_json(exc.status, error_payload(exc))

    def _read_body(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ProtocolError("request requires a Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        service = self.service
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": service.uptime(),
            })
        elif self.path == "/stats":
            self._send_json(200, service.stats())
        else:
            self._send_error(ServiceError(
                f"no such endpoint: GET {self.path}", status=404))

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/trial":
            handler = self._handle_trial
        elif self.path == "/sweep":
            handler = self._handle_sweep
        else:
            self._send_error(ServiceError(
                f"no such endpoint: POST {self.path}", status=404))
            return
        try:
            handler(self._read_body())
        except ServiceError as exc:
            self._send_error(exc)
        except Exception as exc:  # a handler bug must not kill the thread
            self._send_error(ServiceError(
                f"{type(exc).__name__}: {exc}", status=500))

    def _handle_trial(self, body) -> None:
        service = self.service
        config, client, priority, fmt, samples = parse_trial_request(body)
        try:
            result = service.scheduler.execute(
                config, client=client, priority=priority,
                timeout=service.request_timeout)
        except ServiceError as exc:
            self._send_error(exc, client)
            return
        if fmt == "wire":
            self._send(200, encode_result(result), WIRE_CONTENT_TYPE)
        else:
            self._send_json(200, result_to_payload(result, samples))

    def _handle_sweep(self, body) -> None:
        service = self.service
        cells, client, priority, samples = parse_sweep_request(body)
        scheduler = service.scheduler
        try:
            requests = [scheduler.submit(cell, client=client,
                                         priority=priority)
                        for cell in cells]
        except ServiceError as exc:
            # Quota hit partway through admission: the cells already
            # queued still run (and warm the cache), but this request
            # is answered with the rejection.
            self._send_error(exc, client)
            return
        try:
            results = [scheduler.wait(request,
                                      timeout=service.request_timeout)
                       for request in requests]
        except ServiceError as exc:
            self._send_error(exc, client)
            return
        self._send_json(200, {
            "cells": [result_to_payload(result, samples)
                      for result in results],
        })


class SweepService:
    """The daemon: one scheduler, one cache, one listening socket.

    Construct, then :meth:`start` (background thread) or
    :meth:`serve_forever` (foreground).  ``port=0`` binds an ephemeral
    port — read the bound address back from :attr:`address` — which is
    how tests and the load-test boot mode avoid collisions.
    """

    def __init__(self, scheduler: SweepScheduler,
                 host: str = "127.0.0.1", port: int = 8642,
                 request_timeout: Optional[float] = 300.0,
                 verbose: bool = False) -> None:
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        self.verbose = verbose
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.monotonic()  # simlint: disable=SIM101

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved even for ``port=0``)."""
        return self._httpd.server_address[:2]

    def uptime(self) -> float:
        """Seconds since the service object was constructed."""
        return time.monotonic() - self._t0  # simlint: disable=SIM101

    def stats(self) -> dict:
        """The ``GET /stats`` payload: scheduler counters + cache."""
        payload = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": self.uptime(),
            "scheduler": self.scheduler.stats.as_dict(),
            "inflight": self.scheduler.inflight(),
        }
        cache = self.scheduler.cache
        if isinstance(cache, ResultCache):
            payload["cache"] = cache.stats()
        return payload

    def start(self) -> "SweepService":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or SIGINT)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting, fail queued requests, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self.scheduler.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve(scheduler: SweepScheduler, host: str = "127.0.0.1",
          port: int = 8642, verbose: bool = False,
          request_timeout: Optional[float] = 300.0) -> SweepService:
    """Build and start a background :class:`SweepService` in one call."""
    return SweepService(scheduler, host=host, port=port, verbose=verbose,
                        request_timeout=request_timeout).start()
