"""The sweep service's request protocol: JSON in, results out.

A service request is a plain JSON object describing one
:class:`~repro.core.config.PtpBenchmarkConfig` (or a grid of them) in
the same vocabulary the CLI flags use — ``message_bytes``,
``partitions``, ``noise``/``noise_percent`` by name, ``faults`` as a
spec string.  This module owns both directions of that boundary:

* :func:`config_from_payload` validates a request dict *strictly*
  (unknown keys, wrong types, and contradictory values are all
  :class:`ProtocolError` with a human-readable reason — the daemon's
  structured 400) and resolves it into a live, fully validated config.
  Every simulated-behaviour input rides the fingerprint, so two clients
  sending the same JSON always address the same cache entry.
* :func:`payload_from_config` is the inverse, used by the thin client
  and the load-test replayer to speak the protocol from a live config.
* :func:`result_to_payload` / the wire codec are the two response
  shapes: a JSON summary (metrics, digest, provenance, optionally the
  raw sample timelines) or the packed binary frame of
  :mod:`repro.core.wire`, byte-identical to what the cache stores.

The protocol is deliberately *narrower* than the config dataclass:
substrate presets (machine/network/cost objects) are not addressable
over the wire — the daemon benchmarks the substrate it was started
with, the way one benchmark host serves many clients.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import PtpBenchmarkConfig
from ..core.parallel import config_fingerprint, plan_cells
from ..core.persistence import sample_to_dict
from ..core.runner import PtpResult
from ..core.wire import METRIC_NAMES
from ..errors import ConfigurationError, ReproError
from ..faults import parse_fault_spec
from ..noise import (ExponentialNoise, GaussianNoise, NoNoise,
                     SingleThreadNoise, UniformNoise, noise_model_from_name)

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "QuotaError",
           "ServiceError", "config_from_payload", "payload_from_config",
           "parse_trial_request", "parse_sweep_request",
           "result_to_payload", "error_payload"]

#: Bumped on any incompatible change to the request/response JSON shape.
PROTOCOL_VERSION = 1

#: Config fields a request may carry, with the type(s) each accepts.
#: ``bool`` is deliberately excluded from the int fields (it is an int
#: subclass, and ``"partitions": true`` must be a 400, not 1).
_INT_FIELDS = ("message_bytes", "partitions", "partitions_per_thread",
               "iterations", "warmup", "seed")
_CONFIG_FIELDS = _INT_FIELDS + ("compute_seconds", "compute_ms", "noise",
                                "noise_percent", "cache", "impl", "faults")

#: Noise-model class -> protocol name (the inverse of
#: :func:`~repro.noise.noise_model_from_name`).
_NOISE_NAMES = {NoNoise: "none", SingleThreadNoise: "single",
                UniformNoise: "uniform", GaussianNoise: "gaussian",
                ExponentialNoise: "exponential"}


class ServiceError(ReproError):
    """A request failed with an HTTP-style status and a reason."""

    status = 500

    def __init__(self, reason: str, status: Optional[int] = None) -> None:
        super().__init__(reason)
        self.reason = reason
        if status is not None:
            self.status = status


class ProtocolError(ServiceError):
    """A request payload is malformed or invalid (the structured 400)."""

    status = 400


class QuotaError(ServiceError):
    """A client exceeded its in-flight request quota (the 429)."""

    status = 429

    def __init__(self, client: str, inflight: int, limit: int) -> None:
        super().__init__(
            f"client {client!r} has {inflight} request(s) in flight "
            f"(quota {limit}); retry after one completes")
        self.client = client
        self.inflight = inflight
        self.limit = limit


def _require_mapping(payload, what: str) -> Dict:
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def config_from_payload(payload: Dict) -> PtpBenchmarkConfig:
    """Resolve a request's config object into a live, validated config.

    Strict on purpose: unknown keys are rejected (a typo like
    ``"partitons"`` must not silently benchmark the default), numeric
    fields must be actual numbers (not booleans or strings), and the
    resulting config runs the dataclass's own construction-time
    validation — every failure is a :class:`ProtocolError` carrying the
    validation reason verbatim, which the daemon returns as the 400
    body.
    """
    payload = _require_mapping(payload, "config")
    unknown = sorted(set(payload) - set(_CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {unknown}; allowed: "
            f"{sorted(_CONFIG_FIELDS)}")
    if "message_bytes" not in payload or "partitions" not in payload:
        raise ProtocolError(
            "config requires 'message_bytes' and 'partitions'")
    if "compute_seconds" in payload and "compute_ms" in payload:
        raise ProtocolError(
            "give 'compute_seconds' or 'compute_ms', not both")
    kwargs: Dict = {}
    for name in _INT_FIELDS:
        if name not in payload:
            continue
        value = payload[name]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"config field {name!r} must be an integer, got "
                f"{value!r}")
        kwargs[name] = value
    compute = payload.get("compute_seconds")
    if "compute_ms" in payload:
        compute = payload["compute_ms"]
    if compute is not None:
        if isinstance(compute, bool) or not isinstance(compute,
                                                       (int, float)):
            raise ProtocolError(
                f"compute time must be a number, got {compute!r}")
        kwargs["compute_seconds"] = (float(compute) / 1e3
                                     if "compute_ms" in payload
                                     else float(compute))
    noise_name = payload.get("noise", "none")
    if not isinstance(noise_name, str):
        raise ProtocolError(
            f"config field 'noise' must be a model name, got "
            f"{noise_name!r}")
    percent = payload.get("noise_percent")
    if percent is not None and (isinstance(percent, bool)
                                or not isinstance(percent, (int, float))):
        raise ProtocolError(
            f"config field 'noise_percent' must be a number, got "
            f"{percent!r}")
    if percent is None:
        percent = 0.0 if noise_name == "none" else 4.0
    for name in ("cache", "impl"):
        if name in payload:
            if not isinstance(payload[name], str):
                raise ProtocolError(
                    f"config field {name!r} must be a string, got "
                    f"{payload[name]!r}")
            kwargs[name] = payload[name]
    spec = payload.get("faults")
    try:
        kwargs["noise"] = noise_model_from_name(noise_name, float(percent))
        if spec is not None:
            if not isinstance(spec, str):
                raise ProtocolError(
                    f"config field 'faults' must be a spec string, got "
                    f"{spec!r}")
            kwargs["faults"] = parse_fault_spec(spec)
        return PtpBenchmarkConfig(**kwargs)
    except ConfigurationError as exc:
        raise ProtocolError(str(exc))


def payload_from_config(config: PtpBenchmarkConfig) -> Dict:
    """The request dict addressing ``config`` (the client-side inverse).

    Only protocol-expressible configs round-trip: custom substrate
    presets are outside the wire vocabulary, an unknown noise model or
    a fault plan (whose spec string is not recoverable from the live
    object) raises :class:`ProtocolError`.
    """
    name = _NOISE_NAMES.get(type(config.noise))
    if name is None:
        raise ProtocolError(
            f"noise model {type(config.noise).__name__} has no protocol "
            f"name; use one of {sorted(_NOISE_NAMES.values())}")
    if config.faults is not None:
        raise ProtocolError(
            "fault plans cannot be rebuilt into a request payload; send "
            "the original spec string in the 'faults' field instead")
    payload: Dict = {
        "message_bytes": config.message_bytes,
        "partitions": config.partitions,
        "compute_seconds": config.compute_seconds,
        "iterations": config.iterations,
        "warmup": config.warmup,
        "seed": config.seed,
        "cache": config.cache,
        "impl": config.impl,
    }
    if config.partitions_per_thread != 1:
        payload["partitions_per_thread"] = config.partitions_per_thread
    if name != "none":
        payload["noise"] = name
        payload["noise_percent"] = config.noise.noise_percent
    return payload


def _client_and_priority(payload: Dict) -> Tuple[str, int]:
    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError(
            f"'client' must be a non-empty string, got {client!r}")
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(
            f"'priority' must be an integer, got {priority!r}")
    return client, priority


def parse_trial_request(payload) -> Tuple[PtpBenchmarkConfig, str, int,
                                          str, bool]:
    """Validate one ``POST /trial`` body.

    Returns ``(config, client, priority, format, include_samples)``;
    ``format`` is ``"json"`` (summary payload) or ``"wire"`` (binary
    frame).  Any problem is a :class:`ProtocolError`.
    """
    payload = _require_mapping(payload, "request")
    if "config" not in payload:
        raise ProtocolError("request requires a 'config' object")
    config = config_from_payload(payload["config"])
    client, priority = _client_and_priority(payload)
    fmt = payload.get("format", "json")
    if fmt not in ("json", "wire"):
        raise ProtocolError(
            f"'format' must be 'json' or 'wire', got {fmt!r}")
    samples = payload.get("samples", False)
    if not isinstance(samples, bool):
        raise ProtocolError(
            f"'samples' must be a boolean, got {samples!r}")
    return config, client, priority, fmt, samples


def parse_sweep_request(payload) -> Tuple[List[PtpBenchmarkConfig], str,
                                          int, bool]:
    """Validate one ``POST /sweep`` body into its per-cell configs.

    The body carries a ``base`` config plus ``sizes``/``counts`` grid
    axes; cells are planned exactly as the CLI sweep plans them
    (:func:`~repro.core.parallel.plan_cells`, per-cell derived seeds),
    so a service sweep addresses the same fingerprints a local one
    does.  Returns ``(cells, client, priority, include_samples)``.
    """
    payload = _require_mapping(payload, "request")
    if "base" not in payload:
        raise ProtocolError("sweep request requires a 'base' config")
    base = config_from_payload(payload["base"])
    axes = {}
    for name in ("sizes", "counts"):
        values = payload.get(name)
        if (not isinstance(values, list) or not values
                or any(isinstance(v, bool) or not isinstance(v, int)
                       for v in values)):
            raise ProtocolError(
                f"sweep request requires {name!r} as a non-empty list "
                f"of integers")
        axes[name] = values
    client, priority = _client_and_priority(payload)
    samples = payload.get("samples", False)
    if not isinstance(samples, bool):
        raise ProtocolError(
            f"'samples' must be a boolean, got {samples!r}")
    try:
        cells = plan_cells(base, axes["sizes"], axes["counts"])
    except ConfigurationError as exc:
        raise ProtocolError(str(exc))
    if not cells:
        raise ProtocolError(
            "sweep grid is empty: every message size is smaller than "
            "its partition count")
    return cells, client, priority, samples


def result_to_payload(result: PtpResult,
                      include_samples: bool = False) -> Dict:
    """The JSON response body for one answered cell.

    Carries the fingerprint (the cache identity the request resolved
    to), provenance (``source``/``trials``), the SHA-256 event digest —
    byte-equal digests prove a service answer identical to a local run
    — and the four derived pruned-mean metrics.  With
    ``include_samples`` the raw per-iteration timelines ride along in
    the archival JSON shape, from which every metric is recomputable.
    """
    payload: Dict = {
        "fingerprint": config_fingerprint(result.config),
        "source": result.source,
        "trials": result.trials,
        "event_digest": result.event_digest,
        "n_samples": len(result.samples),
        "metrics": {},
    }
    if result.samples:
        for name in METRIC_NAMES:
            payload["metrics"][name] = getattr(result, name).mean
    if result.fault_outcome is not None:
        payload["fault_outcome"] = result.fault_outcome.to_dict()
    if include_samples:
        payload["samples"] = [sample_to_dict(s) for s in result.samples]
    return payload


def error_payload(exc: ServiceError) -> Dict:
    """The structured JSON body every rejected request gets."""
    return {"error": {"status": exc.status, "reason": exc.reason}}
