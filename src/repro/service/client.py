"""A thin stdlib client for the sweep daemon.

:class:`ServiceClient` speaks the protocol of
:mod:`repro.service.protocol` over :mod:`urllib.request` — no
dependencies, no connection pooling, no retries.  It exists so tests,
:mod:`scripts.load_test`, and notebook users don't hand-roll HTTP:

>>> client = ServiceClient("http://127.0.0.1:8642", client_id="nb")
>>> client.healthz()["status"]
'ok'
>>> payload = client.trial({"message_bytes": 4096, "partitions": 8})
>>> payload["metrics"]["overhead"]

Server-side rejections come back as the same exception types the
daemon raised — :class:`~repro.service.protocol.ProtocolError` for a
400, :class:`~repro.service.protocol.QuotaError` for a 429, plain
:class:`~repro.service.protocol.ServiceError` otherwise — rebuilt from
the structured error body, so callers handle local and remote failures
with one ``except`` clause.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from ..core.config import PtpBenchmarkConfig
from ..core.runner import PtpResult
from ..core.wire import decode_result
from .protocol import (ProtocolError, QuotaError, ServiceError,
                       config_from_payload, payload_from_config)
from .server import WIRE_CONTENT_TYPE

__all__ = ["ServiceClient"]


def _rebuild_error(status: int, body: bytes) -> ServiceError:
    """Turn a structured error response back into the exception it was."""
    try:
        reason = json.loads(body)["error"]["reason"]
    except (ValueError, KeyError, TypeError):
        reason = body.decode("utf-8", "replace") or f"HTTP {status}"
    if status == 400:
        return ProtocolError(reason)
    if status == 429:
        # QuotaError's constructor wants the server-side numbers, which
        # the body doesn't carry — build the instance around the reason.
        error = QuotaError.__new__(QuotaError)
        ServiceError.__init__(error, reason, status=429)
        return error
    return ServiceError(reason, status=status)


class ServiceClient:
    """One daemon endpoint plus the identity requests are billed to."""

    def __init__(self, base_url: str, client_id: str = "anonymous",
                 timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, payload: Optional[Dict] = None,
                 raw: bool = False):
        data = headers = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"}
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers or {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raise _rebuild_error(exc.code, exc.read())
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}", status=503)
        if raw:
            if content_type != WIRE_CONTENT_TYPE:
                raise ServiceError(
                    f"expected a wire frame, got {content_type!r}")
            return body
        return json.loads(body)

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict:
        """Liveness probe: the daemon's ``GET /healthz`` payload."""
        return self._request("/healthz")

    def stats(self) -> Dict:
        """Lifetime counters + cache snapshot from ``GET /stats``."""
        return self._request("/stats")

    def trial(self, config: Dict, priority: int = 0,
              samples: bool = False) -> Dict:
        """Run one cell described by a protocol config dict."""
        return self._request("/trial", {
            "config": config, "client": self.client_id,
            "priority": priority, "samples": samples,
        })

    def trial_result(self, config: PtpBenchmarkConfig,
                     priority: int = 0) -> PtpResult:
        """Run one cell from a live config; decode the binary frame.

        The wire format carries the raw timelines, so the returned
        :class:`~repro.core.runner.PtpResult` is bit-identical to a
        local run of the same fingerprint — including the event digest.
        """
        frame = self._request("/trial", {
            "config": payload_from_config(config),
            "client": self.client_id, "priority": priority,
            "format": "wire",
        }, raw=True)
        return decode_result(config, frame)

    def sweep(self, base: Dict, sizes: Sequence[int],
              counts: Sequence[int], priority: int = 0,
              samples: bool = False) -> List[Dict]:
        """Run a grid; returns the ordered per-cell payload list."""
        payload = self._request("/sweep", {
            "base": base, "sizes": list(sizes), "counts": list(counts),
            "client": self.client_id, "priority": priority,
            "samples": samples,
        })
        return payload["cells"]


def _roundtrip_check(payload: Dict) -> Dict:
    """Validate a config dict client-side (same rules as the daemon)."""
    return payload_from_config(config_from_payload(payload))
