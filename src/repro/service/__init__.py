"""The sweep service: a long-running benchmark daemon over the warm pool.

One process owns the expensive state — the warm
:class:`~repro.core.pool.WorkerPool` and the content-addressed
:class:`~repro.core.parallel.ResultCache` — and many clients address it
over local HTTP/JSON.  The layers, bottom up:

* :mod:`repro.service.protocol` — request validation, config↔payload
  conversion, structured errors (400/429/…) and response shapes.
* :mod:`repro.service.scheduler` — admission quotas, the priority
  queue, and request batching onto :func:`~repro.core.parallel.run_cells`.
* :mod:`repro.service.server` — the threaded stdlib HTTP front.
* :mod:`repro.service.client` — the thin stdlib client.

Start one with ``repro serve`` or, programmatically::

    from repro.service import SweepScheduler, serve
    service = serve(SweepScheduler(cache=cache, pool=pool), port=0)
    host, port = service.address

See ``docs/service.md`` for the API reference and operational notes.
"""

from .client import ServiceClient
from .protocol import (PROTOCOL_VERSION, ProtocolError, QuotaError,
                       ServiceError, config_from_payload,
                       payload_from_config, result_to_payload)
from .scheduler import SchedulerStats, SweepScheduler
from .server import SweepService, serve

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "QuotaError",
           "SchedulerStats", "ServiceClient", "ServiceError",
           "SweepScheduler", "SweepService", "config_from_payload",
           "payload_from_config", "result_to_payload", "serve"]
