"""CPU compute-cost model.

Converts a nominal per-thread compute amount (the benchmark's ``comp``
parameter, e.g. 10 ms) into the wall-clock time the thread actually spends,
accounting for:

* **oversubscription** — ``k`` threads time-sharing one core each take
  ``k``× longer, plus a context-switch charge per quantum, which produces
  the throughput drop the paper reports for 64 threads on 40 cores (§4.7);
* **injected noise** — an additive delay drawn from one of the §3.3 noise
  models (applied by the caller; this module only provides the scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .binding import ThreadBinding
from .topology import MachineSpec

__all__ = ["ComputeModel", "scaled_compute_time"]

#: Scheduler quantum used to count context switches while oversubscribed.
_QUANTUM = 0.004  # 4 ms, a typical CFS slice under load


def scaled_compute_time(compute_seconds: float, share: int,
                        spec: MachineSpec) -> float:
    """Wall time for ``compute_seconds`` of work on a core shared ``share`` ways.

    ``share == 1`` returns the input unchanged.  Sharing multiplies runtime
    and adds one context-switch cost per expired quantum, modelling the
    round-robin interleaving of oversubscribed OpenMP threads.
    """
    if compute_seconds < 0:
        raise ConfigurationError(
            f"negative compute time: {compute_seconds}")
    if share < 1:
        raise ConfigurationError(f"core share must be >= 1: {share}")
    if share == 1:
        return compute_seconds
    wall = compute_seconds * share
    switches = int(wall / _QUANTUM)
    return wall + switches * spec.context_switch


@dataclass
class ComputeModel:
    """Per-team compute scaling bound to a concrete thread binding."""

    binding: ThreadBinding

    def wall_time(self, thread: int, compute_seconds: float) -> float:
        """Wall-clock seconds thread ``thread`` needs for the nominal work."""
        share = self.binding.oversubscription_factor(thread)
        return scaled_compute_time(compute_seconds, share, self.binding.spec)

    def slowest_wall_time(self, compute_seconds: float) -> float:
        """Wall time of the most-loaded thread (the fork-join critical path)."""
        if self.binding.nthreads == 0:
            return 0.0
        return max(self.wall_time(t, compute_seconds)
                   for t in range(self.binding.nthreads))
