"""Compute-node topology model.

Describes a node the way the paper's testbed (SciNet Niagara) is described:
sockets holding cores, one NUMA domain per socket, a NIC attached to one
socket.  The spec is a frozen dataclass so machine descriptions can be used
as dictionary keys and shared between simulations safely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["MachineSpec", "NIAGARA_NODE", "core_socket", "validate_spec"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one compute node.

    Attributes
    ----------
    sockets_per_node:
        CPU sockets (= NUMA domains on Niagara).
    cores_per_socket:
        Physical cores per socket.
    clock_ghz:
        Nominal core clock; only used for documentation/reporting.
    nic_socket:
        Socket the network adapter is attached to.  Threads on other sockets
        pay :attr:`inter_socket_penalty` per MPI injection.
    inter_socket_penalty:
        Extra seconds for an MPI call whose issuing thread sits on a
        different socket than the NIC (remote doorbell + cache-line
        transfers).  This drives the paper's 32-partition "spillover" spike.
    inter_socket_bandwidth_factor:
        Multiplier (>1) applied to memory-copy time when source data lives
        on the remote NUMA domain.
    context_switch:
        Cost of one context switch; used by the oversubscription model and
        mirrors the single-thread-delay noise rationale (Li et al. [21]).
    memory_bandwidth:
        Sustained per-core DRAM streaming bandwidth in bytes/second.
    cache_bandwidth:
        Per-core bandwidth for data resident in cache, bytes/second.
    llc_bytes:
        Capacity of the cache cleared by the cold-cache invalidation buffer
        (the paper uses an 8 MB read/write buffer, after SMB).
    """

    sockets_per_node: int = 2
    cores_per_socket: int = 20
    clock_ghz: float = 2.4
    nic_socket: int = 0
    inter_socket_penalty: float = 2.5e-6
    inter_socket_bandwidth_factor: float = 1.6
    context_switch: float = 5.0e-6
    memory_bandwidth: float = 12.0e9
    cache_bandwidth: float = 80.0e9
    llc_bytes: int = 8 * 1024 * 1024

    @property
    def cores_per_node(self) -> int:
        """Total physical cores on the node."""
        return self.sockets_per_node * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket index owning ``core`` (cores are numbered socket-major)."""
        if core < 0:
            raise ConfigurationError(f"negative core id: {core}")
        return (core // self.cores_per_socket) % self.sockets_per_node

    def is_remote_to_nic(self, core: int) -> bool:
        """True if ``core`` is on a different socket than the NIC."""
        return self.socket_of(core) != self.nic_socket

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)


def validate_spec(spec: MachineSpec) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on nonsense specs."""
    if spec.sockets_per_node < 1:
        raise ConfigurationError("sockets_per_node must be >= 1")
    if spec.cores_per_socket < 1:
        raise ConfigurationError("cores_per_socket must be >= 1")
    if not (0 <= spec.nic_socket < spec.sockets_per_node):
        raise ConfigurationError(
            f"nic_socket {spec.nic_socket} out of range "
            f"[0, {spec.sockets_per_node})")
    if spec.memory_bandwidth <= 0 or spec.cache_bandwidth <= 0:
        raise ConfigurationError("bandwidths must be positive")
    if spec.cache_bandwidth < spec.memory_bandwidth:
        raise ConfigurationError(
            "cache_bandwidth must be >= memory_bandwidth")
    if spec.inter_socket_penalty < 0 or spec.context_switch < 0:
        raise ConfigurationError("time costs must be non-negative")
    if spec.llc_bytes <= 0:
        raise ConfigurationError("llc_bytes must be positive")


def core_socket(spec: MachineSpec, core: int) -> int:
    """Module-level convenience wrapper around :meth:`MachineSpec.socket_of`."""
    return spec.socket_of(core)


#: The paper's testbed node: 2 sockets x 20 Intel Skylake cores @ 2.4 GHz.
NIAGARA_NODE = MachineSpec()
