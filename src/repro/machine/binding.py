"""Thread-to-core binding policies.

The paper assigns one partition to one thread and observes a large overhead
spike when the thread count exceeds the cores of one socket ("spillover" to
the second socket, §4.2) and a distinct regime when threads exceed the whole
node (oversubscription, §4.7).  This module computes the core each thread
lands on under a policy, and exposes the two derived facts the timing model
needs: which threads are remote to the NIC, and how many threads share each
core.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .topology import MachineSpec

__all__ = ["BindPolicy", "ThreadBinding", "bind_threads"]


class BindPolicy(enum.Enum):
    """How consecutive thread ids map to cores.

    COMPACT
        Fill socket 0's cores first, then socket 1, then wrap around
        (oversubscription).  Matches ``OMP_PROC_BIND=close`` and is what the
        paper's experiments imply (spillover starts past 20 threads).
    SCATTER
        Round-robin across sockets (``OMP_PROC_BIND=spread``).  Used by the
        spillover ablation to show the spike is a binding artifact.
    SINGLE_SOCKET
        Clamp all threads onto the NIC's socket, wrapping early.  This trades
        spillover for oversubscription; used in ablations.
    """

    COMPACT = "compact"
    SCATTER = "scatter"
    SINGLE_SOCKET = "single-socket"


@dataclass(frozen=True)
class ThreadBinding:
    """The outcome of binding ``nthreads`` threads onto a node.

    Attributes
    ----------
    spec:
        The machine the binding was computed for.
    cores:
        ``cores[i]`` is the physical core that thread ``i`` runs on.
    """

    spec: MachineSpec
    cores: Tuple[int, ...]

    @property
    def nthreads(self) -> int:
        """Number of bound threads."""
        return len(self.cores)

    def core_of(self, thread: int) -> int:
        """Physical core of ``thread``."""
        return self.cores[thread]

    def socket_of(self, thread: int) -> int:
        """Socket of ``thread``."""
        return self.spec.socket_of(self.cores[thread])

    def is_remote_to_nic(self, thread: int) -> bool:
        """True when the thread sits on a socket without the NIC."""
        return self.spec.is_remote_to_nic(self.cores[thread])

    def spillover_threads(self) -> List[int]:
        """Thread ids bound to a socket other than the NIC's."""
        return [t for t in range(self.nthreads) if self.is_remote_to_nic(t)]

    def occupancy(self) -> Dict[int, int]:
        """Map core -> number of threads bound to it."""
        occ: Dict[int, int] = {}
        for c in self.cores:
            occ[c] = occ.get(c, 0) + 1
        return occ

    def oversubscription_factor(self, thread: int) -> int:
        """How many threads time-share this thread's core (>= 1)."""
        core = self.cores[thread]
        return sum(1 for c in self.cores if c == core)

    @property
    def oversubscribed(self) -> bool:
        """True if any core runs more than one thread."""
        return self.nthreads > 0 and max(self.occupancy().values()) > 1


def bind_threads(nthreads: int, spec: MachineSpec,
                 policy: BindPolicy = BindPolicy.COMPACT) -> ThreadBinding:
    """Compute the core for each of ``nthreads`` threads under ``policy``.

    Threads beyond the core count wrap around (oversubscription), matching
    the paper's 64-thread Halo3D configuration on a 40-core node.
    """
    if nthreads < 1:
        raise ConfigurationError(f"nthreads must be >= 1, got {nthreads}")
    total = spec.cores_per_node
    cores: List[int] = []
    if policy is BindPolicy.COMPACT:
        # Start on the NIC socket so small teams avoid spillover entirely.
        start = spec.nic_socket * spec.cores_per_socket
        order = [(start + i) % total for i in range(total)]
        for t in range(nthreads):
            cores.append(order[t % total])
    elif policy is BindPolicy.SCATTER:
        per = spec.cores_per_socket
        for t in range(nthreads):
            slot = t % total
            socket = slot % spec.sockets_per_node
            idx = slot // spec.sockets_per_node
            cores.append(socket * per + idx)
    elif policy is BindPolicy.SINGLE_SOCKET:
        per = spec.cores_per_socket
        base = spec.nic_socket * per
        for t in range(nthreads):
            cores.append(base + (t % per))
    else:  # pragma: no cover - exhaustive over enum
        raise ConfigurationError(f"unknown policy {policy!r}")
    return ThreadBinding(spec=spec, cores=tuple(cores))
