"""NUMA memory-placement model.

Niagara has one NUMA domain per socket; the paper notes NUMA effects appear
only when threads are mapped across sockets.  We model exactly that: a copy
whose source thread is on a different socket than the buffer's home domain
runs at reduced bandwidth, and MPI injections from the non-NIC socket pay a
fixed penalty (captured here so both the runtime and analyses share one
definition).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .topology import MachineSpec

__all__ = ["NUMAModel"]


@dataclass(frozen=True)
class NUMAModel:
    """Derived NUMA costs for one node.

    Attributes
    ----------
    spec:
        The node description supplying raw penalties and bandwidths.
    """

    spec: MachineSpec

    def copy_time(self, nbytes: int, src_socket: int, dst_socket: int) -> float:
        """Seconds to copy ``nbytes`` between NUMA domains.

        Local copies stream at full memory bandwidth; cross-socket copies are
        slowed by :attr:`MachineSpec.inter_socket_bandwidth_factor`.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative copy size: {nbytes}")
        self._check_socket(src_socket)
        self._check_socket(dst_socket)
        base = nbytes / self.spec.memory_bandwidth
        if src_socket == dst_socket:
            return base
        return base * self.spec.inter_socket_bandwidth_factor

    def injection_penalty(self, core: int) -> float:
        """Fixed extra cost for an MPI injection from ``core``.

        Zero on the NIC's socket; :attr:`MachineSpec.inter_socket_penalty`
        otherwise.  This is the knob behind the paper's 32-partition
        overhead spike (§4.2) and the spillover ablation.
        """
        if self.spec.is_remote_to_nic(core):
            return self.spec.inter_socket_penalty
        return 0.0

    def _check_socket(self, socket: int) -> None:
        if not (0 <= socket < self.spec.sockets_per_node):
            raise ConfigurationError(
                f"socket {socket} out of range "
                f"[0, {self.spec.sockets_per_node})")
