"""Hot/cold CPU-cache model.

The paper's §3.4: most micro-benchmarks reuse the same buffer every
iteration, so the data is cache-resident ("hot cache").  To imitate real
usage, the suite can invalidate the cache between iterations by streaming an
8 MB buffer (the SMB trick), forcing the next access to come from DRAM
("cold cache").

We model a cache as a set of resident buffer ranges with LRU-less capacity
accounting: reading ``n`` bytes costs ``n / cache_bandwidth`` when resident
and ``n / memory_bandwidth`` when not, after which the bytes become resident
(up to capacity).  This reproduces the paper's observed effect: the
cold-cache *overhead ratio* is **lower** than the hot-cache one because the
DRAM read cost appears in both the partitioned and the single-send paths and
amortizes the per-partition overheads (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from .topology import MachineSpec

__all__ = ["CacheModel", "CacheStats"]


@dataclass
class CacheStats:
    """Counters exposed for tests and reporting."""

    hits: int = 0
    misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_memory: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheModel:
    """Capacity-tracked residency model for one simulated process.

    Buffers are identified by caller-chosen string keys (e.g.
    ``"sendbuf"``); partial residency is not tracked — a buffer is resident
    or not, which is the granularity the benchmark needs.
    """

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._resident: Dict[str, int] = {}
        self._resident_bytes = 0
        self.stats = CacheStats()

    @property
    def resident_bytes(self) -> int:
        """Bytes currently accounted as cache-resident."""
        return self._resident_bytes

    def is_resident(self, key: str) -> bool:
        """True if the named buffer is currently cached."""
        return key in self._resident

    def access_time(self, key: str, nbytes: int) -> float:
        """Seconds to read/write ``nbytes`` of buffer ``key``; updates state.

        A miss loads the buffer at DRAM bandwidth and installs it (evicting
        arbitrary other buffers if capacity is exceeded, oldest-inserted
        first — deterministic).
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative access size: {nbytes}")
        if nbytes == 0:
            return 0.0
        if key in self._resident and self._resident[key] >= nbytes:
            self.stats.hits += 1
            self.stats.bytes_from_cache += nbytes
            return nbytes / self.spec.cache_bandwidth
        self.stats.misses += 1
        self.stats.bytes_from_memory += nbytes
        self._install(key, nbytes)
        return nbytes / self.spec.memory_bandwidth

    def touch(self, key: str, nbytes: int) -> None:
        """Mark a buffer resident without charging time (e.g. just written)."""
        self._install(key, nbytes)

    def invalidate(self) -> float:
        """Flush everything; returns the simulated cost of the SMB trick.

        The cost is one read + one write pass over an LLC-sized buffer at
        DRAM bandwidth, matching the 8 MB read/write loop in §3.4.
        """
        self._resident.clear()
        self._resident_bytes = 0
        self.stats.invalidations += 1
        return 2.0 * self.spec.llc_bytes / self.spec.memory_bandwidth

    # -- internals ------------------------------------------------------
    def _install(self, key: str, nbytes: int) -> None:
        old = self._resident.pop(key, 0)
        self._resident_bytes -= old
        effective = min(nbytes, self.spec.llc_bytes)
        while (self._resident_bytes + effective > self.spec.llc_bytes
               and self._resident):
            # Deterministic eviction: oldest-inserted first.
            victim = next(iter(self._resident))
            self._resident_bytes -= self._resident.pop(victim)
        self._resident[key] = effective
        self._resident_bytes += effective
