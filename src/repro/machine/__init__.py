"""Compute-node model: topology, thread binding, caches, CPU and NUMA costs.

This package is the simulated stand-in for the paper's Niagara nodes
(2 sockets x 20 Skylake cores, one NUMA domain per socket).  It answers the
questions the timing model asks:

* where does thread ``i`` run? (:func:`bind_threads`)
* how long does its compute take there? (:class:`ComputeModel`)
* what does touching a buffer cost, hot vs cold? (:class:`CacheModel`)
* what penalty applies for injecting from the far socket? (:class:`NUMAModel`)
"""

from .binding import BindPolicy, ThreadBinding, bind_threads
from .cache import CacheModel, CacheStats
from .cpu import ComputeModel, scaled_compute_time
from .memory import NUMAModel
from .topology import NIAGARA_NODE, MachineSpec, validate_spec

__all__ = [
    "BindPolicy",
    "ThreadBinding",
    "bind_threads",
    "CacheModel",
    "CacheStats",
    "ComputeModel",
    "scaled_compute_time",
    "NUMAModel",
    "NIAGARA_NODE",
    "MachineSpec",
    "validate_spec",
]
