"""Abstract domains and the fixpoint engine behind ``simcheck``.

Three pieces, all deliberately tiny and dependency-free:

:class:`Interval`
    Integer intervals with ±∞ bounds — the abstraction for partition
    indices and loop counters.  Supports the arithmetic the tracked
    expressions actually use (``+``, ``-``, constant ``*``, shifts of
    constants) plus ``join``/``widen`` for the fixpoint.

:class:`IndexSet`
    Finite unions of disjoint integer ranges — the abstraction for "which
    partitions has this epoch readied".  ``union`` is the *may* join,
    ``intersect`` the *must* join.  The representation is capped at
    :data:`MAX_RANGES` ranges (collapsing to the convex hull beyond
    that), which bounds every ascending chain.

:func:`fixpoint`
    A worklist solver over a :class:`~repro.analysis.cfg.CFG` for any
    join-semilattice state.  Widening is applied at loop heads once a
    block has been revisited :data:`WIDEN_AFTER` times, and a hard
    per-block visit cap guarantees termination even for a pathological
    client domain.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple

from .cfg import CFG

__all__ = ["Interval", "IndexSet", "fixpoint", "MAX_RANGES", "WIDEN_AFTER"]

NEG_INF = float("-inf")
POS_INF = float("inf")

#: Cap on the number of disjoint ranges an :class:`IndexSet` keeps before
#: collapsing to its convex hull.
MAX_RANGES = 16

#: Loop-head revisits before widening kicks in.
WIDEN_AFTER = 3

#: Hard safety valve: a block revisited this often stops propagating.
MAX_VISITS = 200


class Interval:
    """A closed integer interval ``[lo, hi]`` (bounds may be ±∞)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    # -- constructors -----------------------------------------------------
    @classmethod
    def const(cls, n: int) -> "Interval":
        return cls(n, n)

    @classmethod
    def top(cls) -> "Interval":
        return cls(NEG_INF, POS_INF)

    # -- predicates -------------------------------------------------------
    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi and isinstance(self.lo, int)

    @property
    def is_bounded(self) -> bool:
        return self.lo != NEG_INF and self.hi != POS_INF

    def contains(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def disjoint(self, other: "Interval") -> bool:
        return self.hi < other.lo or other.hi < self.lo

    # -- lattice ----------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to ±∞."""
        lo = self.lo if other.lo >= self.lo else NEG_INF
        hi = self.hi if other.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    # -- arithmetic -------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul_const(self, n: int) -> "Interval":
        a, b = self.lo * n, self.hi * n
        return Interval(min(a, b), max(a, b))

    # -- plumbing ---------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (isinstance(other, Interval)
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_singleton:
            return f"{{{self.lo}}}"
        return f"[{self.lo}, {self.hi}]"


class IndexSet:
    """An immutable union of disjoint, sorted integer ranges."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: Tuple[Tuple[int, int], ...] = ()):
        self.ranges = ranges

    EMPTY: "IndexSet"

    @classmethod
    def of_range(cls, lo: int, hi: int) -> "IndexSet":
        """The set ``{lo, …, hi}`` (inclusive); empty when ``hi < lo``."""
        if hi < lo:
            return cls.EMPTY
        return cls(((lo, hi),))

    @classmethod
    def _normalize(cls, pairs) -> "IndexSet":
        merged = []
        for lo, hi in sorted(pairs):
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        if len(merged) > MAX_RANGES:
            merged = [(merged[0][0], merged[-1][1])]
        return cls(tuple(merged))

    # -- queries ----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.ranges

    def contains_value(self, n: int) -> bool:
        return any(lo <= n <= hi for lo, hi in self.ranges)

    def covers(self, lo: int, hi: int) -> bool:
        """True when every value in ``[lo, hi]`` is in the set."""
        return any(a <= lo and hi <= b for a, b in self.ranges)

    def overlaps(self, lo: int, hi: int) -> bool:
        return any(a <= hi and lo <= b for a, b in self.ranges)

    # -- operations -------------------------------------------------------
    def add_range(self, lo: int, hi: int) -> "IndexSet":
        if hi < lo:
            return self
        return self._normalize(list(self.ranges) + [(lo, hi)])

    def union(self, other: "IndexSet") -> "IndexSet":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return self._normalize(list(self.ranges) + list(other.ranges))

    def intersect(self, other: "IndexSet") -> "IndexSet":
        out = []
        for a, b in self.ranges:
            for c, d in other.ranges:
                lo, hi = max(a, c), min(b, d)
                if lo <= hi:
                    out.append((lo, hi))
        return self._normalize(out)

    def subtract(self, other: "IndexSet") -> "IndexSet":
        out = []
        for a, b in self.ranges:
            pieces = [(a, b)]
            for c, d in other.ranges:
                nxt = []
                for lo, hi in pieces:
                    if d < lo or hi < c:
                        nxt.append((lo, hi))
                        continue
                    if lo < c:
                        nxt.append((lo, c - 1))
                    if d < hi:
                        nxt.append((d + 1, hi))
                pieces = nxt
            out.extend(pieces)
        return self._normalize(out)

    # -- plumbing ---------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, IndexSet) and self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash(self.ranges)

    def __repr__(self) -> str:
        if self.is_empty:
            return "{}"
        return "{" + ", ".join(
            f"{lo}" if lo == hi else f"{lo}..{hi}"
            for lo, hi in self.ranges) + "}"

    def describe(self) -> str:
        """Human form for messages: ``"0, 2..4"``."""
        return ", ".join(f"{lo}" if lo == hi else f"{lo}..{hi}"
                         for lo, hi in self.ranges)


IndexSet.EMPTY = IndexSet()


def fixpoint(cfg: CFG,
             entry_state,
             transfer: Callable,
             join: Callable,
             widen: Optional[Callable] = None) -> Dict[int, object]:
    """Worklist solver: least fixpoint of ``transfer`` over ``cfg``.

    ``transfer(block, state)`` returns the block's out-state;
    ``join(a, b)`` merges two in-states; ``widen(old, new)``, when given,
    replaces ``join`` at loop heads after :data:`WIDEN_AFTER` revisits.
    Returns the stable in-state per reachable block id.  Unreachable
    blocks are absent from the result.

    Termination: client lattices are expected to be finite-height (ours
    are, after interval widening and the :data:`MAX_RANGES` cap), but a
    hard :data:`MAX_VISITS` cap stops propagation regardless, so a buggy
    domain degrades to an incomplete analysis instead of a hang.
    """
    instate: Dict[int, object] = {cfg.entry: entry_state}
    visits: Dict[int, int] = {}
    work = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        out = transfer(block, instate[bid])
        for succ in block.succs:
            old = instate.get(succ)
            new = out if old is None else join(old, out)
            succ_block = cfg.blocks[succ]
            count = visits.get(succ, 0)
            if (old is not None and widen is not None
                    and succ_block.is_loop_head and count >= WIDEN_AFTER):
                new = widen(old, new)
            if new != old:
                if count >= MAX_VISITS:
                    continue
                visits[succ] = count + 1
                instate[succ] = new
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return instate
