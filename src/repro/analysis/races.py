"""Per-partition happens-before tracking for partitioned transfers.

The MPI 4.0 partitioned contract is a small per-epoch state machine: a
send partition may be written, then marked ready exactly once, then must
not be touched until ``wait``; a receive partition may only be read after
it has arrived.  :class:`PartitionTracker` shadows that state machine for
every partitioned request in a run, independently of the runtime's own
bookkeeping, and reports violations as ``(rule_id, message)`` pairs that
:class:`repro.analysis.checker.Checker` turns into findings.

Keeping the tracker free of simulator imports makes it unit-testable and
guarantees the validating layer can never perturb the schedule it checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["PartitionState", "PartitionTracker"]

#: A rule violation: ``(rule_id, message)``.
Violation = Tuple[str, str]


@dataclass
class PartitionState:
    """Shadow state of one partitioned request (one side of a transfer).

    Attributes
    ----------
    side:
        ``"send"`` or ``"recv"``.
    partitions:
        Declared partition count.
    started / active / epoch:
        Lifecycle position: ``started`` once the first ``start()`` was
        seen, ``active`` between a ``start()`` and the next ``wait()``.
    ready / arrived:
        Per-partition event times of this epoch (``pready`` on the send
        side, actual arrival on the receive side).
    writes / reads:
        Buffer-annotation times from ``note_buffer_write`` /
        ``note_buffer_read``.
    """

    side: str
    partitions: int
    started: bool = False
    active: bool = False
    epoch: int = 0
    ready: Dict[int, float] = field(default_factory=dict)
    arrived: Dict[int, float] = field(default_factory=dict)
    writes: Dict[int, List[float]] = field(default_factory=dict)
    reads: Dict[int, List[float]] = field(default_factory=dict)

    def describe(self) -> str:
        """Short human-readable identity used in messages."""
        return f"partitioned {self.side} request"


class PartitionTracker:
    """Happens-before checker over every partitioned request in a run.

    The :class:`~repro.analysis.checker.Checker` feeds it lifecycle events
    (``start``, ``pready``, ``parrived``, arrivals, buffer annotations)
    and it returns the rule violations each event implies.  Requests are
    identified by object identity; states persist across epochs so leak
    detection can run at finalize.
    """

    def __init__(self) -> None:
        self._states: Dict[int, Tuple[object, PartitionState]] = {}

    # -- bookkeeping ----------------------------------------------------
    def ensure(self, req, side: str, partitions: int) -> PartitionState:
        """Return (creating on first sight) the shadow state of ``req``."""
        entry = self._states.get(id(req))
        if entry is None:
            entry = (req, PartitionState(side=side, partitions=partitions))
            self._states[id(req)] = entry
        return entry[1]

    def state_of(self, req) -> Optional[PartitionState]:
        """The shadow state of ``req``, or None if never seen."""
        entry = self._states.get(id(req))
        return entry[1] if entry else None

    def items(self) -> Iterator[Tuple[object, PartitionState]]:
        """Iterate ``(request, state)`` pairs in first-seen order."""
        return iter(self._states.values())

    # -- lifecycle events ------------------------------------------------
    def on_start(self, state: PartitionState) -> List[Violation]:
        """A ``start()`` call: arm a fresh epoch."""
        violations: List[Violation] = []
        if state.active:
            violations.append((
                "PART003",
                f"start() on {state.describe()} while epoch {state.epoch} "
                f"is still active (wait first)"))
        state.started = True
        state.active = True
        state.epoch += 1
        state.ready.clear()
        state.arrived.clear()
        state.writes.clear()
        state.reads.clear()
        return violations

    def on_wait(self, state: PartitionState) -> List[Violation]:
        """A ``wait()`` call: close the epoch (legal only after start)."""
        if not state.started:
            return [(
                "PART003",
                f"wait() on {state.describe()} that was never started")]
        state.active = False
        return []

    def on_pready(self, state: PartitionState, partition: int,
                  now: float) -> List[Violation]:
        """An ``MPI_Pready`` on the send side."""
        bad_index = self._index_violation(state, partition, "pready")
        if bad_index:
            return bad_index
        if not state.active:
            return [(
                "PART003",
                f"pready({partition}) outside an active epoch on "
                f"{state.describe()} (call start first)")]
        if partition in state.ready:
            return [(
                "PART001",
                f"pready called twice on partition {partition} in epoch "
                f"{state.epoch}")]
        state.ready[partition] = now
        return []

    def on_parrived(self, state: PartitionState, partition: int) -> List[Violation]:
        """An ``MPI_Parrived`` poll on the receive side."""
        bad_index = self._index_violation(state, partition, "parrived")
        if bad_index:
            return bad_index
        if not state.started:
            return [(
                "PART003",
                f"parrived({partition}) on {state.describe()} before the "
                f"first start()")]
        return []

    def on_arrived(self, state: PartitionState, partition: int,
                   now: float) -> List[Violation]:
        """The runtime delivered ``partition`` (receive side)."""
        state.arrived[partition] = now
        return []

    # -- buffer happens-before ------------------------------------------
    def on_write(self, state: PartitionState, partition: int,
                 now: float) -> List[Violation]:
        """Application annotated a send-buffer write of ``partition``."""
        bad_index = self._index_violation(state, partition, "buffer write")
        if bad_index:
            return bad_index
        state.writes.setdefault(partition, []).append(now)
        if state.active and partition in state.ready:
            return [(
                "PART004",
                f"buffer write to partition {partition} at t={now:.6f}s "
                f"after pready at t={state.ready[partition]:.6f}s in epoch "
                f"{state.epoch} (write-after-ready race)")]
        return []

    def on_read(self, state: PartitionState, partition: int,
                now: float) -> List[Violation]:
        """Application annotated a receive-buffer read of ``partition``."""
        bad_index = self._index_violation(state, partition, "buffer read")
        if bad_index:
            return bad_index
        state.reads.setdefault(partition, []).append(now)
        if state.active and partition not in state.arrived:
            return [(
                "PART005",
                f"buffer read of partition {partition} at t={now:.6f}s "
                f"before it arrived in epoch {state.epoch} "
                f"(read-before-arrival race)")]
        return []

    # -- finalize --------------------------------------------------------
    def leaks(self) -> Iterator[Tuple[object, PartitionState]]:
        """Requests whose last epoch was started but never waited."""
        for req, state in self._states.values():
            if state.active:
                yield req, state

    @staticmethod
    def _index_violation(state: PartitionState, partition: int,
                         what: str) -> List[Violation]:
        if 0 <= partition < state.partitions:
            return []
        return [(
            "PART002",
            f"{what} on partition {partition} out of range "
            f"[0, {state.partitions})")]
