"""Static + dynamic correctness analysis for partitioned MPI programs.

The paper positions its suite as "a tool for developers to evaluate their
designs"; this package adds the other half of that promise — telling you
a design is *wrong*, not just slow.  It has two cooperating layers:

``simlint`` (static)
    :func:`lint_paths` / :func:`lint_file` / :func:`lint_source` — an
    AST linter over programs written against the simulated substrate,
    with rules for determinism hazards (wall-clock reads, global RNG
    state, hash-ordered iteration, mutable defaults) and sim-API misuse
    (bare yields, blocking while holding a simulated mutex).  CLI:
    ``python -m repro lint src/repro benchmarks examples``.

dynamic checking
    :func:`enable_checking` attaches a :class:`Checker` to a cluster; it
    shadows the MPI 4.0 partitioned state machine (double ``pready``,
    out-of-range partitions, ``wait`` without ``start``), tracks
    per-partition happens-before for buffer writes/reads, and at
    finalize sweeps for leaked requests, unmatched init halves and
    wait-for-graph deadlocks over simulated resources.  CLI:
    ``python -m repro check path/to/program.py``.

Both layers report :class:`Finding` objects; the rule reference lives in
``docs/analysis.md``.

Example
-------
>>> from repro.analysis import lint_source
>>> src = "import random\\n"
>>> [f.rule for f in lint_source(src)]
['SIM102']
"""

from .checker import (
    Checker,
    CheckReport,
    check_file,
    enable_checking,
    run_checked,
)
from .deadlock import ResourceMonitor, WaitForGraph
from .findings import Finding, format_findings
from .lint import lint_file, lint_paths, lint_source
from .races import PartitionState, PartitionTracker
from .rules import DYNAMIC_RULES, Rule, RuleInfo, all_rule_infos

__all__ = [
    "Checker",
    "CheckReport",
    "check_file",
    "enable_checking",
    "run_checked",
    "ResourceMonitor",
    "WaitForGraph",
    "Finding",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "PartitionState",
    "PartitionTracker",
    "Rule",
    "RuleInfo",
    "DYNAMIC_RULES",
    "all_rule_infos",
]
