"""``simcheck`` — flow-sensitive verification of the partitioned lifecycle.

The dynamic checker (:mod:`repro.analysis.checker`) only catches the
schedules a trial happens to execute; this module proves lifecycle
properties *statically*, before a simulation runs.  For every function in
a module it builds a CFG (:mod:`repro.analysis.cfg`) and abstractly
interprets partitioned-request protocol state through it
(:mod:`repro.analysis.absint` supplies the domains and the fixpoint
solver):

* each variable bound by ``psend_init``/``precv_init`` (or a direct
  ``PartitionedSendRequest``/``PartitionedRecvRequest`` construction) is
  tracked through the lifecycle lattice *created → started → waited*,
  joined path-insensitively as a set of possible states;
* the partitions readied in the current epoch are tracked as two
  :class:`~repro.analysis.absint.IndexSet` abstractions — ``must``
  (readied on every path, joined by intersection) and ``may`` (readied
  on some path, joined by union);
* integer locals and module constants flow through an interval domain,
  so ``range(lo, hi)`` loops and ``pready_range``/``pready_list`` calls
  contribute whole index ranges.  A ``for i in range(lo, hi)`` loop with
  a straight-line body is interpreted by a loop *summary* (the body is
  replayed with ``i`` bound to ``[lo, hi-1]``, twice when it may repeat
  without an epoch reset) instead of a fixpoint, which is what keeps the
  early-bird loop-split idiom — half the partitions readied in one loop,
  the rest in a later one — provably clean.

The verdicts are rules SIM110–SIM115 (see :data:`FLOW_RULES`); they are
the static twins of the dynamic ``PART``/``FIN`` rules.  Every check is
conservative: unknown indices, unknown partition counts and unrecognized
control flow degrade to silence, never to a false alarm.  Entry point:
:func:`analyze_module`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .absint import Interval, IndexSet, fixpoint
from .cfg import LoopBind, build_cfg
from .findings import Finding

__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "analyze_module"]

#: The flow-sensitive rule set: id -> (name, summary, fix hint).
FLOW_RULES = {
    "SIM110": (
        "partition-bounds",
        "partition index possibly outside [0, partitions) in "
        "pready/pready_range/pready_list/parrived/buffer annotations",
        "partition indices must lie in [0, partitions); check loop and "
        "range bounds against the partition count"),
    "SIM111": (
        "ready-divergence",
        "a partition is readied on one branch but not on every path "
        "reaching the epoch's wait()",
        "ready every partition on every path: move the pready out of the "
        "branch or mirror it in the other arm"),
    "SIM112": (
        "static-double-pready",
        "the same partition is readied twice within one epoch",
        "each partition may be readied exactly once per epoch; reset "
        "epochs with start() after wait()"),
    "SIM113": (
        "lifecycle-order",
        "pready/parrived/wait used against the request state machine "
        "(before start(), after wait(), or start() on an active epoch)",
        "order calls start() -> pready()/parrived() -> wait() within "
        "each epoch"),
    "SIM114": (
        "epoch-leak",
        "a started partitioned request is not waited on some normal "
        "exit path of the function that created it",
        "every start() needs a matching wait() on every exit path "
        "(or hand the request out instead of dropping it)"),
    "SIM115": (
        "static-write-after-ready",
        "note_buffer_write() on a partition after its pready in the same "
        "epoch — the static twin of the dynamic write-after-pready race",
        "finish writing a partition before marking it ready"),
}

FLOW_RULE_IDS = frozenset(FLOW_RULES)

#: Methods understood by the request transfer functions.
_LIFECYCLE_METHODS = frozenset({
    "start", "wait", "test", "pready", "pready_range", "pready_list",
    "parrived", "note_buffer_write", "note_buffer_read", "arrived_event",
})

_INIT_METHODS = {"psend_init": "send", "precv_init": "recv"}
_INIT_CONSTRUCTORS = {"PartitionedSendRequest": "send",
                      "PartitionedRecvRequest": "recv"}

_CREATED = "created"
_STARTED = "started"
_WAITED = "waited"

_ONLY_CREATED = frozenset((_CREATED,))
_ONLY_STARTED = frozenset((_STARTED,))
_ONLY_WAITED = frozenset((_WAITED,))


@dataclass(frozen=True)
class ReqState:
    """Abstract protocol state of one tracked request variable."""

    kind: str                      # "send" | "recv"
    partitions: Optional[int]      # declared count, when statically known
    lifecycle: frozenset           # subset of {created, started, waited}
    must: IndexSet                 # readied on every path this epoch
    may: IndexSet                  # readied on some path this epoch
    unknown_ready: bool            # an unrepresentable pready happened
    escaped: bool                  # left the function's hands
    name: str                      # source variable name
    line: int                      # creation site (for SIM114 anchoring)
    col: int


def _join_req(a: ReqState, b: ReqState) -> ReqState:
    if a == b:
        return a
    return ReqState(
        kind=a.kind if a.kind == b.kind else "unknown",
        partitions=a.partitions if a.partitions == b.partitions else None,
        lifecycle=a.lifecycle | b.lifecycle,
        must=a.must.intersect(b.must),
        may=a.may.union(b.may),
        unknown_ready=a.unknown_ready or b.unknown_ready,
        escaped=a.escaped or b.escaped,
        name=a.name, line=a.line, col=a.col)


class Env:
    """Abstract state: tracked requests plus integer locals."""

    __slots__ = ("reqs", "ints")

    def __init__(self, reqs: Optional[Dict[str, ReqState]] = None,
                 ints: Optional[Dict[str, Interval]] = None):
        self.reqs = reqs or {}
        self.ints = ints or {}

    def copy(self) -> "Env":
        return Env(dict(self.reqs), dict(self.ints))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Env) and self.reqs == other.reqs
                and self.ints == other.ints)

    def __hash__(self):  # pragma: no cover - envs are not hashed
        raise TypeError("Env is unhashable")


def _join_env(a: Env, b: Env) -> Env:
    reqs: Dict[str, ReqState] = {}
    for key in sorted(set(a.reqs) | set(b.reqs)):
        if key in a.reqs and key in b.reqs:
            reqs[key] = _join_req(a.reqs[key], b.reqs[key])
        else:
            reqs[key] = a.reqs.get(key) or b.reqs[key]
    ints = {}
    for key in sorted(set(a.ints) & set(b.ints)):
        ints[key] = a.ints[key].join(b.ints[key])
    return Env(reqs, ints)


def _widen_env(old: Env, new: Env) -> Env:
    joined = _join_env(old, new)
    for key, iv in list(joined.ints.items()):
        if key in old.ints:
            joined.ints[key] = old.ints[key].widen(iv)
    return joined


def _unwrap_value(node: ast.AST) -> ast.AST:
    """Peel ``yield from`` / ``await`` / ``yield`` wrappers off a value."""
    while isinstance(node, (ast.YieldFrom, ast.Await)):
        node = node.value
    if isinstance(node, ast.Yield) and node.value is not None:
        node = node.value
    return node


def _creation_call(node: ast.AST) -> Optional[Tuple[ast.Call, str]]:
    """Recognize a request-creating call; returns ``(call, kind)``."""
    node = _unwrap_value(node)
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _INIT_METHODS:
        return node, _INIT_METHODS[func.attr]
    if isinstance(func, ast.Name) and func.id in _INIT_CONSTRUCTORS:
        return node, _INIT_CONSTRUCTORS[func.id]
    return None


def _call_arg(call: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


def _receiver_key(node: ast.AST) -> Optional[str]:
    """Stable key for a method receiver: a name or a dotted-name chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _uses_name(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


def _eval_expr(node: ast.AST, env: "Env") -> Interval:
    """Interval abstraction of an integer expression (TOP when unknown)."""
    node = _unwrap_value(node)
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return Interval.const(node.value)
    if isinstance(node, ast.Name):
        return env.ints.get(node.id, Interval.top())
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _eval_expr(node.operand, env).neg()
    if isinstance(node, ast.BinOp):
        left = _eval_expr(node.left, env)
        right = _eval_expr(node.right, env)
        if isinstance(node.op, ast.Add):
            return left.add(right)
        if isinstance(node.op, ast.Sub):
            return left.sub(right)
        if isinstance(node.op, ast.Mult) and right.is_singleton:
            return left.mul_const(right.lo)
        if isinstance(node.op, ast.Mult) and left.is_singleton:
            return right.mul_const(left.lo)
        if left.is_singleton and right.is_singleton:
            try:
                if isinstance(node.op, ast.LShift):
                    return Interval.const(left.lo << right.lo)
                if isinstance(node.op, ast.RShift):
                    return Interval.const(left.lo >> right.lo)
                if isinstance(node.op, ast.FloorDiv) and right.lo != 0:
                    return Interval.const(left.lo // right.lo)
                if isinstance(node.op, ast.Mod) and right.lo != 0:
                    return Interval.const(left.lo % right.lo)
            except (OverflowError, ValueError):  # pragma: no cover
                return Interval.top()
    return Interval.top()


@dataclass
class _LoopCtx:
    """Summary-loop context: the bound variable and its definite range."""

    var: str
    bounds: Optional[Tuple[int, int]]   # inclusive [lo, hi], when constant
    repeat: bool                        # replay pass of a may-repeat loop


class _FunctionAnalysis:
    """CFG + fixpoint + reporting pass for one function."""

    def __init__(self, func: ast.AST, filename: str, enabled: Set[str],
                 module_ints: Dict[str, Interval], out: List[Finding]):
        self.func = func
        self.filename = filename
        self.enabled = enabled
        self.out = out
        self.module_ints = module_ints
        self.closure_names = self._closure_names(func)

    # -- driver -----------------------------------------------------------
    def run(self) -> None:
        cfg = build_cfg(self.func, atomic_for=self._summarizable)
        entry = Env(ints=self._entry_ints())
        try:
            instate = fixpoint(cfg, entry, self._transfer_block, _join_env,
                               widen=_widen_env)
        except RecursionError:  # pragma: no cover - defensive
            return
        # Reporting pass: replay each reachable block once against its
        # stable in-state, with findings enabled.
        for bid in sorted(instate):
            if bid in (cfg.exit, cfg.raise_exit):
                continue
            self._transfer_block(cfg.blocks[bid], instate[bid], report=True)
        self._check_leaks(instate.get(cfg.exit))

    def _entry_ints(self) -> Dict[str, Interval]:
        ints = dict(self.module_ints)
        args = self.func.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        for name in params:
            ints.pop(name, None)
        return ints

    @staticmethod
    def _closure_names(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if node is func or not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)):
                continue
            names.update(n.id for n in ast.walk(node)
                         if isinstance(n, ast.Name))
        return names

    # -- findings ---------------------------------------------------------
    def _emit(self, report: bool, rule: str, node, message: str,
              severity: str = "error") -> None:
        if not report or rule not in self.enabled:
            return
        if isinstance(node, ReqState):
            line, col = node.line, node.col
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        self.out.append(Finding(
            rule=rule, message=message, file=self.filename,
            line=line, col=col,
            severity=severity, fix_hint=FLOW_RULES[rule][2]))

    # -- summarizable loops -----------------------------------------------
    def _summarizable(self, node: ast.For) -> bool:
        """A ``for NAME in range(...)`` loop with a straight-line body."""
        if not isinstance(node.target, ast.Name) or node.orelse:
            return False
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range" and not it.keywords
                and 1 <= len(it.args) <= 3):
            return False
        simple = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign,
                  ast.Pass)
        return all(isinstance(stmt, simple) for stmt in node.body)

    def _range_bounds(self, it: ast.Call, env: Env
                      ) -> Tuple[Interval, Optional[Tuple[int, int]]]:
        """Loop-variable interval and, when constant, the exact bounds.

        Returns ``(hull, exact)`` where ``exact`` is the inclusive
        ``(lo, hi)`` pair for a definite unit-stride range, else None.
        """
        args = it.args
        if len(args) == 1:
            lo_iv, hi_iv = Interval.const(0), self._eval(args[0], env)
            step_one = True
        else:
            lo_iv = self._eval(args[0], env)
            hi_iv = self._eval(args[1], env)
            step = self._eval(args[2], env) if len(args) > 2 else \
                Interval.const(1)
            step_one = step.is_singleton and step.lo == 1
        if not step_one:
            return Interval.top(), None
        hull_lo = lo_iv.lo
        hull_hi = hi_iv.hi - 1 if hi_iv.is_bounded else hi_iv.hi
        if hull_lo > hull_hi:
            return Interval.top(), None
        hull = Interval(hull_lo, hull_hi)
        if lo_iv.is_singleton and hi_iv.is_singleton:
            return hull, (lo_iv.lo, hi_iv.lo - 1)
        return hull, None

    # -- transfer functions ----------------------------------------------
    def _transfer_block(self, block, env: Env, report: bool = False) -> Env:
        env = env.copy()
        for atom in block.atoms:
            env = self._transfer_stmt(atom, env, report, None)
        return env

    def _transfer_stmt(self, stmt, env: Env, report: bool,
                       loop: Optional[_LoopCtx]) -> Env:
        if isinstance(stmt, LoopBind):
            return self._bind_loop_var(stmt.node, env)
        if isinstance(stmt, ast.For):
            return self._summary_for(stmt, env, report)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return self._assign(stmt, env, report, loop)
        if isinstance(stmt, ast.AugAssign):
            return self._augassign(stmt, env, report, loop)
        # Everything else: interpret calls + escapes within the statement.
        return self._effects(stmt, env, report, loop)

    def _bind_loop_var(self, node: ast.For, env: Env) -> Env:
        env = env.copy()
        target = node.target
        names = [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]
        for name in names:
            env.ints.pop(name, None)
            env.reqs.pop(name, None)
        if isinstance(target, ast.Name):
            it = node.iter
            if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range" and not it.keywords
                    and 1 <= len(it.args) <= 3):
                hull, _ = self._range_bounds(it, env)
                if hull.is_bounded or hull.lo != float("-inf"):
                    env.ints[target.id] = hull
        return env

    def _summary_for(self, node: ast.For, env: Env, report: bool) -> Env:
        """Interpret an atomic ``for NAME in range(...)`` loop.

        The body is replayed with the loop variable bound to the whole
        iteration range; calls indexed by the loop variable contribute
        their full range in one step.  When the loop may run twice or
        more with no ``start``/``wait`` inside (no epoch reset), the body
        is replayed a second time so cross-iteration doubles of
        *constant* indices surface; loop-variable-dependent indices are
        skipped on the replay, since those name a fresh partition each
        iteration.
        """
        var = node.target.id
        hull, exact = self._range_bounds(node.iter, env)
        env = env.copy()
        env.reqs.pop(var, None)
        if hull.is_bounded or hull.lo != float("-inf"):
            env.ints[var] = hull
        else:
            env.ints.pop(var, None)
        iterations = (exact[1] - exact[0] + 1) if exact else None
        if iterations is not None and iterations <= 0:
            return env
        resets_epoch = any(
            isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
            and n.func.attr in ("start", "wait")
            for stmt in node.body for n in ast.walk(stmt))
        ctx = _LoopCtx(var=var, bounds=exact, repeat=False)
        for stmt in node.body:
            env = self._transfer_stmt(stmt, env, report, ctx)
        may_repeat = iterations is None or iterations >= 2
        if may_repeat and not resets_epoch:
            ctx = _LoopCtx(var=var, bounds=exact, repeat=True)
            for stmt in node.body:
                env = self._transfer_stmt(stmt, env, report, ctx)
        return env

    # -- assignments ------------------------------------------------------
    def _assign(self, stmt, env: Env, report: bool,
                loop: Optional[_LoopCtx]) -> Env:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else \
            [stmt.target]
        value = stmt.value
        if value is None:  # bare annotation
            return env
        created = _creation_call(value)
        if created is not None and len(targets) == 1:
            call, kind = created
            key = _receiver_key(targets[0])
            if key is not None:
                env = self._effects(stmt, env, report, loop,
                                    skip_creation=call)
                env = env.copy()
                env.ints.pop(key, None)
                escaped = (not isinstance(targets[0], ast.Name)
                           or key in self.closure_names)
                env.reqs[key] = ReqState(
                    kind=kind, partitions=self._partition_count(call, env),
                    lifecycle=_ONLY_CREATED, must=IndexSet.EMPTY,
                    may=IndexSet.EMPTY, unknown_ready=False,
                    escaped=escaped, name=key,
                    line=stmt.lineno, col=stmt.col_offset)
                return env
        env = self._effects(stmt, env, report, loop)
        env = env.copy()
        # Kill rebindings, then track integer values for simple targets.
        names = [n.id for t in targets for n in ast.walk(t)
                 if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)]
        for name in names:
            env.ints.pop(name, None)
            env.reqs.pop(name, None)
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            iv = self._eval(value, env)
            if iv.is_bounded:
                env.ints[targets[0].id] = iv
        return env

    def _augassign(self, stmt: ast.AugAssign, env: Env, report: bool,
                   loop: Optional[_LoopCtx]) -> Env:
        env = self._effects(stmt, env, report, loop)
        env = env.copy()
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            current = env.ints.get(name)
            if current is not None:
                combined = ast.BinOp(left=ast.Name(id=name, ctx=ast.Load()),
                                     op=stmt.op, right=stmt.value)
                iv = self._eval(combined, env)
                env.ints.pop(name, None)
                if iv.is_bounded:
                    env.ints[name] = iv
            else:
                env.ints.pop(name, None)
        return env

    def _partition_count(self, call: ast.Call, env: Env) -> Optional[int]:
        if isinstance(call.func, ast.Attribute):
            arg = _call_arg(call, 4, "partitions")
        else:
            arg = _call_arg(call, 5, "partitions")
        if arg is None:
            return None
        iv = self._eval(arg, env)
        if iv.is_singleton and iv.lo >= 1:
            return iv.lo
        return None

    # -- expression evaluation -------------------------------------------
    @staticmethod
    def _eval(node: ast.AST, env: Env) -> Interval:
        return _eval_expr(node, env)

    # -- call effects -----------------------------------------------------
    def _effects(self, stmt, env: Env, report: bool,
                 loop: Optional[_LoopCtx],
                 skip_creation: Optional[ast.Call] = None) -> Env:
        calls = [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]
        calls.sort(key=lambda c: (getattr(c, "lineno", 0),
                                  getattr(c, "col_offset", 0)))
        protected: Set[int] = set()
        for call in calls:
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr in _LIFECYCLE_METHODS:
                key = _receiver_key(call.func.value)
                if key is not None and key in env.reqs:
                    for n in ast.walk(call.func.value):
                        protected.add(id(n))
        for call in calls:
            if call is skip_creation:
                continue
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            if attr not in _LIFECYCLE_METHODS:
                continue
            key = _receiver_key(call.func.value)
            if key is None or key not in env.reqs:
                continue
            env = self._lifecycle(call, attr, key, env, report, loop)
        return self._mark_escapes(stmt, env, protected)

    def _mark_escapes(self, stmt, env: Env, protected: Set[int]) -> Env:
        escaped = [
            node.id for node in ast.walk(stmt)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in env.reqs
            and not env.reqs[node.id].escaped
            and id(node) not in protected
        ]
        if not escaped:
            return env
        env = env.copy()
        for name in escaped:
            env.reqs[name] = replace(env.reqs[name], escaped=True)
        return env

    # -- the protocol state machine ---------------------------------------
    def _lifecycle(self, call: ast.Call, attr: str, key: str, env: Env,
                   report: bool, loop: Optional[_LoopCtx]) -> Env:
        env = env.copy()
        req = env.reqs[key]
        if attr == "start":
            if req.lifecycle == _ONLY_STARTED:
                self._emit(report, "SIM113", call,
                           f"start() on {req.name} while its epoch is "
                           f"still active (wait() first)")
            env.reqs[key] = replace(
                req, lifecycle=_ONLY_STARTED, must=IndexSet.EMPTY,
                may=IndexSet.EMPTY, unknown_ready=False)
            return env
        if attr == "wait":
            if req.lifecycle == _ONLY_CREATED:
                self._emit(report, "SIM113", call,
                           f"wait() on {req.name} before start()")
            elif (req.kind == "send" and _STARTED in req.lifecycle
                    and not req.unknown_ready):
                diverged = req.may.subtract(req.must)
                if not diverged.is_empty:
                    self._emit(
                        report, "SIM111", call,
                        f"partition(s) {diverged.describe()} of {req.name} "
                        f"readied on some but not all paths reaching this "
                        f"wait() — the epoch cannot complete on the "
                        f"uncovered paths", severity="warning")
            env.reqs[key] = replace(
                req, lifecycle=_ONLY_WAITED, must=IndexSet.EMPTY,
                may=IndexSet.EMPTY, unknown_ready=False)
            return env
        if attr in ("pready", "pready_range", "pready_list"):
            return self._pready(call, attr, key, env, report, loop)
        if attr == "parrived":
            if req.lifecycle == _ONLY_CREATED:
                self._emit(report, "SIM113", call,
                           f"parrived() on {req.name} before the first "
                           f"start()")
            self._check_bounds(call, self._index_arg(call, 1, env), req,
                               report, loop, "parrived")
            return env
        if attr in ("note_buffer_write", "note_buffer_read",
                    "arrived_event"):
            iv = self._index_arg(call, 0, env)
            self._check_bounds(call, iv, req, report, loop, attr)
            if attr == "note_buffer_write" and req.kind == "send" \
                    and iv is not None:
                skip = (loop is not None and loop.repeat
                        and _uses_name(call, loop.var))
                if not skip and iv.is_bounded:
                    if req.must.overlaps(iv.lo, iv.hi):
                        self._emit(
                            report, "SIM115", call,
                            f"partition {iv} of {req.name} written after "
                            f"its pready in this epoch — the transfer may "
                            f"already be reading the buffer")
                    elif req.may.overlaps(iv.lo, iv.hi):
                        self._emit(
                            report, "SIM115", call,
                            f"partition {iv} of {req.name} may be written "
                            f"after its pready on some path in this epoch",
                            severity="warning")
            return env
        return env  # "test" and other neutral probes

    def _index_arg(self, call: ast.Call, pos: int, env: Env
                   ) -> Optional[Interval]:
        if len(call.args) <= pos:
            return None
        return self._eval(call.args[pos], env)

    def _check_bounds(self, call, iv: Optional[Interval], req: ReqState,
                      report: bool, loop: Optional[_LoopCtx],
                      what: str) -> None:
        if iv is None or req.partitions is None or not iv.is_bounded:
            return
        if loop is not None and loop.repeat and _uses_name(call, loop.var):
            return
        valid = Interval(0, req.partitions - 1)
        if valid.disjoint(iv):
            self._emit(report, "SIM110", call,
                       f"partition index {iv} in {what}() is outside "
                       f"[0, {req.partitions}) for {req.name}")
        elif not valid.contains(iv):
            self._emit(report, "SIM110", call,
                       f"partition index {iv} in {what}() may fall outside "
                       f"[0, {req.partitions}) for {req.name}",
                       severity="warning")

    def _pready(self, call: ast.Call, attr: str, key: str, env: Env,
                report: bool, loop: Optional[_LoopCtx]) -> Env:
        req = env.reqs[key]
        if req.lifecycle == _ONLY_CREATED:
            self._emit(report, "SIM113", call,
                       f"{attr}() on {req.name} before start()")
        elif req.lifecycle == _ONLY_WAITED:
            self._emit(report, "SIM113", call,
                       f"{attr}() on {req.name} after wait() — start a "
                       f"new epoch first")
        # Resolve the readied index range(s).
        add: Optional[Tuple[int, int]] = None
        unknown = False
        loop_indexed = (loop is not None
                        and any(_uses_name(a, loop.var)
                                for a in call.args[1:]))
        if attr == "pready":
            iv = self._index_arg(call, 1, env)
            self._check_bounds(call, iv, req, report, loop, attr)
            if iv is None:
                unknown = True
            elif iv.is_singleton:
                add = (iv.lo, iv.lo)
            elif loop_indexed and loop.bounds is not None and \
                    iv.is_bounded:
                add = (iv.lo, iv.hi)
            elif iv.is_bounded:
                unknown = True
            else:
                unknown = True
        elif attr == "pready_range":
            lo_iv = self._index_arg(call, 1, env)
            hi_iv = self._index_arg(call, 2, env)
            if lo_iv is not None and hi_iv is not None and \
                    lo_iv.is_singleton and hi_iv.is_singleton:
                add = (lo_iv.lo, hi_iv.lo)   # MPI_Pready_range is inclusive
                self._check_bounds(call, Interval(min(add), max(add)),
                                   req, report, loop, attr)
            else:
                unknown = True
        else:  # pready_list
            elems = None
            if len(call.args) > 1 and isinstance(call.args[1],
                                                 (ast.List, ast.Tuple)):
                elems = [self._eval(e, env) for e in call.args[1].elts]
            if elems is not None and all(e.is_singleton for e in elems):
                env2 = env
                for e in elems:
                    env2 = self._add_ready(call, (e.lo, e.lo), key, env2,
                                           report, loop, False)
                return env2
            unknown = True
        if add is not None:
            return self._add_ready(call, add, key, env, report, loop,
                                   loop_indexed)
        if unknown:
            env = env.copy()
            env.reqs[key] = replace(env.reqs[key], unknown_ready=True)
        return env

    def _add_ready(self, call, add: Tuple[int, int], key: str, env: Env,
                   report: bool, loop: Optional[_LoopCtx],
                   loop_indexed: bool) -> Env:
        env = env.copy()
        req = env.reqs[key]
        lo, hi = add
        if hi < lo:
            return env
        # Double-ready detection.  A loop-variable-driven add names a
        # fresh partition each iteration, so it is only checked against
        # the state that preceded the loop (pass 1), never against its
        # own replay (pass 2).
        check = not (loop is not None and loop.repeat and loop_indexed)
        if check:
            if req.must.overlaps(lo, hi):
                already = req.must.intersect(IndexSet.of_range(lo, hi))
                self._emit(report, "SIM112", call,
                           f"partition(s) {already.describe()} of "
                           f"{req.name} already readied in this epoch "
                           f"(double pready)")
            elif req.may.overlaps(lo, hi):
                already = req.may.intersect(IndexSet.of_range(lo, hi))
                self._emit(report, "SIM112", call,
                           f"partition(s) {already.describe()} of "
                           f"{req.name} may already be readied on some "
                           f"path in this epoch (double pready)",
                           severity="warning")
        env.reqs[key] = replace(req, must=req.must.add_range(lo, hi),
                                may=req.may.add_range(lo, hi))
        return env

    # -- exit sweep -------------------------------------------------------
    def _check_leaks(self, exit_env: Optional[Env]) -> None:
        if exit_env is None:
            return
        for req in sorted(exit_env.reqs.values(),
                          key=lambda r: (r.line, r.col, r.name)):
            if req.escaped or _STARTED not in req.lifecycle:
                continue
            if req.lifecycle == _ONLY_STARTED:
                self._emit(True, "SIM114", req,
                           f"partitioned request {req.name} is started "
                           f"but never waited before the function returns")
            else:
                self._emit(True, "SIM114", req,
                           f"partitioned request {req.name} is not waited "
                           f"on some exit path", severity="warning")


def _module_constants(tree: ast.Module) -> Dict[str, Interval]:
    """Intervals for simple top-level ``NAME = <int expr>`` constants."""
    consts: Dict[str, Interval] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            iv = _eval_expr(stmt.value, Env(ints=consts))
            if iv.is_singleton:
                consts[stmt.targets[0].id] = iv
            else:
                consts.pop(stmt.targets[0].id, None)
    return consts


def analyze_module(tree: ast.AST, filename: str,
                   enabled: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the flow-sensitive pass over every function in a module.

    ``enabled`` restricts the reported rule ids (default: all of
    SIM110–SIM115); an empty selection short-circuits to no work.
    """
    active = FLOW_RULE_IDS if enabled is None else \
        (frozenset(enabled) & FLOW_RULE_IDS)
    if not active:
        return []
    module_ints = _module_constants(tree) if isinstance(tree, ast.Module) \
        else {}
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionAnalysis(node, filename, active, module_ints,
                              findings).run()
    return findings
