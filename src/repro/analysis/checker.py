"""The dynamic half of :mod:`repro.analysis`: a validating runtime layer.

:func:`enable_checking` subscribes a :class:`Checker` — an ordinary
:class:`repro.obs.Sink` — to the cluster's instrumentation bus for every
``part.*`` event.  From then on the partitioned lifecycle events the
runtime already emits (see :mod:`repro.obs.kinds`) drive the checker's
shadow of the MPI 4.0 partitioned state machine, every simulated resource
reports its holders and waiters (via ``Simulator.monitor``), and — at
:meth:`Checker.finalize` — the checker sweeps for leaked requests,
unmatched ``psend_init``/``precv_init`` halves, and wait-for cycles over
resources.

Verdicts are :class:`~repro.analysis.findings.Finding` objects, the same
currency the static linter uses; they also surface in the per-rank
:func:`repro.mpi.diagnostics.cluster_report`.

The checker *observes*: it never raises into the simulated program and
never schedules events, so enabling it cannot change a schedule.  The
runtime's own exceptions (e.g. ``RequestStateError`` on a double
``pready``) still fire — lifecycle events are emitted at call entry,
before validation, so the checker records the finding just before.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import ConfigurationError, ReproError
from ..obs import EventRecord, Sink
from .deadlock import ResourceMonitor
from .findings import Finding, format_findings
from .races import PartitionTracker

__all__ = ["Checker", "CheckReport", "enable_checking", "run_checked",
           "check_file", "load_program"]


class Checker(Sink):
    """Dynamic-correctness observer for one cluster run.

    An ordinary :class:`repro.obs.Sink` subscribed to ``part.*`` by
    :func:`enable_checking`; :meth:`accept` folds each lifecycle event
    into the shadow state machine.  Findings accumulate in
    :attr:`findings` in event order.  Individual rules can be switched
    off with ``disabled`` — used by the fixture tests to prove each rule
    is load-bearing.
    """

    #: The subscription this sink needs.
    PATTERNS = ("part.*",)

    def __init__(self, cluster, disabled: Iterable[str] = ()):
        self.cluster = cluster
        self.disabled = frozenset(disabled)
        self.findings: List[Finding] = []
        self.tracker = PartitionTracker()
        self.monitor = ResourceMonitor()
        self._finalized = False

    # -- sink protocol ---------------------------------------------------
    def accept(self, record: EventRecord) -> None:
        """Fold one ``part.*`` lifecycle event into the shadow state."""
        name = record.kind.name
        req = record.get("req")
        if name == "part.init":
            self.on_init(req, record.get("side") == "send")
        elif name == "part.start":
            self.on_start(req)
        elif name == "part.wait":
            self.on_wait(req)
        elif name == "part.pready":
            self.on_pready(req, record.get("partition"))
        elif name == "part.parrived":
            self.on_parrived(req, record.get("partition"))
        elif name == "part.arrived":
            self.on_partition_arrived(req, record.get("partition"),
                                      record.time)
        elif name == "part.buffer_write":
            self.on_buffer_write(req, record.get("partition"))
        elif name == "part.buffer_read":
            self.on_buffer_read(req, record.get("partition"))
        # part.send_start / part.send_injected / epoch-complete markers
        # carry no request state the shadow machine needs.

    # -- reporting -------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True while no finding has been recorded."""
        return not self.findings

    def findings_for_rank(self, rank: int) -> List[Finding]:
        """Findings attributed to one rank (finalize-wide ones excluded)."""
        return [f for f in self.findings if f.rank == rank]

    def _report(self, rule: str, message: str,
                rank: Optional[int] = None) -> None:
        if rule in self.disabled:
            return
        self.findings.append(Finding(
            rule=rule, message=message, rank=rank,
            time=self.cluster.sim.now))

    def _report_all(self, violations, rank: Optional[int]) -> None:
        for rule, message in violations:
            self._report(rule, f"rank {rank}: {message}" if rank is not None
                         else message, rank=rank)

    # -- hooks from the partitioned runtime ------------------------------
    def on_init(self, req, is_send: bool) -> None:
        """``psend_init``/``precv_init`` registered a new request."""
        self.tracker.ensure(req, "send" if is_send else "recv",
                            req.partitions)

    def on_start(self, req) -> None:
        """A request armed a new epoch."""
        state = self._state(req)
        self._report_all(self.tracker.on_start(state), req.proc.rank)

    def on_wait(self, req) -> None:
        """A request entered ``wait()``."""
        state = self._state(req)
        self._report_all(self.tracker.on_wait(state), req.proc.rank)

    def on_pready(self, req, partition: int) -> None:
        """Send side marked one partition ready."""
        state = self._state(req)
        self._report_all(
            self.tracker.on_pready(state, partition, self.cluster.sim.now),
            req.proc.rank)

    def on_parrived(self, req, partition: int) -> None:
        """Receive side polled one partition."""
        state = self._state(req)
        self._report_all(self.tracker.on_parrived(state, partition),
                         req.proc.rank)

    def on_partition_arrived(self, req, partition: int, now: float) -> None:
        """The runtime delivered one partition into the receive buffer."""
        state = self._state(req)
        self._report_all(self.tracker.on_arrived(state, partition, now),
                         req.proc.rank)

    def on_buffer_write(self, req, partition: int) -> None:
        """Application annotated a send-buffer write."""
        state = self._state(req)
        self._report_all(
            self.tracker.on_write(state, partition, self.cluster.sim.now),
            req.proc.rank)

    def on_buffer_read(self, req, partition: int) -> None:
        """Application annotated a receive-buffer read."""
        state = self._state(req)
        self._report_all(
            self.tracker.on_read(state, partition, self.cluster.sim.now),
            req.proc.rank)

    def _state(self, req):
        side = "send" if hasattr(req, "_ready") else "recv"
        return self.tracker.ensure(req, side, req.partitions)

    # -- finalize --------------------------------------------------------
    def finalize(self, aborted: bool = False) -> List[Finding]:
        """End-of-run sweep: leaks, unmatched inits, resource deadlocks.

        Idempotent — callable once per run; returns the full findings
        list for convenience.  With ``aborted=True`` (the program died of
        a runtime error mid-flight) the leak and unmatched-init sweeps are
        skipped — an aborted program never had the chance to wait or
        match, so those findings would be noise on top of the real one —
        while the deadlock cycle check still runs.
        """
        if self._finalized:
            return self.findings
        self._finalized = True
        if aborted:
            cycle = self.monitor.find_deadlock()
            if cycle is not None:
                self._report("RES001",
                             f"deadlock cycle over simulated resources: "
                             f"{cycle}")
            return self.findings
        for req, state in self.tracker.leaks():
            self._report(
                "FIN001",
                f"rank {req.proc.rank}: {state.describe()} (peer rank "
                f"{req.peer_rank}, tag {req.tag}) started epoch "
                f"{state.epoch} but never completed a wait() — leaked "
                f"request", rank=req.proc.rank)
        for key, entry in self.cluster._part_pending.items():
            src, dst, tag, comm = key
            for side, verb, peer_verb in (("send", "psend_init",
                                           "precv_init"),
                                          ("recv", "precv_init",
                                           "psend_init")):
                for req in entry[side]:
                    self._report(
                        "FIN002",
                        f"rank {req.proc.rank}: {verb} "
                        f"({src}->{dst}, tag {tag}, comm {comm}) was never "
                        f"matched by a peer {peer_verb}",
                        rank=req.proc.rank)
        cycle = self.monitor.find_deadlock()
        if cycle is not None:
            self._report("RES001",
                         f"deadlock cycle over simulated resources: "
                         f"{cycle}")
        return self.findings


@dataclass
class CheckReport:
    """Outcome of one checked run (see :func:`run_checked`).

    ``ok`` means the program completed without findings *and* without a
    runtime error; ``results`` carries the per-rank return values when the
    program finished.
    """

    findings: List[Finding] = field(default_factory=list)
    error: Optional[str] = None
    results: Optional[List[Any]] = None
    nranks: int = 0

    @property
    def ok(self) -> bool:
        """True when the run is clean: no findings, no runtime error."""
        return not self.findings and self.error is None

    def format(self) -> str:
        """Render a human-readable verdict block."""
        lines: List[str] = []
        if self.findings:
            lines.append(format_findings(self.findings))
        if self.error:
            lines.append(f"runtime error: {self.error}")
        per_rank = {r: 0 for r in range(self.nranks)}
        for finding in self.findings:
            if finding.rank is not None and finding.rank in per_rank:
                per_rank[finding.rank] += 1
        for rank in range(self.nranks):
            n = per_rank[rank]
            verdict = "ok" if n == 0 else f"{n} finding(s)"
            lines.append(f"rank {rank}: {verdict}")
        lines.append("verdict: " + ("CLEAN" if self.ok else "VIOLATIONS"))
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable form used by ``--format=json``."""
        return json.dumps({
            "ok": self.ok,
            "error": self.error,
            "count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
        }, indent=2)


def enable_checking(cluster, disabled: Iterable[str] = ()) -> Checker:
    """Attach a dynamic :class:`Checker` to ``cluster``; returns it.

    Subscribes the checker to the cluster's instrumentation bus for
    ``part.*`` events and installs its resource monitor on the simulator.
    Call before :meth:`~repro.mpi.cluster.Cluster.run`; call
    :meth:`Checker.finalize` after the run (or use :func:`run_checked`,
    which does both).
    """
    checker = Checker(cluster, disabled=disabled)
    cluster.checker = checker
    cluster.obs.attach(checker, Checker.PATTERNS)
    cluster.sim.monitor = checker.monitor
    return checker


def run_checked(program: Callable, nranks: int = 2,
                disabled: Iterable[str] = (),
                **cluster_kwargs) -> CheckReport:
    """Run ``program(ctx)`` on a fresh checked cluster; returns the report.

    Library errors raised by the simulated program (state-machine
    violations, deadlocks, …) are captured into ``report.error`` rather
    than propagated — the checker has usually recorded the corresponding
    finding already, and a validation tool should outlive the program it
    judges.
    """
    from ..errors import DeadlockError
    from ..mpi import Cluster  # local import: analysis must stay leaf-like

    cluster = Cluster(nranks=nranks, **cluster_kwargs)
    checker = enable_checking(cluster, disabled=disabled)
    error: Optional[str] = None
    aborted = False
    results: Optional[List[Any]] = None
    try:
        results = cluster.run(program)
    except DeadlockError as exc:
        # A hang is exactly what the wait-for-graph post-mortem is for.
        error = f"{type(exc).__name__}: {exc}"
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
        aborted = True
    checker.finalize(aborted=aborted)
    return CheckReport(findings=list(checker.findings), error=error,
                       results=results, nranks=nranks)


def load_program(path) -> Dict[str, Any]:
    """Load a checkable program module from ``path``.

    The file must define ``program(ctx)``; it may define ``NRANKS``
    (default 2) and ``CLUSTER_KWARGS`` (default empty) to shape the
    cluster.  Returns ``{"program": ..., "nranks": ..., "kwargs": ...}``.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such program file: {path}")
    spec = importlib.util.spec_from_file_location(
        f"repro_checked_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ConfigurationError(f"cannot import program file: {path}")
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/pickling inside the program can resolve it.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    program = getattr(module, "program", None)
    if not callable(program):
        raise ConfigurationError(
            f"{path} does not define a program(ctx) callable")
    return {
        "program": program,
        "nranks": int(getattr(module, "NRANKS", 2)),
        "kwargs": dict(getattr(module, "CLUSTER_KWARGS", {})),
    }


def check_file(path, disabled: Iterable[str] = ()) -> CheckReport:
    """Load ``path`` (see :func:`load_program`) and run it checked."""
    loaded = load_program(path)
    return run_checked(loaded["program"], nranks=loaded["nranks"],
                       disabled=disabled, **loaded["kwargs"])
