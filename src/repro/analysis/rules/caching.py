"""Static rule for fault-blind cache keys (``SIM108``).

The parallel engine's result cache is content-addressed: a cell is
reloaded whenever its *fingerprint* matches, so a fingerprint that
ignores any simulated-behaviour input silently serves stale results.
The canonical repro fingerprint (:func:`repro.core.parallel.
config_fingerprint`) walks every dataclass field and is immune by
construction; the hazard is hand-rolled keys — experiment scripts that
hash a tuple of "the fields that matter" and forget the fault plan, so
a clean cached result is returned for a faulty configuration.

This rule flags fingerprint/cache-key helpers that enumerate config
fields by hand (``cfg.message_bytes``, ``cfg.seed``, ...) on one object
without ever reading its ``faults`` field.  Field-enumeration is the
trigger: a function that canonicalizes generically (no per-field
attribute reads) is not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from ..findings import Finding
from . import Rule, register

__all__ = ["FaultBlindCacheKeyRule"]

#: Function-name fragments that mark a cache-key builder.
_KEY_NAMES = ("fingerprint", "cache_key", "cachekey")

#: Config fields whose hand-enumeration marks the function as keying on
#: a benchmark config.  Two or more reads off the same base name count.
_CONFIG_FIELDS = frozenset({
    "message_bytes", "partitions", "partitions_per_thread",
    "compute_seconds", "noise", "cache", "impl", "iterations",
    "warmup", "seed",
})


@register
class FaultBlindCacheKeyRule(Rule):
    """SIM108: a hand-rolled cache key that ignores the fault plan."""

    id = "SIM108"
    name = "cache-key-ignores-faults"
    summary = ("fingerprint/cache-key helper enumerates benchmark-config "
               "fields but never reads .faults, so cached clean results "
               "can be served for faulty configurations")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag fault-blind field-enumerating key builders."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            lowered = node.name.lower()
            if not any(frag in lowered for frag in _KEY_NAMES):
                continue
            yield from self._check_function(node, filename)

    def _check_function(self, func: ast.AST,
                        filename: str) -> Iterable[Finding]:
        # Group attribute reads by their base name: cfg.seed counts
        # toward base "cfg"; chained bases (self.config.seed) toward
        # "self.config".
        enumerated: Dict[str, Set[str]] = {}
        reads_faults: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Attribute):
                continue
            try:
                base = ast.unparse(node.value)
            except Exception:  # pragma: no cover - exotic bases
                continue
            if node.attr == "faults":
                reads_faults.add(base)
            elif node.attr in _CONFIG_FIELDS:
                enumerated.setdefault(base, set()).add(node.attr)
        for base, fields in sorted(enumerated.items()):
            if len(fields) < 2 or base in reads_faults:
                continue
            listed = ", ".join(sorted(fields))
            yield self.finding(
                filename, func,
                f"{func.name}() keys the cache on {base}'s fields "
                f"({listed}) but never reads {base}.faults; a fault "
                f"plan must invalidate the cache key — include "
                f"{base}.faults or fingerprint every field generically")
