"""Static rules for determinism hazards (``SIM101``–``SIM104``).

The whole suite runs in *virtual* time from seeded RNG streams; two runs
with the same master seed must be bit-identical (see
:mod:`repro.sim.core`).  These rules catch the ways real-world entropy
leaks into a simulation: wall-clock reads, the process-global ``random``
state, hash-order-dependent iteration, and mutable default arguments that
smuggle state between calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set, Tuple

from ..findings import Finding
from . import Rule, register

__all__ = ["import_aliases", "WallClockRule", "GlobalRandomRule",
           "SetIterationRule", "MutableDefaultRule"]

#: Functions whose results depend on real time (module, attribute).
_WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "sleep"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``numpy.random`` module-level functions that mutate global RNG state.
_NP_GLOBAL_RANDOM = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "shuffle", "permutation", "choice", "normal", "uniform",
    "exponential",
}


def import_aliases(tree: ast.AST) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """Map local names to the modules / module members they alias.

    Returns ``(modules, members)``: ``modules`` maps an alias to the
    imported module path (``{"np": "numpy"}``), ``members`` maps an alias
    to its ``(module, original_name)`` pair
    (``{"now": ("datetime.datetime", "now")}``).
    """
    modules: Dict[str, str] = {}
    members: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                members[alias.asname or alias.name] = (node.module, alias.name)
    return modules, members


def _call_target(node: ast.Call) -> Tuple[str, str]:
    """The ``(receiver, attribute)`` of a call, or ``("", name)`` for bare
    name calls; receivers are dotted source text (``"np.random"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value), func.attr
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "", ""
    if isinstance(func, ast.Name):
        return "", func.id
    return "", ""


@register
class WallClockRule(Rule):
    """SIM101: reading the wall clock (or sleeping on it) inside sim code."""

    id = "SIM101"
    name = "wall-clock"
    summary = ("wall-clock time source (time.time/perf_counter/sleep, "
               "datetime.now) used instead of sim.now / sim.timeout")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag calls into ``time``/``datetime`` wall-clock entry points."""
        modules, members = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            recv, attr = _call_target(node)
            if recv:
                head = recv.split(".", 1)[0]
                target = modules.get(head, recv if "." in recv else "")
                base = target.split(".", 1)[0] if target else ""
                if base in _WALL_CLOCK_ATTRS and \
                        attr in _WALL_CLOCK_ATTRS[base]:
                    yield self.finding(
                        filename, node,
                        f"call to {recv}.{attr}() reads the wall clock; "
                        f"use the simulator's virtual time "
                        f"(sim.now / sim.timeout)")
                # datetime.datetime.now() via the class attribute
                elif recv.endswith("datetime") and \
                        attr in _WALL_CLOCK_ATTRS["datetime"]:
                    yield self.finding(
                        filename, node,
                        f"call to {recv}.{attr}() reads the wall clock; "
                        f"use the simulator's virtual time")
            elif attr in members:
                module, orig = members[attr]
                base = module.split(".", 1)[0]
                if base in _WALL_CLOCK_ATTRS and \
                        orig in _WALL_CLOCK_ATTRS[base]:
                    yield self.finding(
                        filename, node,
                        f"call to {orig}() (from {module}) reads the wall "
                        f"clock; use the simulator's virtual time")


@register
class GlobalRandomRule(Rule):
    """SIM102: process-global RNG state instead of ``repro.sim.rng`` streams."""

    id = "SIM102"
    name = "global-random"
    summary = ("stdlib random module or numpy.random global functions "
               "used instead of repro.sim.rng.RandomStreams")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag ``random`` imports and ``numpy.random`` global-state calls."""
        modules, _members = import_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            filename, node,
                            "stdlib random uses hidden process-global "
                            "state; draw from a named "
                            "repro.sim.rng.RandomStreams stream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        filename, node,
                        "stdlib random uses hidden process-global state; "
                        "draw from a named repro.sim.rng.RandomStreams "
                        "stream instead")
            elif isinstance(node, ast.Call):
                recv, attr = _call_target(node)
                if not recv or attr not in _NP_GLOBAL_RANDOM:
                    continue
                parts = recv.split(".")
                base = modules.get(parts[0], parts[0])
                if base == "numpy" and parts[1:] == ["random"]:
                    yield self.finding(
                        filename, node,
                        f"numpy.random.{attr}() mutates numpy's global RNG; "
                        f"use a seeded Generator from "
                        f"repro.sim.rng.RandomStreams")


@register
class SetIterationRule(Rule):
    """SIM103: iterating a set, whose order depends on hash randomization."""

    id = "SIM103"
    name = "set-iteration"
    summary = ("iteration over a set/frozenset — ordering depends on hash "
               "seeds, so anything it feeds (event scheduling!) becomes "
               "nondeterministic; iterate a sorted() or a list instead")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag ``for``-loops and comprehensions whose iterable is a set."""
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                candidates = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                candidates = [gen.iter for gen in node.generators]
            else:
                continue
            for it in candidates:
                if self._is_set_expr(it):
                    yield self.finding(
                        filename, it,
                        "iterating a set: element order depends on hash "
                        "randomization and will differ between runs; "
                        "iterate sorted(...) or keep a list")

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        """True for set displays, ``set(...)``/``frozenset(...)`` calls and
        set-operator expressions over them."""
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return (SetIterationRule._is_set_expr(node.left)
                    or SetIterationRule._is_set_expr(node.right))
        return False


@register
class MutableDefaultRule(Rule):
    """SIM104: mutable default arguments (shared state across sim runs)."""

    id = "SIM104"
    name = "mutable-default"
    summary = ("mutable default argument — the object is shared across "
               "calls, so one simulation's state leaks into the next")

    _MUTABLE_CALLS: Set[str] = {"list", "dict", "set"}

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag ``def f(x=[])``-style defaults on any function."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        filename, default,
                        f"mutable default argument in {node.name}(): the "
                        f"value is created once and shared by every call; "
                        f"default to None and construct inside the body")

    @classmethod
    def _is_mutable(cls, node: ast.AST) -> bool:
        """True for list/dict/set displays and bare constructor calls."""
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in cls._MUTABLE_CALLS
                and not node.args and not node.keywords)
