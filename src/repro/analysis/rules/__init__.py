"""Rule registry for the ``simlint`` static pass and the dynamic checker.

Static rules are classes with a :meth:`Rule.check` method running over a
parsed AST; they self-register on import via :func:`register`.  Dynamic
rules are enforced by :mod:`repro.analysis.checker` at simulation time, so
here they are represented only by :class:`RuleInfo` descriptors — one
registry drives the documentation table, the CLI and per-rule disabling
for both passes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Type

from ..findings import Finding

__all__ = [
    "Rule",
    "RuleInfo",
    "register",
    "static_rules",
    "all_rule_infos",
    "known_rule_ids",
    "DYNAMIC_RULES",
]


@dataclass(frozen=True)
class RuleInfo:
    """Descriptor of one rule: identifier, pass, and one-line summary."""

    id: str
    name: str
    category: str  # "static" | "dynamic"
    summary: str


class Rule:
    """Base class for static ``simlint`` rules.

    Subclasses set :attr:`id`, :attr:`name` and :attr:`summary`, and
    implement :meth:`check` yielding :class:`~repro.analysis.findings.
    Finding` objects.  Registration happens via the :func:`register`
    decorator, which instantiates the class once.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def info(self) -> RuleInfo:
        """This rule's registry descriptor."""
        return RuleInfo(self.id, self.name, "static", self.summary)

    def finding(self, filename: str, node: ast.AST, message: str,
                severity: str = "error") -> Finding:
        """Build a finding anchored at ``node``'s source location."""
        return Finding(rule=self.id, message=message, file=filename,
                       line=getattr(node, "lineno", 0), severity=severity)


_STATIC: Dict[str, Rule] = {}

#: Descriptors of the rules enforced at simulation time by
#: :class:`repro.analysis.checker.Checker`.
DYNAMIC_RULES = (
    RuleInfo("PART001", "double-pready", "dynamic",
             "MPI_Pready called twice on the same partition in one epoch"),
    RuleInfo("PART002", "partition-out-of-range", "dynamic",
             "partition index outside [0, partitions) in pready/parrived/"
             "buffer annotations"),
    RuleInfo("PART003", "operation-outside-epoch", "dynamic",
             "pready/wait/start used against the request state machine "
             "(e.g. wait before start, pready on an un-started request)"),
    RuleInfo("PART004", "write-after-pready", "dynamic",
             "send buffer written after the partition was marked ready "
             "(happens-before race with the transfer)"),
    RuleInfo("PART005", "read-before-parrived", "dynamic",
             "receive buffer read before the partition arrived "
             "(happens-before race with the transfer)"),
    RuleInfo("RES001", "resource-deadlock", "dynamic",
             "cycle in the wait-for graph over simulated resources"),
    RuleInfo("FIN001", "request-leak", "dynamic",
             "partitioned request with an epoch started but never waited "
             "at finalize"),
    RuleInfo("FIN002", "unmatched-partitioned-init", "dynamic",
             "psend_init/precv_init never matched by its peer half at "
             "finalize"),
)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a static rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"static rule {cls.__name__} lacks an id")
    if rule.id in _STATIC:
        raise ValueError(f"duplicate static rule id {rule.id}")
    _STATIC[rule.id] = rule
    return cls


def static_rules() -> List[Rule]:
    """All registered static rules, in id order."""
    return [_STATIC[k] for k in sorted(_STATIC)]


def all_rule_infos() -> List[RuleInfo]:
    """Descriptors for every rule, static first, then dynamic."""
    return [r.info() for r in static_rules()] + list(DYNAMIC_RULES)


def known_rule_ids() -> List[str]:
    """Every valid rule id (used to validate ``--disable`` arguments)."""
    return [info.id for info in all_rule_infos()]


# Importing the rule modules populates the registry.
from . import caching as _caching  # noqa: E402  (registration import)
from . import determinism as _determinism  # noqa: E402  (registration import)
from . import instrumentation as _instrumentation  # noqa: E402
from . import protocol as _protocol  # noqa: E402  (registration import)
from . import simapi as _simapi  # noqa: E402  (registration import)

_ = (_caching, _determinism, _instrumentation, _protocol, _simapi)
