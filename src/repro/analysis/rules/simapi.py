"""Static rules for simulation-API misuse (``SIM105``–``SIM106``).

The kernel only accepts :class:`~repro.sim.core.Event` objects at a
``yield`` (anything else raises ``SimulationError`` at run time), and a
process that blocks on a second resource while holding a simulated mutex
is one half of a classic deadlock.  Both mistakes are visible in the AST
long before a simulation is run.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from ..findings import Finding
from . import Rule, register

__all__ = ["BareYieldRule", "BlockWhileLockedRule"]

#: Method names whose call results are events a sim process may yield.
_EVENT_FACTORIES = {"timeout", "sleep", "event", "any_of", "all_of", "get",
                    "request", "wait", "join"}


def _function_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BareYieldRule(Rule):
    """SIM105: a sim-process generator yields a bare (non-event) value."""

    id = "SIM105"
    name = "bare-yield"
    summary = ("generator mixes event yields with bare constant yields — "
               "the kernel only accepts Event objects, so a literal yield "
               "raises SimulationError at run time")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag constant yields in functions that also yield sim events."""
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            constant_yields: List[ast.Yield] = []
            has_event_yield = False
            for node in _function_body_nodes(func):
                if isinstance(node, ast.YieldFrom):
                    has_event_yield = True
                elif isinstance(node, ast.Yield):
                    value = node.value
                    if isinstance(value, ast.Constant) and \
                            value.value is not None:
                        constant_yields.append(node)
                    elif isinstance(value, ast.Call) and \
                            isinstance(value.func, ast.Attribute) and \
                            value.func.attr in _EVENT_FACTORIES:
                        has_event_yield = True
            if has_event_yield:
                for node in constant_yields:
                    yield self.finding(
                        filename, node,
                        f"{func.name}() yields a bare constant alongside "
                        f"simulation events; the kernel only resumes on "
                        f"Event objects (wrap delays in sim.timeout())")


@register
class BlockWhileLockedRule(Rule):
    """SIM106: blocking on a second resource while holding a sim mutex."""

    id = "SIM106"
    name = "block-while-locked"
    summary = ("process blocks on another resource between mutex acquire() "
               "and release() — holds the lock across a wait, inviting "
               "deadlock and serializing the simulation")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag acquire/request yields that occur while a lock is held."""
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ops = sorted(self._lock_ops(func),
                         key=lambda op: (op[2].lineno, op[2].col_offset))
            held: List[str] = []
            for kind, receiver, node in ops:
                if kind == "acquire":
                    if held and receiver not in held:
                        yield self._blocked(filename, node, func.name,
                                            receiver, held[-1])
                    held.append(receiver)
                elif kind == "release":
                    if receiver in held:
                        held.remove(receiver)
                elif kind == "block" and held:
                    yield self._blocked(filename, node, func.name,
                                        receiver, held[-1])

    def _blocked(self, filename: str, node: ast.AST, func_name: str,
                 receiver: str, lock: str) -> Finding:
        """Finding for one blocking operation performed under ``lock``."""
        return self.finding(
            filename, node,
            f"{func_name}() blocks on {receiver} while still holding "
            f"{lock}; release the mutex before waiting on another "
            f"resource")

    @staticmethod
    def _lock_ops(func: ast.AST) -> Iterator[Tuple[str, str, ast.AST]]:
        """Yield ``(kind, receiver, node)`` lock/block operations in a
        function body: ``acquire`` for ``yield from x.acquire()``,
        ``release`` for ``x.release()``, ``block`` for yielded
        ``.request()`` events."""
        for node in _function_body_nodes(func):
            if isinstance(node, ast.YieldFrom) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Attribute):
                attr = node.value.func.attr
                recv = ast.unparse(node.value.func.value)
                if attr == "acquire":
                    yield "acquire", recv, node
            elif isinstance(node, ast.Yield) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Attribute):
                attr = node.value.func.attr
                recv = ast.unparse(node.value.func.value)
                if attr == "request":
                    yield "block", recv, node
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "release":
                yield "release", ast.unparse(node.func.value), node
