"""Static rule for bypassing the instrumentation layer (``SIM107``).

Every recorder in the suite is built on :mod:`repro.obs`; events are
emitted once, typed, and consumed by sinks.  This rule catches code that
resurrects the pre-``obs`` idioms: the deleted ``TraceRecorder`` API
(``something.trace.emit(...)``) and ad-hoc per-element timestamp-list
construction (``stamps[p] = ctx.sim.now`` or ``stamps.append(sim.now)``)
— the runner's old post-hoc surgery that the streaming
:class:`~repro.obs.TimelineBuilder` replaced.  Constant-keyed phase
markers (``record["t_start"] = ctx.sim.now``) are not flagged; building
a per-partition timestamp table by variable index is.

Files inside ``repro/obs`` itself are exempt — that package *is* the
instrumentation layer.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import Rule, register

__all__ = ["AdhocInstrumentationRule"]


def _is_now_read(node: ast.AST) -> bool:
    """True for attribute reads ending in ``.now`` (``ctx.sim.now``)."""
    return isinstance(node, ast.Attribute) and node.attr == "now"


def _in_obs_layer(filename: str) -> bool:
    normalized = filename.replace("\\", "/")
    return "repro/obs/" in normalized or normalized.endswith("repro/obs")


@register
class AdhocInstrumentationRule(Rule):
    """SIM107: event recording that bypasses ``repro.obs``."""

    id = "SIM107"
    name = "adhoc-instrumentation"
    summary = ("records events outside repro.obs — TraceRecorder-style "
               ".trace.emit() calls or per-element timestamp-list "
               "construction from .now instead of emitting a typed event")

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flag legacy-recorder calls and ad-hoc timestamp tables."""
        if _in_obs_layer(filename):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, filename)
            elif isinstance(node, ast.Name) and node.id == "TraceRecorder":
                yield self.finding(
                    filename, node,
                    "TraceRecorder was replaced by repro.obs.EventBus; "
                    "emit a registered event kind instead")
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(node, filename)

    def _check_call(self, node: ast.Call,
                    filename: str) -> Iterable[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # something.trace.emit(...) — the deleted TraceRecorder path.
        if func.attr == "emit" and isinstance(func.value, ast.Attribute) \
                and func.value.attr == "trace":
            yield self.finding(
                filename, node,
                f"{ast.unparse(func)}() uses the removed free-form trace "
                f"recorder; emit a typed repro.obs event kind on the "
                f"cluster's bus instead")
        # stamps.append(ctx.sim.now) — growing a timestamp list by hand.
        elif func.attr == "append" and node.args \
                and _is_now_read(node.args[0]):
            yield self.finding(
                filename, node,
                f"appending {ast.unparse(node.args[0])} builds a "
                f"timestamp list outside repro.obs; emit an event and "
                f"let a sink collect the times")

    def _check_assign(self, node: ast.Assign,
                      filename: str) -> Iterable[Finding]:
        # stamps[p] = ctx.sim.now — a per-element timestamp table keyed
        # by a runtime index.  Constant keys (record["t_start"]) are
        # phase markers, not tables, and stay legal.
        if not _is_now_read(node.value):
            return
        for target in node.targets:
            if isinstance(target, ast.Subscript) and \
                    not isinstance(target.slice, ast.Constant):
                yield self.finding(
                    filename, node,
                    f"{ast.unparse(target)} = "
                    f"{ast.unparse(node.value)} assembles a timestamp "
                    f"table by index outside repro.obs; emit an event "
                    f"per element and use a TimelineBuilder-style sink")
