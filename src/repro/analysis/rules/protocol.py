"""Registry descriptors for the flow-sensitive protocol rules.

The actual analysis lives in :mod:`repro.analysis.protocol` (``simcheck``)
— a CFG + abstract-interpretation pass that cannot be expressed as a
per-node pattern rule.  The classes here exist so SIM110–SIM115 (and the
suppression-hygiene rule SIM109) participate in the shared registry:
``--disable``, the documentation table, per-rule suppression comments and
SARIF rule metadata all resolve through :func:`..rules.all_rule_infos`.

Their :meth:`check` methods are intentionally empty; the drivers in
:mod:`repro.analysis.lint` invoke the flow pass once per module and
filter its findings by the enabled-rule set instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..protocol import FLOW_RULES
from . import Rule, register

__all__ = ["FlowRule", "UnknownSuppressionRule"]


class FlowRule(Rule):
    """A rule enforced by the flow-sensitive pass, not by ``check()``."""

    def check(self, tree: ast.AST, filename: str) -> Iterable[Finding]:
        """Flow rules report through ``protocol.analyze_module``."""
        return ()


@register
class UnknownSuppressionRule(FlowRule):
    """SIM109: a suppression comment names a rule id that does not exist.

    Enforced by the suppression-comment parser in
    :mod:`repro.analysis.lint` (it needs the raw source, not the AST).
    """

    id = "SIM109"
    name = "unknown-suppression"
    summary = ("a '# simlint: disable=...' comment names an unknown rule "
               "id — the typo'd suppression silently guards nothing")


def _make_flow_rule(rule_id: str, rule_name: str,
                    rule_summary: str) -> None:
    cls = type(f"Flow_{rule_id}", (FlowRule,),
               {"id": rule_id, "name": rule_name, "summary": rule_summary,
                "__doc__": f"{rule_id}: {rule_name} (flow-sensitive)."})
    register(cls)


for _id in sorted(FLOW_RULES):
    _name, _summary, _hint = FLOW_RULES[_id]
    _make_flow_rule(_id, _name, _summary)
del _id, _name, _summary, _hint
