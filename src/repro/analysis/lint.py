"""``simlint`` — the static half of :mod:`repro.analysis`.

An AST-based linter for programs written against the simulated substrate
(:mod:`repro.sim`, :mod:`repro.mpi`, :mod:`repro.partitioned`).  Two
passes run over every module:

* the **pattern** pass — per-node rules for determinism hazards and
  simulation-API misuse (SIM101–SIM108);
* the **flow-sensitive** pass (``simcheck``,
  :mod:`repro.analysis.protocol`) — CFG + abstract interpretation of the
  partitioned-request lifecycle (SIM110–SIM115).

Usage::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro", "benchmarks", "examples"])

or from a shell: ``python -m repro lint src/repro benchmarks examples``.

Suppression comments:

* ``# simlint: skip`` silences every finding on its line;
* ``# simlint: disable=SIM103`` (or ``disable=SIM103,SIM110``) silences
  only the named rules on its line.  Naming a rule id that does not
  exist is itself reported (SIM109) — a typo'd suppression guards
  nothing and should not pass silently.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, \
    Tuple

from ..errors import ConfigurationError
from .findings import Finding, sort_findings
from .protocol import FLOW_RULE_IDS, analyze_module
from .rules import known_rule_ids, static_rules

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: Magic comment suppressing every finding on its line.
SKIP_MARKER = "simlint: skip"

#: Rule id reported for files the parser rejects.
PARSE_ERROR_RULE = "SIM100"

#: Rule id for suppression comments naming unknown rule ids.
UNKNOWN_SUPPRESSION_RULE = "SIM109"

#: ``# simlint: disable=SIM103,SIM110`` (ids validated separately).
_DISABLE_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


def _parse_suppressions(source: str, filename: str
                        ) -> Tuple[Set[int], Dict[int, Set[str]],
                                   List[Finding]]:
    """Parse suppression comments out of ``source``.

    Returns ``(blanket_lines, per_rule_lines, warnings)`` where
    ``blanket_lines`` holds 1-based line numbers carrying
    ``# simlint: skip``, ``per_rule_lines`` maps line numbers to the rule
    ids disabled there, and ``warnings`` are SIM109 findings for unknown
    ids named in ``disable=`` comments.
    """
    blanket: Set[int] = set()
    per_rule: Dict[int, Set[str]] = {}
    warnings: List[Finding] = []
    known = set(known_rule_ids())
    for lineno, line in enumerate(source.splitlines(), start=1):
        if SKIP_MARKER in line:
            blanket.add(lineno)
        match = _DISABLE_RE.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",")
               if part.strip()}
        for rule_id in sorted(ids - known):
            warnings.append(Finding(
                rule=UNKNOWN_SUPPRESSION_RULE,
                message=f"suppression comment names unknown rule id "
                        f"{rule_id!r} (known ids: SIM1xx/PART/RES/FIN; "
                        f"see docs/analysis.md)",
                file=filename, line=lineno,
                col=max(line.find("#"), 0), severity="warning"))
        per_rule.setdefault(lineno, set()).update(ids & known)
    return blanket, per_rule, warnings


def _selected_rules(disabled: Optional[Iterable[str]]):
    banned = frozenset(disabled or ())
    return [rule for rule in static_rules() if rule.id not in banned]


def lint_source(source: str, filename: str = "<string>",
                disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns findings sorted by location.

    Both passes run (pattern rules, then the flow-sensitive protocol
    pass); ``disabled`` is an iterable of rule ids to leave out of
    either.  Findings are deduplicated and sorted by
    ``(path, line, col, rule, message)``.  A file that does not parse
    produces a single ``SIM100`` finding instead of raising.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_ERROR_RULE,
                        message=f"file does not parse: {exc.msg}",
                        file=filename, line=exc.lineno or 0)]
    banned = frozenset(disabled or ())
    blanket, per_rule, warnings = _parse_suppressions(source, filename)
    findings: List[Finding] = []
    if UNKNOWN_SUPPRESSION_RULE not in banned:
        findings.extend(warnings)
    for rule in _selected_rules(banned):
        findings.extend(rule.check(tree, filename))
    flow_enabled = FLOW_RULE_IDS - banned
    if flow_enabled:
        findings.extend(analyze_module(tree, filename,
                                       enabled=flow_enabled))
    kept = [
        f for f in findings
        if f.line not in blanket and f.rule not in per_rule.get(f.line, ())
    ]
    return sort_findings(kept)


def lint_file(path, disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, filename=str(path), disabled=disabled)


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` paths.

    Directories are walked recursively; non-Python files given explicitly
    are ignored, so globs can be passed straight through from a shell.
    A path that does not exist raises
    :class:`~repro.errors.ConfigurationError` — a typo'd path silently
    linting nothing would defeat a CI gate.
    """
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(paths: Sequence,
               disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint every Python file under ``paths`` (files or directory trees).

    This is the library entry point behind ``python -m repro lint``; an
    empty return value means the tree is clean.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, disabled=disabled))
    return findings
