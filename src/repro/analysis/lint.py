"""``simlint`` — the static half of :mod:`repro.analysis`.

An AST-based linter for programs written against the simulated substrate
(:mod:`repro.sim`, :mod:`repro.mpi`, :mod:`repro.partitioned`).  It scans
Python sources for determinism hazards and simulation-API misuse — the
mistakes that silently corrupt *reproducibility*, which benchmarking
methodology work (Hunold & Carpen-Amarie) identifies as the thing a
benchmark suite must protect first.

Usage::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro", "benchmarks", "examples"])

or from a shell: ``python -m repro lint src/repro benchmarks examples``.

A finding on a given line can be suppressed by appending the comment
``# simlint: skip`` to that line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from ..errors import ConfigurationError
from .findings import Finding
from .rules import static_rules

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: Magic comment suppressing every finding on its line.
SKIP_MARKER = "simlint: skip"

#: Rule id reported for files the parser rejects.
PARSE_ERROR_RULE = "SIM100"


def _suppressed_lines(source: str) -> Set[int]:
    """Line numbers (1-based) carrying the ``# simlint: skip`` marker."""
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if SKIP_MARKER in line
    }


def _selected_rules(disabled: Optional[Iterable[str]]):
    banned = frozenset(disabled or ())
    return [rule for rule in static_rules() if rule.id not in banned]


def lint_source(source: str, filename: str = "<string>",
                disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns findings sorted by location.

    ``disabled`` is an iterable of rule ids to leave out.  A file that does
    not parse produces a single ``SIM100`` finding instead of raising.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_ERROR_RULE,
                        message=f"file does not parse: {exc.msg}",
                        file=filename, line=exc.lineno or 0)]
    skip = _suppressed_lines(source)
    findings: List[Finding] = []
    for rule in _selected_rules(disabled):
        for finding in rule.check(tree, filename):
            if finding.line not in skip:
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def lint_file(path, disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, filename=str(path), disabled=disabled)


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` paths.

    Directories are walked recursively; non-Python files given explicitly
    are ignored, so globs can be passed straight through from a shell.
    A path that does not exist raises
    :class:`~repro.errors.ConfigurationError` — a typo'd path silently
    linting nothing would defeat a CI gate.
    """
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(paths: Sequence,
               disabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint every Python file under ``paths`` (files or directory trees).

    This is the library entry point behind ``python -m repro lint``; an
    empty return value means the tree is clean.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, disabled=disabled))
    return findings
