"""Per-function control-flow graphs for the flow-sensitive pass.

``simcheck`` (:mod:`repro.analysis.protocol`) needs to know *which
statements can follow which* to prove lifecycle facts like "this request
is waited on every exit path" — information a pattern-matching walk over
the AST cannot provide.  :func:`build_cfg` lowers one function body into
basic blocks of straight-line statements connected by edges for
``if``/``while``/``for``/``try``, ``break``/``continue``, ``return`` and
``raise``.

The graph is deliberately modest — intraprocedural, no exception-edge
precision beyond "any statement in a ``try`` body may jump to any
handler" — because the abstract interpreter on top of it is conservative
anyway: unknown control flow degrades to "no finding", never to a false
alarm.

Two lowering choices matter to the client:

* A ``for`` statement the client recognizes as *summarizable* (simple
  straight-line body, e.g. the early-bird ``for i in range(lo, hi):
  pready(i)`` idiom) is kept **atomic**: the whole ``ast.For`` node lands
  in the current block and the client applies a loop-summary transfer
  function instead of a fixpoint over an expanded body.
* An expanded loop head carries a :class:`LoopBind` pseudo-statement so
  the interpreter can bind the iteration variable to its abstract range
  before entering the body.

Exceptional exits (``raise``) flow to a distinct :attr:`CFG.raise_exit`
block so that "leak on some exit path" checks can reason about normal
completion only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Block", "CFG", "LoopBind", "build_cfg"]


@dataclass
class LoopBind:
    """Pseudo-statement at an expanded loop head binding the loop target.

    ``node`` is the original ``ast.For``; the interpreter binds
    ``node.target`` to the abstract value of one iteration of
    ``node.iter`` (a ``range`` interval when the bounds are known).
    """

    node: ast.For


@dataclass
class Block:
    """One basic block: straight-line atoms plus successor edges."""

    bid: int
    atoms: List[object] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    #: Loop-head blocks are where the fixpoint driver applies widening.
    is_loop_head: bool = False

    def edge_to(self, bid: int) -> None:
        if bid not in self.succs:
            self.succs.append(bid)


@dataclass
class CFG:
    """A function's control-flow graph.

    ``exit`` collects every normal completion (fall-off-the-end and
    ``return``); ``raise_exit`` collects explicit ``raise`` statements.
    """

    func: ast.AST
    blocks: Dict[int, Block]
    entry: int
    exit: int
    raise_exit: int

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for bid, block in self.blocks.items():
            for succ in block.succs:
                preds[succ].append(bid)
        return preds


class _Builder:
    """Recursive statement-list lowering with break/continue context."""

    def __init__(self, atomic_for: Callable[[ast.For], bool]):
        self.blocks: Dict[int, Block] = {}
        self.atomic_for = atomic_for
        self.exit = self.new_block().bid
        self.raise_exit = self.new_block().bid
        #: (break-target, continue-target) stack for enclosing loops.
        self.loops: List[Tuple[int, int]] = []

    def new_block(self, loop_head: bool = False) -> Block:
        block = Block(bid=len(self.blocks), is_loop_head=loop_head)
        self.blocks[block.bid] = block
        return block

    def lower(self, body: List[ast.stmt], current: Block) -> Block:
        """Lower ``body`` starting in ``current``; return the open block."""
        for stmt in body:
            current = self.stmt(stmt, current)
        return current

    def stmt(self, stmt: ast.stmt, current: Block) -> Block:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, ast.For):
            if self.atomic_for(stmt):
                current.atoms.append(stmt)
                return current
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                current.atoms.append(ast.Expr(value=item.context_expr))
            return self.lower(stmt.body, current)
        if isinstance(stmt, ast.Return):
            current.atoms.append(stmt)
            current.edge_to(self.exit)
            return self.new_block()  # unreachable continuation
        if isinstance(stmt, ast.Raise):
            current.atoms.append(stmt)
            current.edge_to(self.raise_exit)
            return self.new_block()
        if isinstance(stmt, ast.Break):
            if self.loops:
                current.edge_to(self.loops[-1][0])
            return self.new_block()
        if isinstance(stmt, ast.Continue):
            if self.loops:
                current.edge_to(self.loops[-1][1])
            return self.new_block()
        if isinstance(stmt, getattr(ast, "Match", ())):
            return self._match(stmt, current)
        # Straight-line statement (assignments, expressions, nested defs,
        # asserts, imports, ...): one atom in the current block.
        current.atoms.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block:
        after = self.new_block()
        then = self.new_block()
        current.edge_to(then.bid)
        self.lower(stmt.body, then).edge_to(after.bid)
        if stmt.orelse:
            other = self.new_block()
            current.edge_to(other.bid)
            self.lower(stmt.orelse, other).edge_to(after.bid)
        else:
            current.edge_to(after.bid)
        return after

    def _while(self, stmt: ast.While, current: Block) -> Block:
        head = self.new_block(loop_head=True)
        after = self.new_block()
        current.edge_to(head.bid)
        head.atoms.append(ast.Expr(value=stmt.test))
        is_infinite = (isinstance(stmt.test, ast.Constant)
                       and bool(stmt.test.value))
        if not is_infinite:
            head.edge_to(after.bid)
        body = self.new_block()
        head.edge_to(body.bid)
        self.loops.append((after.bid, head.bid))
        self.lower(stmt.body, body).edge_to(head.bid)
        self.loops.pop()
        if stmt.orelse:
            # while/else: the else suite runs on normal loop exit; fold it
            # between head and after (break paths skip it — approximated
            # by the direct head→after edge above).
            other = self.new_block()
            head.edge_to(other.bid)
            self.lower(stmt.orelse, other).edge_to(after.bid)
        return after

    def _for(self, stmt: ast.For, current: Block) -> Block:
        head = self.new_block(loop_head=True)
        after = self.new_block()
        current.atoms.append(ast.Expr(value=stmt.iter))
        current.edge_to(head.bid)
        head.atoms.append(LoopBind(stmt))
        head.edge_to(after.bid)  # zero-iteration path
        body = self.new_block()
        head.edge_to(body.bid)
        self.loops.append((after.bid, head.bid))
        self.lower(stmt.body, body).edge_to(head.bid)
        self.loops.pop()
        if stmt.orelse:
            other = self.new_block()
            head.edge_to(other.bid)
            self.lower(stmt.orelse, other).edge_to(after.bid)
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Block:
        after = self.new_block()
        body_entry = self.new_block()
        current.edge_to(body_entry.bid)
        before = set(self.blocks)
        body_end = self.lower(stmt.body, body_entry)
        # Blocks created while lowering the body (plus the entry) may
        # transfer to any handler: conservative exception edges.
        created = [bid for bid in self.blocks
                   if bid not in before] + [body_entry.bid]
        handler_ends: List[Block] = []
        for handler in stmt.handlers:
            hentry = self.new_block()
            for bid in created:
                self.blocks[bid].edge_to(hentry.bid)
            handler_ends.append(self.lower(handler.body, hentry))
        if stmt.orelse:
            oentry = self.new_block()
            body_end.edge_to(oentry.bid)
            body_end = self.lower(stmt.orelse, oentry)
        ends = [body_end] + handler_ends
        if stmt.finalbody:
            fentry = self.new_block()
            for end in ends:
                end.edge_to(fentry.bid)
            self.lower(stmt.finalbody, fentry).edge_to(after.bid)
        else:
            for end in ends:
                end.edge_to(after.bid)
        return after

    def _match(self, stmt, current: Block) -> Block:
        after = self.new_block()
        current.atoms.append(ast.Expr(value=stmt.subject))
        exhaustive = False
        for case in stmt.cases:
            centry = self.new_block()
            current.edge_to(centry.bid)
            self.lower(case.body, centry).edge_to(after.bid)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True
        if not exhaustive:
            current.edge_to(after.bid)
        return after


def build_cfg(func: ast.AST,
              atomic_for: Optional[Callable[[ast.For], bool]] = None) -> CFG:
    """Lower one ``FunctionDef``/``AsyncFunctionDef`` body into a CFG.

    ``atomic_for`` decides which ``for`` loops stay un-expanded (see the
    module docstring); the default expands every loop.
    """
    builder = _Builder(atomic_for or (lambda node: False))
    entry = builder.new_block()
    end = builder.lower(list(func.body), entry)
    end.edge_to(builder.exit)
    return CFG(func=func, blocks=builder.blocks, entry=entry.bid,
               exit=builder.exit, raise_exit=builder.raise_exit)
