"""Deadlock detection over simulated resources.

:class:`ResourceMonitor` plugs into ``Simulator.monitor`` (see
:mod:`repro.sim.resources`) and keeps, for every
:class:`~repro.sim.resources.Resource` and :class:`~repro.sim.resources.
Mutex`, which simulated processes currently hold units and which are
queued waiting.  From that bookkeeping :meth:`ResourceMonitor.
wait_for_graph` builds the classic wait-for graph — an edge per *waiter →
holder* pair — and :class:`WaitForGraph.find_cycle` runs a depth-first
search for a cycle, which is exactly a resource deadlock.

The monitor is passive: it never creates events or touches the queue, so
an instrumented simulation produces a bit-identical schedule.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ResourceMonitor", "WaitForGraph"]


class WaitForGraph:
    """A directed graph of ``waiter → holder`` process dependencies.

    Nodes are arbitrary hashable objects (simulated processes); each edge
    is labelled with the resource that induces it, so a detected cycle can
    be reported as ``procA -(lockB)-> procB -(lockA)-> procA``.
    """

    def __init__(self) -> None:
        self._edges: Dict[Any, List[Tuple[Any, Any]]] = {}

    def add_edge(self, waiter: Any, holder: Any, resource: Any) -> None:
        """Record that ``waiter`` is blocked on ``resource`` held by
        ``holder``."""
        self._edges.setdefault(waiter, []).append((holder, resource))
        self._edges.setdefault(holder, [])

    @property
    def edge_count(self) -> int:
        """Total number of wait-for edges."""
        return sum(len(v) for v in self._edges.values())

    def find_cycle(self) -> Optional[List[Tuple[Any, Any]]]:
        """Return one deadlock cycle, or None if the graph is acyclic.

        The cycle is a list of ``(process, resource)`` pairs: each process
        waits on its resource, which is held by the next process in the
        list (wrapping around).
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Any, int] = {node: WHITE for node in self._edges}
        for root in self._edges:
            if color[root] != WHITE:
                continue
            # Iterative DFS keeping the gray path for cycle extraction.
            path: List[Tuple[Any, Any]] = []
            stack: List[Tuple[Any, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                node, idx = stack[-1]
                edges = self._edges[node]
                if idx >= len(edges):
                    color[node] = BLACK
                    stack.pop()
                    if path:
                        path.pop()
                    continue
                stack[-1] = (node, idx + 1)
                holder, resource = edges[idx]
                if color.get(holder, WHITE) == GRAY:
                    # Found a back edge: slice the gray path into a cycle.
                    path.append((node, resource))
                    start = next(i for i, (p, _r) in enumerate(path)
                                 if p is holder)
                    return path[start:]
                if color.get(holder, WHITE) == WHITE:
                    color[holder] = GRAY
                    path.append((node, resource))
                    stack.append((holder, 0))
        return None

    @staticmethod
    def describe_cycle(cycle: List[Tuple[Any, Any]]) -> str:
        """Render a cycle as ``a -(r1)-> b -(r2)-> a``."""
        def name(obj: Any) -> str:
            label = getattr(obj, "name", "") or repr(obj)
            return str(label)

        parts = [f"{name(proc)} -({name(res)})->" for proc, res in cycle]
        return " ".join(parts + [name(cycle[0][0])])


class ResourceMonitor:
    """Passive observer of resource holders and waiters in one simulator.

    Installed as ``sim.monitor`` by :func:`repro.analysis.enable_checking`;
    receives the three hooks below from
    :class:`~repro.sim.resources.Resource`.
    """

    def __init__(self) -> None:
        #: resource -> processes currently holding a unit (grant order).
        self.holders: Dict[Any, List[Any]] = {}
        #: pending request event -> (resource, requesting process).
        self.waiting: Dict[Any, Tuple[Any, Any]] = {}

    # -- hooks called from repro.sim.resources ---------------------------
    def on_resource_request(self, resource: Any, event: Any,
                            granted: bool) -> None:
        """A process requested a unit (``granted`` = no queueing needed)."""
        proc = resource.sim.active_process
        if proc is None:
            return  # request issued from a callback; nothing to attribute
        if granted:
            self.holders.setdefault(resource, []).append(proc)
        else:
            self.waiting[event] = (resource, proc)

    def on_resource_release(self, resource: Any, handed: Any) -> None:
        """A unit was released; ``handed`` is the waiter event granted."""
        procs = self.holders.get(resource, [])
        active = resource.sim.active_process
        if active in procs:
            procs.remove(active)
        elif procs:
            procs.pop(0)
        if handed is not None:
            entry = self.waiting.pop(handed, None)
            if entry is not None:
                self.holders.setdefault(resource, []).append(entry[1])

    def on_resource_cancel(self, resource: Any, event: Any) -> None:
        """A queued request was withdrawn before being granted."""
        self.waiting.pop(event, None)

    # -- analysis --------------------------------------------------------
    def wait_for_graph(self) -> WaitForGraph:
        """Build the wait-for graph from the current holder/waiter state.

        Only waiters whose process is still alive contribute edges, so a
        drained-queue post-mortem sees exactly the stuck processes.
        """
        graph = WaitForGraph()
        for _event, (resource, waiter) in self.waiting.items():
            if not getattr(waiter, "is_alive", True):
                continue
            for holder in self.holders.get(resource, []):
                graph.add_edge(waiter, holder, resource)
        return graph

    def find_deadlock(self) -> Optional[str]:
        """Description of one wait-for cycle, or None if none exists."""
        cycle = self.wait_for_graph().find_cycle()
        if cycle is None:
            return None
        return WaitForGraph.describe_cycle(cycle)
