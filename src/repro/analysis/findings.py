"""The common currency of the analyzer: :class:`Finding`.

Both halves of :mod:`repro.analysis` report problems the same way — the
static linter attaches a file and line, the dynamic checker attaches a
rank and a simulated time — so the CLI, the diagnostics report and the
tests can treat every verdict uniformly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

__all__ = ["Finding", "format_findings"]


@dataclass(frozen=True)
class Finding:
    """One rule violation, from either the static or the dynamic pass.

    Attributes
    ----------
    rule:
        The rule identifier (``SIM1xx`` static, ``PART/RES/FINxxx``
        dynamic); see ``docs/analysis.md`` for the reference table.
    message:
        Human-readable description of what went wrong and where.
    file / line:
        Source location (static findings; ``line`` is 0 when unknown).
    rank:
        The simulated rank that violated the rule (dynamic findings).
    time:
        Simulated time of the violation in seconds (dynamic findings).
    severity:
        ``"error"`` for definite misuse, ``"warning"`` for hazards.
    """

    rule: str
    message: str
    file: str = ""
    line: int = 0
    rank: Optional[int] = None
    time: Optional[float] = None
    severity: str = "error"

    def format(self) -> str:
        """Render as a one-line ``location: RULE message`` diagnostic."""
        if self.file:
            where = f"{self.file}:{self.line}"
        elif self.rank is not None:
            where = f"rank {self.rank} @ t={self.time or 0.0:.6f}s"
        else:
            where = "finalize"
        return f"{where}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict:
        """Plain-dict form used by ``--format=json`` CLI output."""
        return asdict(self)


def format_findings(findings: List[Finding]) -> str:
    """Render a findings list, one diagnostic per line (empty string if none)."""
    return "\n".join(f.format() for f in findings)
