"""The common currency of the analyzer: :class:`Finding`.

Both halves of :mod:`repro.analysis` report problems the same way — the
static linter attaches a file, line and column, the dynamic checker
attaches a rank and a simulated time — so the CLI, the diagnostics report
and the tests can treat every verdict uniformly.

This module also owns the two interchange formats that let findings
travel beyond the terminal:

* :func:`to_sarif` / :func:`sarif_json` — SARIF 2.1.0 export, the format
  code-scanning UIs (GitHub, VS Code SARIF viewers) ingest;
* :func:`write_baseline` / :func:`load_baseline` / :func:`new_findings` —
  a fingerprint baseline so pre-existing findings can be grandfathered
  while CI still fails on anything *new*.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Finding",
    "format_findings",
    "sort_findings",
    "to_sarif",
    "sarif_json",
    "finding_fingerprint",
    "write_baseline",
    "load_baseline",
    "new_findings",
    "SARIF_VERSION",
    "BASELINE_VERSION",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Baseline file schema marker (bump on incompatible fingerprint changes).
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation, from either the static or the dynamic pass.

    Attributes
    ----------
    rule:
        The rule identifier (``SIM1xx`` static, ``PART/RES/FINxxx``
        dynamic); see ``docs/analysis.md`` for the reference table.
    message:
        Human-readable description of what went wrong and where.
    file / line / col:
        Source location (static findings; ``line`` is 0 when unknown,
        ``col`` is a 0-based column offset).
    rank:
        The simulated rank that violated the rule (dynamic findings).
    time:
        Simulated time of the violation in seconds (dynamic findings).
    severity:
        ``"error"`` for definite misuse, ``"warning"`` for hazards.
    fix_hint:
        Optional one-line remediation advice (surfaced in SARIF and in
        ``--format=json`` output).
    """

    rule: str
    message: str
    file: str = ""
    line: int = 0
    col: int = 0
    rank: Optional[int] = None
    time: Optional[float] = None
    severity: str = "error"
    fix_hint: Optional[str] = None

    def format(self) -> str:
        """Render as a one-line ``location: RULE message`` diagnostic."""
        if self.file:
            where = f"{self.file}:{self.line}"
            if self.col:
                where += f":{self.col + 1}"
        elif self.rank is not None:
            where = f"rank {self.rank} @ t={self.time or 0.0:.6f}s"
        else:
            where = "finalize"
        return f"{where}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict:
        """Plain-dict form used by ``--format=json`` CLI output."""
        return asdict(self)

    def sort_key(self):
        """Stable report order: ``(path, line, col, rule id, message)``."""
        return (self.file, self.line, self.col, self.rule, self.message)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Sort by location then rule id, dropping exact duplicates.

    Multiple passes (pattern rules, the flow-sensitive pass, repeated
    loop-summary replays) can legitimately produce the same finding; the
    report should show it once, in a stable order.
    """
    seen = set()
    out: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        if finding not in seen:
            seen.add(finding)
            out.append(finding)
    return out


def format_findings(findings: List[Finding]) -> str:
    """Render a findings list, one diagnostic per line (empty string if none)."""
    return "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# SARIF 2.1.0 export
# ---------------------------------------------------------------------------

def _sarif_result(finding: Finding) -> Dict:
    level = "error" if finding.severity == "error" else "warning"
    message = finding.message
    result: Dict = {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": message},
    }
    if finding.fix_hint:
        result["properties"] = {"fixHint": finding.fix_hint}
    if finding.file:
        region: Dict = {"startLine": max(finding.line, 1)}
        if finding.col:
            region["startColumn"] = finding.col + 1  # SARIF is 1-based
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file.replace("\\", "/")},
                "region": region,
            },
        }]
    elif finding.rank is not None:
        result.setdefault("properties", {})["rank"] = finding.rank
        if finding.time is not None:
            result["properties"]["simTime"] = finding.time
    return result


def to_sarif(findings: Iterable[Finding]) -> Dict:
    """A SARIF 2.1.0 log dict for one lint/check run.

    Rule metadata for every registered rule rides along in the tool
    descriptor, so SARIF viewers can show names and summaries even for
    rules with no results.
    """
    from .rules import all_rule_infos  # local import: rules import Finding
    rules_meta = [{
        "id": info.id,
        "name": info.name,
        "shortDescription": {"text": info.summary},
        "properties": {"category": info.category},
    } for info in all_rule_infos()]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri":
                        "https://example.invalid/repro/docs/analysis.md",
                    "rules": rules_meta,
                },
            },
            "results": [_sarif_result(f) for f in findings],
        }],
    }


def sarif_json(findings: Iterable[Finding]) -> str:
    """:func:`to_sarif` rendered as an indented JSON document."""
    return json.dumps(to_sarif(findings), indent=2) + "\n"


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def finding_fingerprint(finding: Finding) -> str:
    """Location-tolerant identity used by the baseline gate.

    Deliberately excludes the line/column so that unrelated edits moving
    a finding do not make it "new"; the message includes enough detail
    (names, indices) to keep distinct findings distinct.
    """
    return f"{finding.rule}|{finding.file}|{finding.message}"


def write_baseline(findings: Iterable[Finding], path) -> int:
    """Write the baseline file for ``findings``; returns the count."""
    counts = Counter(finding_fingerprint(f) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": {fp: n for fp, n in sorted(counts.items())},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return sum(counts.values())


def load_baseline(path) -> Counter:
    """Load a baseline written by :func:`write_baseline`.

    Raises ``ValueError`` on a missing or incompatible file — a stale
    baseline silently gating nothing would defeat CI.
    """
    p = Path(path)
    if not p.exists():
        raise ValueError(f"no baseline at {p}; write one with "
                         f"--write-baseline")
    data = json.loads(p.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"baseline version {data.get('version')!r} != "
                         f"{BASELINE_VERSION}; regenerate it")
    return Counter(data.get("fingerprints", {}))


def new_findings(findings: Iterable[Finding],
                 baseline: Counter) -> List[Finding]:
    """Findings not covered by ``baseline`` (fingerprint-count aware).

    If the baseline recorded a fingerprint N times, the first N matching
    findings are grandfathered and any further ones are new.
    """
    budget = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        fp = finding_fingerprint(finding)
        if budget[fp] > 0:
            budget[fp] -= 1
        else:
            fresh.append(finding)
    return fresh
