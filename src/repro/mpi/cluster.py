"""Cluster: builds a simulated machine + network + MPI world and runs programs.

This is the top-level entry point of the substrate.  A *program* is a
generator function ``program(ctx)`` executed once per rank with a
:class:`RankContext` that exposes the rank's communicator, its main-thread
context, OpenMP-style ``fork``, and cache control.

Example
-------
>>> from repro.mpi import Cluster
>>> def program(ctx):
...     if ctx.rank == 0:
...         yield from ctx.comm.send(ctx.main, dest=1, tag=7, nbytes=64)
...     else:
...         status = yield from ctx.comm.recv(ctx.main, 0, 7, 64)
...         return status.nbytes
>>> Cluster(nranks=2).run(program)
[None, 64]
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import ConfigurationError, DeadlockError
from ..faults import FaultPlan, FaultStats, LinkFaults, ReliableTransport
from ..machine import (BindPolicy, MachineSpec, NIAGARA_NODE, bind_threads,
                       validate_spec)
from ..network import (Fabric, INTRA_NODE, NIAGARA_EDR, NetworkParams,
                       Placement, validate_params)
from ..obs import EventBus
from ..obs.kinds import FAULT_DROP, FAULT_FAILSTOP, PART_INIT, TEAM_FORK
from ..sim import RandomStreams, Simulator
from ..threadsim import (DEFAULT_OPENMP_COSTS, OpenMPCosts, ThreadContext,
                         ThreadTeam)
from .comm import Communicator
from .constants import DEFAULT_COSTS, MPICosts, ThreadingMode, validate_costs
from .process import MPIProcess
from .protocol import Frame

__all__ = ["Cluster", "RankContext"]


class RankContext:
    """Everything one rank's program can touch.

    Attributes
    ----------
    rank / size:
        Identity within the world.
    comm:
        The world communicator bound to this rank.
    main:
        The main thread's :class:`ThreadContext` (thread id 0, pinned to
        the first core of the NIC's socket).
    """

    def __init__(self, cluster: "Cluster", rank: int):
        self.cluster = cluster
        self.rank = rank
        self.size = cluster.nranks
        self.proc = cluster.procs[rank]
        self.comm = Communicator(cluster, self.proc, comm_id=0,
                                 size=cluster.nranks)
        #: Compute-time multiplier from the fault plan's per-rank
        #: slowdown (1.0 = unaffected); consumed by ThreadContext.compute.
        self.compute_scale = (cluster.faults.slowdown_for(rank)
                              if cluster.faults is not None else 1.0)
        main_core = cluster.spec.nic_socket * cluster.spec.cores_per_socket
        self.main = ThreadContext(self, thread_id=0, core=main_core,
                                  team=None)

    @property
    def sim(self) -> Simulator:
        """The shared simulation kernel."""
        return self.cluster.sim

    @property
    def obs(self) -> EventBus:
        """The shared instrumentation bus."""
        return self.cluster.obs

    @property
    def spec(self) -> MachineSpec:
        """This rank's node description."""
        return self.cluster.spec

    def rng(self, name: str):
        """A deterministic RNG stream namespaced to this rank."""
        return self.cluster.streams.stream(f"rank{self.rank}/{name}")

    def fork(self, nthreads: int,
             worker: Callable[[ThreadContext], Generator],
             policy: Optional[BindPolicy] = None):
        """Generator: open a parallel region of ``nthreads`` workers.

        Charges the OpenMP fork cost, binds threads per ``policy`` (the
        cluster default when omitted), starts the workers, and returns the
        :class:`ThreadTeam`; callers later ``yield from team.join()``.
        """
        binding = bind_threads(nthreads, self.spec,
                               policy or self.cluster.bind_policy)
        yield self.sim.sleep(self.cluster.omp_costs.fork_cost(nthreads))
        team = ThreadTeam(self, binding, worker,
                          omp_costs=self.cluster.omp_costs)
        self.obs.emit(TEAM_FORK, self.sim.now, self.rank, nthreads)
        return team

    def parallel(self, nthreads: int,
                 worker: Callable[[ThreadContext], Generator],
                 policy: Optional[BindPolicy] = None):
        """Generator: fork + join in one call; returns the worker results."""
        team = yield from self.fork(nthreads, worker, policy)
        yield from team.join()
        return team.results()

    def invalidate_cache(self):
        """Generator: run the cold-cache invalidation pass (§3.4).

        Flushes this rank's cache model and charges the cost of streaming
        the 8 MB scratch buffer, as the SMB-derived method does.
        """
        cost = self.proc.cache.invalidate()
        yield self.sim.sleep(cost)

    def elapse(self, seconds: float):
        """Generator: idle this rank's main thread for ``seconds``."""
        yield self.sim.sleep(seconds)


class Cluster:
    """A simulated cluster and its MPI world.

    Parameters
    ----------
    nranks:
        World size.
    spec / inter_node / intra_node / costs / omp_costs:
        Substrate parameter sets (Niagara-calibrated defaults).
    mode:
        MPI threading mode for every rank.
    placement:
        Rank→node placement; default one rank per node, matching the
        paper's pattern benchmarks.
    bind_policy:
        Default thread binding for parallel regions.
    seed:
        Master seed for all RNG streams.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  When present the
        cluster wires a :class:`~repro.faults.LinkFaults` decision
        engine into every NIC (drop/stall/degrade decisions drawn from
        the ``faults/rank{r}/link`` stream of the same seed scheme as
        everything else), switches every rank onto the reliable
        ACK/retransmit transport when the plan is lossy, and schedules
        any fail-stop.  ``None`` (the default) adds no work anywhere.
    """

    def __init__(self, nranks: int, *,
                 spec: MachineSpec = NIAGARA_NODE,
                 inter_node: NetworkParams = NIAGARA_EDR,
                 intra_node: NetworkParams = INTRA_NODE,
                 costs: MPICosts = DEFAULT_COSTS,
                 mode: ThreadingMode = ThreadingMode.MULTIPLE,
                 omp_costs: OpenMPCosts = DEFAULT_OPENMP_COSTS,
                 placement: Optional[Placement] = None,
                 bind_policy: BindPolicy = BindPolicy.COMPACT,
                 seed: int = 0,
                 faults: Optional[FaultPlan] = None):
        if nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
        validate_spec(spec)
        validate_params(inter_node)
        validate_params(intra_node)
        validate_costs(costs)
        if placement is None:
            placement = Placement.one_per_node(nranks)
        if placement.nranks != nranks:
            raise ConfigurationError(
                f"placement covers {placement.nranks} ranks, world has "
                f"{nranks}")
        self.nranks = nranks
        self.spec = spec
        self.costs = costs
        self.mode = mode
        self.omp_costs = omp_costs
        self.bind_policy = bind_policy
        self.sim = Simulator()
        self.obs = EventBus()
        self.streams = RandomStreams(seed)
        self.fabric = Fabric(placement, inter_node, intra_node)
        self.faults = faults
        self.fault_stats: Optional[FaultStats] = None
        link_faults: List[Optional[LinkFaults]] = [None] * nranks
        if faults is not None:
            if faults.fail_stop is not None and \
                    faults.fail_stop.rank >= nranks:
                raise ConfigurationError(
                    f"fail-stop rank {faults.fail_stop.rank} outside world "
                    f"of {nranks}")
            for rank, _ in faults.rank_slowdown:
                if rank >= nranks:
                    raise ConfigurationError(
                        f"slowdown rank {rank} outside world of {nranks}")
            self.fault_stats = FaultStats()
            link_faults = [
                LinkFaults(faults, r, self.sim, self.obs,
                           self.streams.stream(f"faults/rank{r}/link"),
                           self.fault_stats)
                for r in range(nranks)
            ]
        self.procs: List[MPIProcess] = [
            MPIProcess(self.sim, r, self.fabric, spec, costs, mode,
                       self.obs, self._route, link_faults=link_faults[r])
            for r in range(nranks)
        ]
        if faults is not None and faults.lossy:
            for proc in self.procs:
                proc.retry = ReliableTransport(
                    self.sim, proc.nic, proc.rank, faults.retry,
                    self.fault_stats, self.obs)
        if faults is not None and faults.fail_stop is not None:
            timer = self.sim.timeout(faults.fail_stop.time)
            timer.callbacks.append(
                lambda ev: self._fail_stop(faults.fail_stop.rank))
        self.contexts: List[RankContext] = [
            RankContext(self, r) for r in range(nranks)
        ]
        self._part_pending: Dict[Tuple[int, int, int, int],
                                 Dict[str, deque]] = {}
        self._dup_ids: Dict[Tuple[int, int], int] = {}
        self._next_comm_id = 1
        #: Dynamic-correctness checker attached by
        #: :func:`repro.analysis.enable_checking`; ``None`` when disabled.
        self.checker: Optional[Any] = None

    # ------------------------------------------------------------------
    # plumbing used by the runtime
    # ------------------------------------------------------------------
    def _route(self, dst_rank: int, frame: Frame) -> None:
        dst = self.procs[dst_rank]
        if dst.failed:
            # Fail-stopped destination: the frame is black-holed.  The
            # sender's retry machinery (if any) times out and abandons.
            self.fault_stats.drops += 1
            self.obs.emit(FAULT_DROP, self.sim.now, frame.src_rank,
                          dst_rank, frame.kind.value, frame.seq,
                          frame.nbytes)
            return
        dst.deliver(frame)

    def _fail_stop(self, rank: int) -> None:
        """Fault-plan callback: kill ``rank`` at the scheduled time."""
        proc = self.procs[rank]
        proc.failed = True
        proc.nic.failed = True
        self.fault_stats.fail_stops += 1
        self.obs.emit(FAULT_FAILSTOP, self.sim.now, rank)

    def _register_partitioned(self, req, is_send: bool) -> None:
        """Init-time matching of partitioned halves, in posting order."""
        self.obs.emit(PART_INIT, self.sim.now, req.proc.rank,
                      "send" if is_send else "recv", req.peer_rank, req.tag,
                      req.nbytes, req.partitions, req)
        if is_send:
            key = (req.proc.rank, req.peer_rank, req.tag, req.comm_id)
        else:
            key = (req.peer_rank, req.proc.rank, req.tag, req.comm_id)
        entry = self._part_pending.setdefault(
            key, {"send": deque(), "recv": deque()})
        mine, theirs = (("send", "recv") if is_send else ("recv", "send"))
        if entry[theirs]:
            peer = entry[theirs].popleft()
            req.bind(peer)
            peer.bind(req)
        else:
            entry[mine].append(req)

    def _dup_comm_id(self, base_id: int, nth: int) -> int:
        key = (base_id, nth)
        if key not in self._dup_ids:
            self._dup_ids[key] = self._next_comm_id
            self._next_comm_id += 1
        return self._dup_ids[key]

    # ------------------------------------------------------------------
    # running programs
    # ------------------------------------------------------------------
    def run(self, program: Callable[[RankContext], Generator],
            ranks: Optional[List[int]] = None,
            until: Optional[float] = None) -> List[Any]:
        """Run ``program`` on every rank (or on ``ranks``) to completion.

        Returns the per-rank return values.  Raises
        :class:`~repro.errors.DeadlockError` naming the stuck ranks when the
        event queue drains with programs still waiting, and re-raises the
        first program failure otherwise.
        """
        targets = ranks if ranks is not None else list(range(self.nranks))
        procs = [
            self.sim.process(program(self.contexts[r]), name=f"rank{r}.main")
            for r in targets
        ]
        self.sim.run(until=until)
        stuck = [p.name for p in procs if not p.triggered]
        if stuck:
            raise DeadlockError(
                f"programs never completed (likely unmatched communication "
                f"or missing start/wait): {', '.join(stuck)}")
        results = []
        for p in procs:
            if not p.ok:
                raise p.value
            results.append(p.value)
        return results

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now
