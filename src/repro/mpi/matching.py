"""Tag matching: posted-receive and unexpected-message queues.

MPI requires that messages between a (source, destination) pair on one
communicator match receives in posting order, with ``ANY_SOURCE`` /
``ANY_TAG`` wildcards.  Most implementations keep two linear lists — the
*posted receive queue* and the *unexpected message queue* — and the cost of
walking them under multi-threading is one of the documented pain points
partitioned communication sidesteps (matching happens once at init; see the
paper's §2.1 and Dosanjh et al.'s tail-queues work).

The engine therefore reports *how many elements were scanned* for every
match attempt so the runtime can charge ``match_cost`` per element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .constants import ANY_SOURCE, ANY_TAG

__all__ = ["Envelope", "PostedRecv", "UnexpectedMessage", "MatchingEngine",
           "MatchingStats"]


@dataclass(frozen=True)
class Envelope:
    """Message envelope used for matching: (source, tag, communicator)."""

    source: int
    tag: int
    comm_id: int

    def matches_pattern(self, want_source: int, want_tag: int,
                        want_comm: int) -> bool:
        """True when this concrete envelope satisfies a (possibly wildcard)
        receive pattern."""
        if self.comm_id != want_comm:
            return False
        if want_source != ANY_SOURCE and self.source != want_source:
            return False
        if want_tag != ANY_TAG and self.tag != want_tag:
            return False
        return True


@dataclass
class PostedRecv:
    """One entry of the posted-receive queue."""

    request: Any
    source: int
    tag: int
    comm_id: int
    seq: int


@dataclass
class UnexpectedMessage:
    """One entry of the unexpected-message queue (an arrived frame)."""

    frame: Any
    envelope: Envelope
    arrived_at: float
    seq: int


@dataclass
class MatchingStats:
    """Aggregate accounting, exposed for tests and the reports."""

    posted_matches: int = 0
    unexpected_matches: int = 0
    elements_scanned: int = 0
    max_posted_depth: int = 0
    max_unexpected_depth: int = 0


class MatchingEngine:
    """The two matching queues of one rank, with scan-cost accounting."""

    def __init__(self) -> None:
        self._posted: List[PostedRecv] = []
        self._unexpected: List[UnexpectedMessage] = []
        self._seq = 0
        self.stats = MatchingStats()

    # -- introspection ----------------------------------------------------
    @property
    def posted_depth(self) -> int:
        """Current length of the posted-receive queue."""
        return len(self._posted)

    @property
    def unexpected_depth(self) -> int:
        """Current length of the unexpected-message queue."""
        return len(self._unexpected)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- receive side ------------------------------------------------------
    def find_unexpected(self, source: int, tag: int,
                        comm_id: int) -> Tuple[Optional[UnexpectedMessage], int]:
        """Search the unexpected queue for a frame matching a new receive.

        Returns ``(entry_or_None, elements_scanned)``; on a hit the entry is
        removed.  FIFO: the *earliest arrived* matching frame wins, which
        preserves MPI's non-overtaking guarantee.
        """
        scanned = 0
        for i, entry in enumerate(self._unexpected):
            scanned += 1
            if entry.envelope.matches_pattern(source, tag, comm_id):
                self._unexpected.pop(i)
                self.stats.unexpected_matches += 1
                self.stats.elements_scanned += scanned
                return entry, scanned
        self.stats.elements_scanned += scanned
        return None, scanned

    def post_recv(self, request: Any, source: int, tag: int,
                  comm_id: int) -> PostedRecv:
        """Append a receive to the posted queue (no match was found)."""
        entry = PostedRecv(request=request, source=source, tag=tag,
                           comm_id=comm_id, seq=self._next_seq())
        self._posted.append(entry)
        if len(self._posted) > self.stats.max_posted_depth:
            self.stats.max_posted_depth = len(self._posted)
        return entry

    def cancel_posted(self, entry: PostedRecv) -> bool:
        """Remove a posted receive (for request cancellation)."""
        try:
            self._posted.remove(entry)
            return True
        except ValueError:
            return False

    # -- arrival side -------------------------------------------------------
    def match_arrival(self, envelope: Envelope) -> Tuple[Optional[PostedRecv], int]:
        """Match an arriving frame against the posted queue.

        Returns ``(entry_or_None, elements_scanned)``; on a hit the entry is
        removed.  FIFO over posting order.
        """
        scanned = 0
        for i, entry in enumerate(self._posted):
            scanned += 1
            if envelope.matches_pattern(entry.source, entry.tag,
                                        entry.comm_id):
                self._posted.pop(i)
                self.stats.posted_matches += 1
                self.stats.elements_scanned += scanned
                return entry, scanned
        self.stats.elements_scanned += scanned
        return None, scanned

    def store_unexpected(self, frame: Any, envelope: Envelope,
                         now: float) -> UnexpectedMessage:
        """Queue an arriving frame that matched no posted receive."""
        entry = UnexpectedMessage(frame=frame, envelope=envelope,
                                  arrived_at=now, seq=self._next_seq())
        self._unexpected.append(entry)
        if len(self._unexpected) > self.stats.max_unexpected_depth:
            self.stats.max_unexpected_depth = len(self._unexpected)
        return entry
