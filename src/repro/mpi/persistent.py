"""Persistent point-to-point requests (``MPI_Send_init``/``MPI_Recv_init``).

A persistent request freezes the envelope and buffer of a point-to-point
operation so it can be restarted cheaply each iteration.  The paper uses
persistent point-to-point as the conceptual 1-partition baseline: a
partitioned transfer with one partition *is* a persistent send/receive
(§3.1.1), which our tests verify.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import RequestStateError
from ..sim import Event
from .request import Request

__all__ = ["PersistentSend", "PersistentRecv"]


class _PersistentBase:
    """Stored arguments plus the currently armed underlying request."""

    def __init__(self, comm, peer: int, tag: int, nbytes: int,
                 bufkey: Optional[str]):
        self.comm = comm
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.bufkey = bufkey
        self.current: Optional[Request] = None
        self.epoch = 0

    @property
    def active(self) -> bool:
        """True between ``start`` and the completion of the armed request."""
        return self.current is not None and not self.current.complete

    def _pre_start(self) -> None:
        if self.active:
            raise RequestStateError(
                "start() on an active persistent request (wait first)")
        self.epoch += 1

    def wait(self) -> Event:
        """Event completing the current epoch's operation."""
        if self.current is None:
            raise RequestStateError("wait() before start()")
        return self.current.wait()

    def test(self) -> bool:
        """Instantaneous poll of the current epoch's operation."""
        return self.current is not None and self.current.complete


class PersistentSend(_PersistentBase):
    """Persistent send handle; ``start`` re-issues the underlying isend."""

    def __init__(self, comm, dest: int, tag: int, nbytes: int,
                 payload: Any = None, bufkey: Optional[str] = None):
        super().__init__(comm, dest, tag, nbytes, bufkey)
        self.payload = payload

    def start(self, tc):
        """Generator: arm one send epoch; returns the underlying request."""
        self._pre_start()
        self.current = yield from self.comm.isend(
            tc, self.peer, self.tag, self.nbytes, payload=self.payload,
            bufkey=self.bufkey)
        return self.current


class PersistentRecv(_PersistentBase):
    """Persistent receive handle; ``start`` re-posts the underlying irecv."""

    def start(self, tc):
        """Generator: arm one receive epoch; returns the underlying request."""
        self._pre_start()
        self.current = yield from self.comm.irecv(
            tc, self.peer, self.tag, self.nbytes, bufkey=self.bufkey)
        return self.current

    @property
    def status(self):
        """Completion status of the last finished epoch."""
        if self.current is None or not self.current.complete:
            raise RequestStateError("status before completion")
        return self.current.status
