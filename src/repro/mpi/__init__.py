"""Simulated MPI runtime.

Entry points:

* :class:`Cluster` — build a world and run per-rank programs.
* :class:`Communicator` — the application-facing verb set (point-to-point,
  persistent, partitioned, collectives).
* :class:`ThreadingMode` / :class:`MPICosts` — runtime configuration.
"""

from .cluster import Cluster, RankContext
from .comm import Communicator
from .diagnostics import (RankDiagnostics, cluster_report,
                          collect_diagnostics)
from .constants import (ANY_SOURCE, ANY_TAG, DEFAULT_COSTS, MPICosts,
                        ThreadingMode)
from .matching import Envelope, MatchingEngine
from .persistent import PersistentRecv, PersistentSend
from .process import MPIProcess
from .request import (RecvRequest, Request, SendRequest, testall,
                      testany, waitall, waitany)
from .status import Status

__all__ = [
    "Cluster",
    "RankContext",
    "Communicator",
    "RankDiagnostics",
    "cluster_report",
    "collect_diagnostics",
    "ANY_SOURCE",
    "ANY_TAG",
    "DEFAULT_COSTS",
    "MPICosts",
    "ThreadingMode",
    "Envelope",
    "MatchingEngine",
    "PersistentRecv",
    "PersistentSend",
    "MPIProcess",
    "RecvRequest",
    "Request",
    "SendRequest",
    "testall",
    "testany",
    "waitall",
    "waitany",
    "Status",
]
