"""Request objects for nonblocking and persistent operations.

A request wraps a completion :class:`~repro.sim.core.Event`.  Application
code yields ``req.wait()`` (or ``waitall([...])``) inside its simulated
process; ``req.test()`` is an instantaneous poll.

Persistent requests (``send_init``/``recv_init``) hold their arguments and
re-arm a fresh underlying operation on each ``start()`` — the semantics a
1-partition partitioned transfer degenerates to, which the paper uses as
its equivalence baseline.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..errors import RequestStateError
from ..sim import AllOf, Event, Simulator
from .status import Status

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall",
           "testall", "waitany", "testany"]


class Request:
    """Base class: a handle on one in-flight operation."""

    def __init__(self, sim: Simulator, kind: str):
        self.sim = sim
        self.kind = kind
        self._completion = Event(sim)
        self.status = Status()

    @property
    def complete(self) -> bool:
        """True once the operation finished."""
        return self._completion.triggered

    @property
    def completed_at(self) -> float:
        """Simulation time of completion (raises if not complete)."""
        if not self.complete:
            raise RequestStateError(f"{self.kind} request not complete")
        return self.status.completed_at

    def wait(self) -> Event:
        """The event to ``yield`` on for completion."""
        return self._completion

    def test(self) -> bool:
        """Instantaneous completion poll (``MPI_Test`` semantics)."""
        return self.complete

    # -- runtime side -----------------------------------------------------
    def _finish(self, now: float, source: int = -1, tag: int = -1,
                nbytes: int = 0, payload: Any = None) -> None:
        """Mark complete; called exactly once by the runtime."""
        if self.complete:
            raise RequestStateError(f"{self.kind} request completed twice")
        self.status.source = source
        self.status.tag = tag
        self.status.nbytes = nbytes
        self.status.payload = payload
        self.status.completed_at = now
        self._completion.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.complete else "pending"
        return f"<{type(self).__name__} {self.kind} {state}>"


class SendRequest(Request):
    """Handle on one nonblocking send."""

    def __init__(self, sim: Simulator, dest: int, tag: int, nbytes: int):
        super().__init__(sim, "send")
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes


class RecvRequest(Request):
    """Handle on one nonblocking receive."""

    def __init__(self, sim: Simulator, source: int, tag: int, nbytes: int):
        super().__init__(sim, "recv")
        self.source = source
        self.tag = tag
        self.nbytes = nbytes


def waitall(sim: Simulator, requests: Iterable[Request]) -> Event:
    """Event triggering when every request completes (``MPI_Waitall``)."""
    return AllOf(sim, [r.wait() for r in requests])


def testall(requests: Iterable[Request]) -> bool:
    """Instantaneous check that every request is complete."""
    return all(r.test() for r in requests)


def waitany(sim: Simulator, requests: List[Request]) -> Event:
    """Event triggering when *any* request completes (``MPI_Waitany``).

    Yield the returned event; afterwards use :func:`testany` (or each
    request's ``test``) to find which one(s) finished — the simulated
    analogue of the out-index argument.
    """
    if not requests:
        raise RequestStateError("waitany needs at least one request")
    from ..sim import AnyOf
    return AnyOf(sim, [r.wait() for r in requests])


def testany(requests: Iterable[Request]) -> Optional[int]:
    """Index of the first complete request, or None (``MPI_Testany``)."""
    for i, r in enumerate(requests):
        if r.test():
            return i
    return None
