"""MPI constants and cost parameters for the simulated runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["ANY_SOURCE", "ANY_TAG", "ThreadingMode", "MPICosts",
           "DEFAULT_COSTS", "validate_costs"]

#: Wildcard source for point-to-point receives (not allowed for partitioned).
ANY_SOURCE = -1
#: Wildcard tag for point-to-point receives (not allowed for partitioned).
ANY_TAG = -1


class ThreadingMode(enum.Enum):
    """The three MPI threading modes discussed in the paper's §1.

    FUNNELED
        Only the main thread (thread id 0) may call MPI.
    SERIALIZED
        Any thread may call MPI, but never two concurrently; the simulated
        runtime *verifies* this and raises on violations.
    MULTIPLE
        Concurrent calls allowed; every call serializes on the library lock,
        reproducing the contention that motivates partitioned communication.
    """

    FUNNELED = "funneled"
    SERIALIZED = "serialized"
    MULTIPLE = "multiple"


@dataclass(frozen=True)
class MPICosts:
    """CPU-side cost parameters of the simulated MPI library.

    These model the software path lengths of an Open MPI/UCX-class library;
    the relative magnitudes (not absolute values) drive the paper's shapes.

    Attributes
    ----------
    call_overhead:
        Fixed CPU cost to enter+exit any MPI call.
    post_cost:
        Cost to append an entry to a matching queue.
    lock_hold:
        Length of the library critical section under ``MULTIPLE``; the lock
        is held for this long per call, so concurrent callers queue.
    lock_remote_penalty:
        Extra lock cost when the calling thread sits on a socket other than
        the NIC's (lock cache line bounces across the UPI link).  Drives the
        32-partition spillover spike of Fig. 4.
    pready_cost:
        CPU cost of ``MPI_Pready`` in the layered (MPIPCL) implementation —
        an internal ``MPI_Isend`` on a pre-matched request, cheaper than a
        full send but still lock-protected.
    parrived_cost:
        CPU cost of ``MPI_Parrived`` — a flag check, no lock.
    partitioned_setup:
        One-time cost of ``MPI_Psend_init``/``MPI_Precv_init`` (metadata
        exchange happens here, in the serial part of the code).
    start_cost:
        Cost of ``MPI_Start`` on a persistent or partitioned request, plus
        ``start_cost_per_partition`` for each internal request re-armed.
    start_cost_per_partition:
        Per-partition component of ``MPI_Start`` (MPIPCL re-posts one
        internal receive per partition).
    native_pready_cost:
        CPU cost of ``MPI_Pready`` in the idealized *native* implementation:
        a lock-free flag set plus a hardware doorbell.
    progress_contention:
        Progress-engine slowdown per thread spin-waiting inside an MPI call
        under ``MULTIPLE``: frame handling costs are multiplied by
        ``1 + progress_contention * blocked_waiters``.  Models polling
        threads bouncing the progress lock (Amer et al. [6]); partitioned
        receivers poll with lock-free ``MPI_Parrived`` and so do not
        contribute.
    """

    call_overhead: float = 0.15e-6
    post_cost: float = 0.10e-6
    lock_hold: float = 0.25e-6
    lock_remote_penalty: float = 3.5e-6
    pready_cost: float = 0.60e-6
    parrived_cost: float = 0.05e-6
    partitioned_setup: float = 2.0e-6
    start_cost: float = 0.10e-6
    start_cost_per_partition: float = 0.05e-6
    native_pready_cost: float = 0.08e-6
    progress_contention: float = 4.0

    def with_overrides(self, **kwargs) -> "MPICosts":
        """Copy with fields replaced — used by the lock ablation."""
        return replace(self, **kwargs)


def validate_costs(costs: MPICosts) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on negative costs."""
    for name in costs.__dataclass_fields__:
        if getattr(costs, name) < 0:
            raise ConfigurationError(f"MPI cost {name} must be >= 0")


#: Default cost preset, calibrated so figure shapes match the paper.
DEFAULT_COSTS = MPICosts()
