"""Per-rank MPI engine: call paths, protocol handling, progress.

One :class:`MPIProcess` exists per simulated rank.  It owns:

* the rank's :class:`~repro.network.nic.NIC` (serializing injections),
* the :class:`~repro.mpi.matching.MatchingEngine` (posted/unexpected queues),
* the library lock (a :class:`~repro.sim.resources.Mutex`) taken around
  every call under ``MPI_THREAD_MULTIPLE``,
* a cache model (hot/cold buffer residency),
* the *progress loop*, a simulated process draining the rank's inbox and
  running the receive-side protocol state machine.

All application-facing verbs are **generators**: the calling simulated
thread ``yield from``-s them so CPU costs land on the right actor.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import ThreadingModeError, TruncationError
from ..machine import CacheModel, MachineSpec, NUMAModel
from ..network import NIC, Fabric, Transmission
from ..obs import EventBus
from ..obs.kinds import (RECV_CANCELLED, RECV_COMPLETE, RECV_POST,
                         SEND_COMPLETE, SEND_START)
from ..sim import Mutex, Simulator, Store
from .constants import MPICosts, ThreadingMode
from .matching import Envelope, MatchingEngine
from .protocol import Frame, FrameKind
from .request import RecvRequest, SendRequest

__all__ = ["MPIProcess"]


class MPIProcess:
    """The MPI library instance of one simulated rank.

    Parameters
    ----------
    sim, rank:
        Kernel handle and this rank's id in ``COMM_WORLD``.
    fabric:
        Path model (parameters + latency per peer).
    spec:
        The node this rank runs on.
    costs:
        Software path-length parameters (:class:`MPICosts`).
    mode:
        Declared threading mode; violations raise
        :class:`~repro.errors.ThreadingModeError`.
    obs:
        Shared instrumentation bus events are emitted on.
    router:
        ``router(dst_rank, frame)`` delivering a frame into the destination
        rank's inbox (wired up by the cluster).
    link_faults:
        Optional :class:`~repro.faults.LinkFaults` handed to this rank's
        NIC (``None`` = perfect fabric, zero overhead).
    retry:
        Optional :class:`~repro.faults.ReliableTransport`; present only
        in lossy mode.  Wired up by the cluster *after* construction
        because the transport needs the NIC this constructor creates.
    """

    def __init__(self, sim: Simulator, rank: int, fabric: Fabric,
                 spec: MachineSpec, costs: MPICosts, mode: ThreadingMode,
                 obs: EventBus,
                 router: Callable[[int, Frame], None],
                 link_faults=None):
        self.sim = sim
        self.rank = rank
        self.fabric = fabric
        self.spec = spec
        self.costs = costs
        self.mode = mode
        self.obs = obs
        self._router = router
        #: Reliable transport (lossy mode only); set by the cluster.
        self.retry = None
        #: Fail-stop flag mirrored onto the NIC by the cluster.
        self.failed = False

        self.cache = CacheModel(spec)
        self.numa = NUMAModel(spec)
        self.lock = Mutex(sim, name=f"rank{rank}.liblock")
        self.matching = MatchingEngine()
        self.inbox: Store = Store(sim, name=f"rank{rank}.inbox")
        self.nic = NIC(sim, rank, router, obs=obs, faults=link_faults)
        self._match_cost = fabric.inter_node.match_cost
        self._in_mpi = 0
        #: Threads currently spin-waiting inside a blocking MPI call; under
        #: MULTIPLE they contend with the progress engine for the lock.
        self.blocked_waiters = 0
        sim.process(self._progress_loop(), name=f"rank{rank}.progress")

    # ------------------------------------------------------------------
    # call-path plumbing
    # ------------------------------------------------------------------
    def _mpi_entry(self, tc, cost: float, locked: bool = True):
        """Charge one MPI call's CPU cost under the threading-mode rules.

        Under ``MULTIPLE`` the library lock is held for ``lock_hold`` (plus
        the remote-socket penalty when the calling thread spilled over);
        under ``FUNNELED``/``SERIALIZED`` illegal concurrency raises.
        """
        if self.mode is not ThreadingMode.MULTIPLE:
            if self._in_mpi > 0:
                raise ThreadingModeError(
                    f"rank {self.rank}: concurrent MPI calls under "
                    f"{self.mode.value} threading mode")
            if self.mode is ThreadingMode.FUNNELED and tc.thread_id != 0:
                raise ThreadingModeError(
                    f"rank {self.rank}: thread {tc.thread_id} called MPI "
                    f"under FUNNELED mode")
        self._in_mpi += 1
        try:
            penalty = self.numa.injection_penalty(tc.core)
            if self.mode is ThreadingMode.MULTIPLE and locked:
                yield from self.lock.acquire()
                try:
                    hold = self.costs.lock_hold
                    if self.spec.is_remote_to_nic(tc.core):
                        hold += self.costs.lock_remote_penalty
                    yield self.sim.sleep(cost + penalty + hold)
                finally:
                    self.lock.release()
            else:
                total = cost + penalty
                if total > 0:
                    yield self.sim.sleep(total)
        finally:
            self._in_mpi -= 1

    def blocking_wait(self, tc, event):
        """Generator: block inside an MPI call until ``event`` triggers.

        While blocked, the thread counts toward :attr:`blocked_waiters`;
        under ``MULTIPLE`` each waiter slows the progress engine (spinning
        threads bounce the progress lock).  This is the contention that
        makes multi-threaded point-to-point lose to partitioned
        communication in the paper's pattern benchmarks.
        """
        if event.triggered:
            return event.value
        self.blocked_waiters += 1
        try:
            yield event
        finally:
            self.blocked_waiters -= 1
        return event.value

    def progress_multiplier(self) -> float:
        """Current slowdown factor of receive-side frame handling.

        One blocked waiter costs nothing extra — a lone spin-polling
        ``MPI_Wait`` *is* the progress engine.  Every additional waiter
        bounces the progress lock and dilutes it.
        """
        if self.mode is ThreadingMode.MULTIPLE and self.blocked_waiters > 1:
            return (1.0 + self.costs.progress_contention
                    * (self.blocked_waiters - 1))
        return 1.0

    def _progress_delay(self, cost: float):
        """Generator: charge a progress-engine cost under contention."""
        scaled = cost * self.progress_multiplier()
        if scaled > 0:
            yield self.sim.sleep(scaled)

    def transmit(self, dst_rank: int, wire_bytes: int, frame: Frame,
                 data: bool = True) -> Transmission:
        """Queue a frame on this rank's NIC toward ``dst_rank``.

        ``wire_bytes`` is what occupies the link (0 for control frames,
        which are clamped to the path's minimum message size).

        In lossy mode every frame except the ACKs themselves is handed
        to the reliable transport first: it stamps ``frame.seq`` and
        arms the ACK-timeout retransmission timer on injection.
        """
        params = self.fabric.params_between(self.rank, dst_rank)
        tx = Transmission(
            dst_rank=dst_rank,
            nbytes=wire_bytes,
            wire_time=params.wire_time(wire_bytes),
            latency=self.fabric.delivery_latency(self.rank, dst_rank),
            payload=frame,
            gap=params.injection_gap,
        )
        retry = self.retry
        self.nic.enqueue(tx)
        if retry is not None and frame.kind is not FrameKind.ACK:
            retry.track(tx, frame)
        return tx

    def deliver(self, frame: Frame) -> None:
        """Entry point used by the fabric: enqueue into our inbox."""
        self.inbox.put(frame)

    # ------------------------------------------------------------------
    # point-to-point verbs (generators)
    # ------------------------------------------------------------------
    def isend(self, tc, comm_id: int, dest: int, tag: int, nbytes: int,
              payload: Any = None, bufkey: Optional[str] = None):
        """Nonblocking send; returns a :class:`SendRequest`.

        Eager messages complete when the NIC finishes injecting; rendezvous
        messages complete when the bulk data has been injected after the
        CTS round trip.
        """
        if dest == self.rank and self.mode is not ThreadingMode.MULTIPLE:
            # Self-sends require the progress loop to run while we block;
            # they are legal, but we don't special-case loopback timing.
            pass
        req = SendRequest(self.sim, dest, tag, nbytes)
        req._payload = payload
        params = self.fabric.params_between(self.rank, dest)
        # Eager sends copy the user buffer into a bounce buffer (so hot/cold
        # cache state matters); the memcpy runs outside the library lock.
        # Rendezvous sends are zero-copy — the NIC DMAs from user memory.
        if params.is_eager(nbytes):
            key = bufkey or f"r{self.rank}.c{comm_id}.t{tag}.send"
            copy = self.cache.access_time(key, nbytes)
            if copy > 0:
                yield self.sim.sleep(copy)
        cost = (self.costs.call_overhead + self.costs.post_cost
                + params.send_overhead)
        yield from self._mpi_entry(tc, cost)
        env = Envelope(self.rank, tag, comm_id)
        self.obs.emit(SEND_START, self.sim.now, self.rank, dest, tag, nbytes)
        if params.is_eager(nbytes):
            frame = Frame(FrameKind.EAGER, self.rank, dest, nbytes,
                          envelope=env, payload=payload)
            tx = self.transmit(dest, nbytes, frame)
            tx.injected.callbacks.append(
                lambda ev, r=req: self._complete_send(r))
        else:
            frame = Frame(FrameKind.RTS, self.rank, dest, nbytes,
                          envelope=env, sreq=req)
            self.transmit(dest, 0, frame)
        return req

    def irecv(self, tc, comm_id: int, source: int, tag: int, nbytes: int,
              bufkey: Optional[str] = None):
        """Nonblocking receive; returns a :class:`RecvRequest`."""
        req = RecvRequest(self.sim, source, tag, nbytes)
        req.bufkey = bufkey or f"r{self.rank}.c{comm_id}.t{tag}.recv"
        req._comm_id = comm_id
        yield from self._mpi_entry(
            tc, self.costs.call_overhead + self.costs.post_cost)
        entry, scanned = self.matching.find_unexpected(source, tag, comm_id)
        if entry is None:
            # Atomic with the search above (no yield in between), so no
            # frame can slip into the unexpected queue unseen.
            req._posted_entry = self.matching.post_recv(req, source, tag,
                                                        comm_id)
            self.obs.emit(RECV_POST, self.sim.now, self.rank, source, tag)
            if scanned:
                yield self.sim.sleep(scanned * self._match_cost)
            return req
        frame: Frame = entry.frame
        params = self.fabric.params_between(frame.src_rank, self.rank)
        cost = scanned * self._match_cost
        if frame.kind is FrameKind.EAGER:
            self._check_truncation(req, frame)
            cost += params.recv_overhead
            cost += self.cache.access_time(req.bufkey, frame.nbytes)
            yield self.sim.sleep(cost)
            self._complete_recv(req, frame.envelope, frame.nbytes,
                                frame.payload)
        else:  # RTS waiting in the unexpected queue
            self._check_truncation(req, frame)
            req._pending_envelope = frame.envelope
            yield self.sim.sleep(cost + self.costs.post_cost)
            cts = Frame(FrameKind.CTS, self.rank, frame.src_rank,
                        nbytes=frame.nbytes, sreq=frame.sreq, rreq=req)
            self.transmit(frame.src_rank, 0, cts)
        return req

    def cancel_recv(self, tc, req: RecvRequest):
        """Generator: ``MPI_Cancel`` on a pending receive.

        Succeeds only while the receive still sits in the posted queue; a
        matched or completed receive cannot be cancelled (the standard
        leaves that case to complete normally).  Returns True on success.
        """
        yield from self._mpi_entry(tc, self.costs.call_overhead)
        entry = getattr(req, "_posted_entry", None)
        if req.complete or entry is None:
            return False
        cancelled = self.matching.cancel_posted(entry)
        if cancelled:
            req._finish(self.sim.now, source=-1, tag=req.tag, nbytes=0)
            req.status.cancelled = True
            self.obs.emit(RECV_CANCELLED, self.sim.now, self.rank, req.tag)
        return cancelled

    # ------------------------------------------------------------------
    # progress engine (receive-side protocol state machine)
    # ------------------------------------------------------------------
    def _progress_loop(self):
        while True:
            frame = yield self.inbox.get()
            yield from self._handle_frame(frame)

    def _handle_frame(self, frame: Frame):
        kind = frame.kind
        retry = self.retry
        if retry is not None:
            if kind is FrameKind.ACK:
                retry.on_ack(frame.src_rank, frame.seq)
                return
            if frame.seq >= 0:
                # ACK first — a duplicate usually means our previous ACK
                # was lost, so the sender needs a fresh one either way.
                self.transmit(frame.src_rank, 0,
                              Frame(FrameKind.ACK, self.rank,
                                    frame.src_rank, seq=frame.seq))
                if not retry.accept(frame.src_rank, frame.seq):
                    return  # duplicate delivery: already handled once
        if kind is FrameKind.EAGER or kind is FrameKind.RTS:
            yield from self._handle_match(frame)
        elif kind is FrameKind.CTS:
            yield from self._handle_cts(frame)
        elif kind is FrameKind.RDATA:
            yield from self._handle_rdata(frame)
        elif kind is FrameKind.PDATA:
            yield from self._handle_pdata(frame)
        elif kind is FrameKind.PRTS:
            yield from self._progress_delay(self.costs.post_cost)
            pcts = Frame(FrameKind.PCTS, self.rank, frame.src_rank,
                         nbytes=frame.nbytes, sreq=frame.sreq,
                         preq=frame.preq, partition=frame.partition,
                         epoch=frame.epoch)
            self.transmit(frame.src_rank, 0, pcts)
        elif kind is FrameKind.PCTS:
            yield from self._handle_pcts(frame)
        else:  # pragma: no cover - exhaustive over enum
            raise AssertionError(f"unhandled frame kind {kind}")

    def _handle_match(self, frame: Frame):
        entry, scanned = self.matching.match_arrival(frame.envelope)
        cost = scanned * self._match_cost
        if entry is None:
            self.matching.store_unexpected(frame, frame.envelope,
                                           self.sim.now)
            yield from self._progress_delay(cost + self.costs.post_cost)
            return
        req: RecvRequest = entry.request
        params = self.fabric.params_between(frame.src_rank, self.rank)
        self._check_truncation(req, frame)
        if frame.kind is FrameKind.EAGER:
            cost += params.recv_overhead
            cost += self.cache.access_time(req.bufkey, frame.nbytes)
            yield from self._progress_delay(cost)
            self._complete_recv(req, frame.envelope, frame.nbytes,
                                frame.payload)
        else:  # RTS matched a posted receive: grant the send
            req._pending_envelope = frame.envelope
            yield from self._progress_delay(cost + self.costs.post_cost)
            cts = Frame(FrameKind.CTS, self.rank, frame.src_rank,
                        nbytes=frame.nbytes, sreq=frame.sreq, rreq=req)
            self.transmit(frame.src_rank, 0, cts)

    def _handle_cts(self, frame: Frame):
        """Sender side: receiver granted the rendezvous — push the data."""
        sreq: SendRequest = frame.sreq
        params = self.fabric.params_between(self.rank, frame.src_rank)
        yield from self._progress_delay(
            self.costs.post_cost + params.rendezvous_overhead)
        data = Frame(FrameKind.RDATA, self.rank, frame.src_rank,
                     nbytes=sreq.nbytes, rreq=frame.rreq,
                     payload=sreq._payload)
        tx = self.transmit(frame.src_rank, sreq.nbytes, data)
        tx.injected.callbacks.append(
            lambda ev, r=sreq: self._complete_send(r))

    def _handle_rdata(self, frame: Frame):
        req: RecvRequest = frame.rreq
        params = self.fabric.params_between(frame.src_rank, self.rank)
        # Rendezvous data lands directly in the user buffer (zero-copy).
        yield from self._progress_delay(params.recv_overhead)
        self.cache.touch(req.bufkey, frame.nbytes)
        env = getattr(req, "_pending_envelope", None)
        source = env.source if env else frame.src_rank
        tag = env.tag if env else req.tag
        self._complete_recv(
            req, Envelope(source, tag, getattr(req, "_comm_id", 0)),
            frame.nbytes, frame.payload)

    def _handle_pdata(self, frame: Frame):
        """A partition landed: no matching — direct hand-off to the bound
        partitioned receive request."""
        params = self.fabric.params_between(frame.src_rank, self.rank)
        preq = frame.preq
        cost = params.recv_overhead
        if preq.impl == "mpipcl" and params.is_eager(frame.nbytes):
            # Eager internal messages are copied out of the bounce buffer;
            # rendezvous/native partitions land zero-copy.
            cost += self.cache.access_time(
                f"{preq.bufkey}.p{frame.partition}", frame.nbytes)
        else:
            self.cache.touch(f"{preq.bufkey}.p{frame.partition}",
                             frame.nbytes)
        yield from self._progress_delay(cost)
        preq._partition_arrived(frame.epoch, frame.partition, self.sim.now,
                                frame.payload)

    def _handle_pcts(self, frame: Frame):
        """Sender side of a rendezvous partition: push the partition data."""
        params = self.fabric.params_between(self.rank, frame.src_rank)
        yield from self._progress_delay(
            self.costs.post_cost + params.rendezvous_overhead)
        data = Frame(FrameKind.PDATA, self.rank, frame.src_rank,
                     nbytes=frame.nbytes, preq=frame.preq,
                     partition=frame.partition, epoch=frame.epoch)
        tx = self.transmit(frame.src_rank, frame.nbytes, data)
        psreq, partition, epoch = frame.sreq, frame.partition, frame.epoch
        tx.injected.callbacks.append(
            lambda ev: psreq._partition_injected(epoch, partition,
                                                 self.sim.now))

    # ------------------------------------------------------------------
    # completion helpers
    # ------------------------------------------------------------------
    def _complete_send(self, req: SendRequest) -> None:
        req._finish(self.sim.now, source=self.rank, tag=req.tag,
                    nbytes=req.nbytes)
        self.obs.emit(SEND_COMPLETE, self.sim.now, self.rank, req.dest,
                      req.tag, req.nbytes)

    def _complete_recv(self, req: RecvRequest, envelope: Envelope,
                       nbytes: int, payload: Any) -> None:
        req._finish(self.sim.now, source=envelope.source, tag=envelope.tag,
                    nbytes=nbytes, payload=payload)
        self.obs.emit(RECV_COMPLETE, self.sim.now, self.rank,
                      envelope.source, envelope.tag, nbytes)

    @staticmethod
    def _check_truncation(req: RecvRequest, frame: Frame) -> None:
        if frame.nbytes > req.nbytes:
            raise TruncationError(
                f"message of {frame.nbytes} B overflows receive buffer "
                f"of {req.nbytes} B (tag {frame.envelope.tag})")
