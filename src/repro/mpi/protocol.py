"""Wire-protocol frames exchanged between simulated ranks.

The runtime speaks a small protocol modelled on UCX-class transports:

* ``EAGER`` — envelope + data in one message; sender completes on injection.
* ``RTS`` / ``CTS`` / ``RDATA`` — rendezvous for messages above the eager
  threshold: request-to-send, clear-to-send once the receive is matched,
  then the bulk data.
* ``PDATA`` / ``PRTS`` / ``PCTS`` — partitioned-partition transfers.  These
  carry a *direct reference* to the peer partitioned request (matching was
  performed once at init time), so the receiver never searches a queue —
  the defining software advantage of partitioned communication.
* ``ACK`` — reliable-transport acknowledgement, only exchanged in lossy
  mode (``repro.faults``): confirms receipt of the frame whose sender
  sequence number it echoes in ``seq``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from .matching import Envelope

__all__ = ["FrameKind", "Frame"]


class FrameKind(enum.Enum):
    """Discriminator for protocol frames."""

    EAGER = "eager"
    RTS = "rts"
    CTS = "cts"
    RDATA = "rdata"
    PDATA = "pdata"
    PRTS = "prts"
    PCTS = "pcts"
    ACK = "ack"


@dataclass
class Frame:
    """One protocol message.

    Only the fields relevant to the frame's kind are populated:

    * matching frames (EAGER/RTS) carry an :class:`Envelope`;
    * rendezvous frames carry ``sreq`` (sender request) and, on the CTS /
      RDATA legs, the matched receive request ``rreq``;
    * partitioned frames carry ``preq`` (the *receiver-side* partitioned
      request bound at init), ``partition`` and ``epoch``.
    """

    kind: FrameKind
    src_rank: int
    dst_rank: int
    nbytes: int = 0
    envelope: Optional[Envelope] = None
    payload: Any = None
    sreq: Any = None
    rreq: Any = None
    preq: Any = None
    partition: int = -1
    epoch: int = -1
    #: Reliable-transport sequence number (lossy mode only).  -1 means the
    #: frame is untracked; ACK frames echo the acknowledged sequence here.
    seq: int = -1

    def control_size(self) -> int:
        """Bytes this frame occupies on the wire when it is pure control."""
        return 0 if self.kind in (FrameKind.EAGER, FrameKind.RDATA,
                                  FrameKind.PDATA) else 1
