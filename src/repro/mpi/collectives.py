"""Collective operations built from point-to-point messages.

Timing-level implementations of the collectives the pattern benchmarks and
the proxy application need: dissemination barrier, binomial broadcast,
recursive-doubling allreduce (with a naive fallback off powers of two), and
a ring allgather.  Each collective draws its tags from a reserved internal
tag space, sequenced per communicator so back-to-back collectives never
cross-match.
"""

from __future__ import annotations

from typing import Any

from ..errors import MPIError
from .request import waitall

__all__ = ["INTERNAL_TAG_BASE", "barrier", "bcast", "allreduce",
           "allgather", "reduce", "gather", "scatter"]

#: Tags at or above this value are reserved for internal (collective) use.
INTERNAL_TAG_BASE = 1 << 28
#: Tag stride reserved per collective invocation (max rounds per op).
_MAX_ROUNDS = 64


def _coll_tag(comm, round_idx: int) -> int:
    if round_idx >= _MAX_ROUNDS:  # pragma: no cover - 2**64 ranks needed
        raise MPIError("collective exceeded the reserved round budget")
    return INTERNAL_TAG_BASE + comm._coll_seq * _MAX_ROUNDS + round_idx


def barrier(comm, tc):
    """Generator: dissemination barrier over ``comm``.

    ``ceil(log2(size))`` rounds; in round ``k`` rank ``r`` signals
    ``r + 2**k`` and waits for ``r - 2**k`` (mod size).
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    comm._coll_seq += 1
    dist, round_idx = 1, 0
    while dist < size:
        tag = _coll_tag(comm, round_idx)
        sreq = yield from comm.isend(tc, (rank + dist) % size, tag, 1)
        rreq = yield from comm.irecv(tc, (rank - dist) % size, tag, 1)
        yield from comm.proc.blocking_wait(
            tc, waitall(comm.sim, [sreq, rreq]))
        dist <<= 1
        round_idx += 1


def bcast(comm, tc, root: int, nbytes: int, payload: Any = None):
    """Generator: binomial-tree broadcast; returns the payload at every rank."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MPIError(f"bcast root {root} out of range")
    comm._coll_seq += 1
    if size == 1:
        return payload
    vrank = (rank - root) % size
    # Receive phase: find the bit that names our parent.
    mask, round_idx = 1, 0
    while mask < size:
        if vrank & mask:
            src = ((vrank ^ mask) + root) % size
            status = yield from comm.recv(tc, src, _coll_tag(comm, round_idx),
                                          nbytes)
            payload = status.payload
            break
        mask <<= 1
        round_idx += 1
    # Send phase: relay to children below our bit.
    mask >>= 1
    while mask >= 1:
        round_idx -= 1
        if vrank + mask < size and not (vrank & mask):
            dst = ((vrank | mask) + root) % size
            yield from comm.send(tc, dst, _coll_tag(comm, round_idx), nbytes,
                                 payload=payload)
        mask >>= 1
    return payload


def allreduce(comm, tc, nbytes: int, value: float = 0.0, op=None):
    """Generator: allreduce of a scalar ``value`` carried on ``nbytes``
    messages; returns the reduced value at every rank.

    Power-of-two sizes use recursive doubling; otherwise a gather-to-zero
    plus broadcast fallback (documented simplification — the patterns only
    need timing fidelity, not an optimal non-power-of-two algorithm).
    """
    size, rank = comm.size, comm.rank
    op = op or (lambda a, b: a + b)
    if size == 1:
        return value
    if size & (size - 1) == 0:
        comm._coll_seq += 1
        acc = value
        mask, round_idx = 1, 0
        while mask < size:
            partner = rank ^ mask
            tag = _coll_tag(comm, round_idx)
            sreq = yield from comm.isend(tc, partner, tag, nbytes,
                                         payload=acc)
            rreq = yield from comm.irecv(tc, partner, tag, nbytes)
            yield from comm.proc.blocking_wait(
                tc, waitall(comm.sim, [sreq, rreq]))
            acc = op(acc, rreq.status.payload)
            mask <<= 1
            round_idx += 1
        return acc
    # Fallback: reduce at root 0, then broadcast.
    comm._coll_seq += 1
    tag = _coll_tag(comm, 0)
    if rank == 0:
        acc = value
        for src in range(1, size):
            status = yield from comm.recv(tc, src, tag, nbytes)
            acc = op(acc, status.payload)
    else:
        yield from comm.send(tc, 0, tag, nbytes, payload=value)
        acc = None
    acc = yield from bcast(comm, tc, 0, nbytes, payload=acc)
    return acc


def allgather(comm, tc, nbytes: int, value: Any = None):
    """Generator: ring allgather; returns the list of every rank's value."""
    size, rank = comm.size, comm.rank
    out = [None] * size
    out[rank] = value
    if size == 1:
        return out
    comm._coll_seq += 1
    right = (rank + 1) % size
    left = (rank - 1) % size
    held_idx, held = rank, value
    for step in range(size - 1):
        tag = _coll_tag(comm, step)
        sreq = yield from comm.isend(tc, right, tag, nbytes,
                                     payload=(held_idx, held))
        rreq = yield from comm.irecv(tc, left, tag, nbytes)
        yield from comm.proc.blocking_wait(
            tc, waitall(comm.sim, [sreq, rreq]))
        held_idx, held = rreq.status.payload
        out[held_idx] = held
    return out


def reduce(comm, tc, root: int, nbytes: int, value: Any = 0.0, op=None):
    """Generator: binomial-tree reduction toward ``root``; returns the
    reduced value at the root and ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MPIError(f"reduce root {root} out of range")
    op = op or (lambda a, b: a + b)
    comm._coll_seq += 1
    if size == 1:
        return value
    vrank = (rank - root) % size
    acc = value
    mask, round_idx = 1, 0
    # Mirror image of the binomial bcast: children send up their partial
    # results, parents fold them in.
    while mask < size:
        if vrank & mask:
            dst = ((vrank ^ mask) + root) % size
            yield from comm.send(tc, dst, _coll_tag(comm, round_idx),
                                 nbytes, payload=acc)
            return None
        partner = vrank | mask
        if partner < size:
            src = (partner + root) % size
            status = yield from comm.recv(tc, src,
                                          _coll_tag(comm, round_idx),
                                          nbytes)
            acc = op(acc, status.payload)
        mask <<= 1
        round_idx += 1
    return acc


def gather(comm, tc, root: int, nbytes: int, value: Any = None):
    """Generator: linear gather; returns the list of contributions at the
    root and ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MPIError(f"gather root {root} out of range")
    comm._coll_seq += 1
    tag = _coll_tag(comm, 0)
    if rank == root:
        out = [None] * size
        out[root] = value
        for _ in range(size - 1):
            status = yield from comm.recv(tc, -1, tag, nbytes)
            src, payload = status.payload
            out[src] = payload
        return out
    yield from comm.send(tc, root, tag, nbytes, payload=(rank, value))
    return None


def scatter(comm, tc, root: int, nbytes: int, values=None):
    """Generator: linear scatter; returns this rank's share.

    ``values`` (a per-rank list) is only meaningful at the root.
    """
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MPIError(f"scatter root {root} out of range")
    comm._coll_seq += 1
    tag = _coll_tag(comm, 0)
    if rank == root:
        if values is None or len(values) != size:
            raise MPIError(
                f"scatter root needs one value per rank, got {values!r}")
        for dst in range(size):
            if dst != root:
                yield from comm.send(tc, dst, tag, nbytes,
                                     payload=values[dst])
        return values[root]
    status = yield from comm.recv(tc, root, tag, nbytes)
    return status.payload
