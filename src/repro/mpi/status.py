"""Receive status, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Status"]


@dataclass
class Status:
    """Completion information attached to a finished receive.

    Attributes
    ----------
    source / tag:
        The actual envelope values (resolves wildcards).
    nbytes:
        Size of the received message (``MPI_Get_count`` analogue).
    payload:
        The transferred payload object, when the sender attached one; the
        timing simulation itself never requires payloads, but tests use them
        to verify matching semantics end-to-end.
    completed_at:
        Simulation time the receive completed.
    """

    source: int = -1
    tag: int = -1
    nbytes: int = 0
    payload: Optional[Any] = None
    completed_at: float = float("nan")
    #: True when the operation was cancelled rather than matched
    #: (``MPI_Test_cancelled`` analogue).
    cancelled: bool = False
