"""Communicator: the application-facing MPI handle of one rank.

A :class:`Communicator` is bound to one rank's :class:`MPIProcess` (as in a
real MPI program, where ``MPI_COMM_WORLD`` is a per-process handle onto
shared state).  All verbs are generators invoked with ``yield from`` by a
simulated thread, taking that thread's :class:`ThreadContext` as the first
argument so costs, locks and NUMA penalties land on the right actor.

Verbs
-----
point-to-point
    ``send`` / ``recv`` (blocking), ``isend`` / ``irecv`` (nonblocking),
    ``sendrecv``, ``send_init`` / ``recv_init`` (persistent).
partitioned
    ``psend_init`` / ``precv_init`` — MPI 4.0 partitioned transfers; the
    once-only matching happens inside these calls through the cluster's
    registry.
collectives
    ``barrier``, ``bcast``, ``allreduce``, ``allgather``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import MPIError
from ..partitioned import (IMPL_MPIPCL, PartitionedRecvRequest,
                           PartitionedSendRequest)
from . import collectives as _coll
from .constants import ANY_SOURCE, ANY_TAG
from .persistent import PersistentRecv, PersistentSend
from .process import MPIProcess
from .request import waitall
from .status import Status

__all__ = ["Communicator"]


class Communicator:
    """One rank's handle on a communication context.

    Parameters
    ----------
    cluster:
        The owning :class:`~repro.mpi.cluster.Cluster` (supplies the
        partitioned-init registry and communicator-id allocation).
    proc:
        This rank's MPI engine.
    comm_id:
        Context id; messages never match across different ids.
    size:
        Number of ranks in the communicator (always the world size here —
        sub-communicators are future work, as in the paper's suite).
    """

    def __init__(self, cluster, proc: MPIProcess, comm_id: int, size: int):
        self.cluster = cluster
        self.proc = proc
        self.comm_id = comm_id
        self.size = size
        self._ndups = 0
        self._coll_seq = 0

    @property
    def rank(self) -> int:
        """This process's rank."""
        return self.proc.rank

    @property
    def sim(self):
        """The simulation kernel."""
        return self.proc.sim

    def _check_peer(self, peer: int, wildcard_ok: bool = False) -> None:
        if wildcard_ok and peer == ANY_SOURCE:
            return
        if not (0 <= peer < self.size):
            raise MPIError(f"peer rank {peer} out of range [0, {self.size})")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, tc, dest: int, tag: int, nbytes: int,
              payload: Any = None, bufkey: Optional[str] = None):
        """Generator: nonblocking send; returns a request."""
        self._check_peer(dest)
        req = yield from self.proc.isend(tc, self.comm_id, dest, tag,
                                         nbytes, payload, bufkey)
        return req

    def irecv(self, tc, source: int, tag: int, nbytes: int,
              bufkey: Optional[str] = None):
        """Generator: nonblocking receive (wildcards allowed); returns a
        request."""
        self._check_peer(source, wildcard_ok=True)
        req = yield from self.proc.irecv(tc, self.comm_id, source, tag,
                                         nbytes, bufkey)
        return req

    def send(self, tc, dest: int, tag: int, nbytes: int,
             payload: Any = None, bufkey: Optional[str] = None):
        """Generator: blocking send (isend + wait); returns the request."""
        req = yield from self.isend(tc, dest, tag, nbytes, payload, bufkey)
        yield from self.proc.blocking_wait(tc, req.wait())
        return req

    def recv(self, tc, source: int, tag: int, nbytes: int,
             bufkey: Optional[str] = None) -> Status:
        """Generator: blocking receive; returns the :class:`Status`."""
        req = yield from self.irecv(tc, source, tag, nbytes, bufkey)
        yield from self.proc.blocking_wait(tc, req.wait())
        return req.status

    def cancel(self, tc, request):
        """Generator: ``MPI_Cancel`` a pending receive; returns True when
        the receive was still unmatched and has been withdrawn."""
        result = yield from self.proc.cancel_recv(tc, request)
        return result

    def wait(self, tc, request):
        """Generator: blocking ``MPI_Wait`` on one request.

        Unlike yielding ``request.wait()`` directly, this counts the thread
        as spin-waiting inside the library, which under ``MULTIPLE``
        contends with the progress engine — the behaviour real
        multi-threaded MPI codes suffer from.
        """
        yield from self.proc.blocking_wait(tc, request.wait())
        return request

    def wait_all(self, tc, requests):
        """Generator: blocking ``MPI_Waitall``; see :meth:`wait`."""
        yield from self.proc.blocking_wait(
            tc, waitall(self.sim, list(requests)))
        return list(requests)

    def sendrecv(self, tc, dest: int, send_tag: int, send_nbytes: int,
                 source: int, recv_tag: int, recv_nbytes: int,
                 payload: Any = None):
        """Generator: combined send+receive (deadlock-free); returns the
        receive status."""
        sreq = yield from self.isend(tc, dest, send_tag, send_nbytes,
                                     payload)
        rreq = yield from self.irecv(tc, source, recv_tag, recv_nbytes)
        yield from self.proc.blocking_wait(
            tc, waitall(self.sim, [sreq, rreq]))
        return rreq.status

    # ------------------------------------------------------------------
    # persistent point-to-point
    # ------------------------------------------------------------------
    def send_init(self, tc, dest: int, tag: int, nbytes: int,
                  payload: Any = None,
                  bufkey: Optional[str] = None) -> PersistentSend:
        """Generator: create a persistent send handle (``MPI_Send_init``)."""
        self._check_peer(dest)
        yield from self.proc._mpi_entry(tc, self.proc.costs.call_overhead)
        return PersistentSend(self, dest, tag, nbytes, payload, bufkey)

    def recv_init(self, tc, source: int, tag: int, nbytes: int,
                  bufkey: Optional[str] = None) -> PersistentRecv:
        """Generator: create a persistent receive handle."""
        self._check_peer(source, wildcard_ok=True)
        yield from self.proc._mpi_entry(tc, self.proc.costs.call_overhead)
        return PersistentRecv(self, source, tag, nbytes, bufkey)

    # ------------------------------------------------------------------
    # partitioned point-to-point (MPI 4.0)
    # ------------------------------------------------------------------
    def psend_init(self, tc, dest: int, tag: int, nbytes: int,
                   partitions: int, impl: str = IMPL_MPIPCL,
                   bufkey: Optional[str] = None) -> PartitionedSendRequest:
        """Generator: ``MPI_Psend_init``.

        Must be called from serial code (single thread per the standard);
        matching with the peer's ``precv_init`` happens here, through the
        cluster registry, in posting order — no wildcards.
        """
        self._check_peer(dest)
        if tag in (ANY_TAG,):
            raise MPIError("partitioned communication forbids wildcards")
        req = PartitionedSendRequest(self.proc, self.comm_id, dest, tag,
                                     nbytes, partitions, impl, bufkey)
        cost = (self.proc.costs.partitioned_setup
                + partitions * self.proc.costs.post_cost)
        yield from self.proc._mpi_entry(tc, cost)
        self.cluster._register_partitioned(req, is_send=True)
        return req

    def precv_init(self, tc, source: int, tag: int, nbytes: int,
                   partitions: int, impl: str = IMPL_MPIPCL,
                   bufkey: Optional[str] = None) -> PartitionedRecvRequest:
        """Generator: ``MPI_Precv_init`` (see :meth:`psend_init`)."""
        self._check_peer(source)
        if tag in (ANY_TAG,):
            raise MPIError("partitioned communication forbids wildcards")
        req = PartitionedRecvRequest(self.proc, self.comm_id, source, tag,
                                     nbytes, partitions, impl, bufkey)
        cost = (self.proc.costs.partitioned_setup
                + partitions * self.proc.costs.post_cost)
        yield from self.proc._mpi_entry(tc, cost)
        self.cluster._register_partitioned(req, is_send=False)
        return req

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self, tc):
        """Generator: dissemination barrier."""
        yield from _coll.barrier(self, tc)

    def bcast(self, tc, root: int, nbytes: int, payload: Any = None):
        """Generator: binomial broadcast; returns the payload everywhere."""
        result = yield from _coll.bcast(self, tc, root, nbytes, payload)
        return result

    def allreduce(self, tc, nbytes: int, value: float = 0.0, op=None):
        """Generator: allreduce; returns the reduced value everywhere."""
        result = yield from _coll.allreduce(self, tc, nbytes, value, op)
        return result

    def allgather(self, tc, nbytes: int, value: Any = None):
        """Generator: allgather; returns the list of contributions."""
        result = yield from _coll.allgather(self, tc, nbytes, value)
        return result

    def reduce(self, tc, root: int, nbytes: int, value: Any = 0.0,
               op=None):
        """Generator: reduction toward ``root``; non-roots return None."""
        result = yield from _coll.reduce(self, tc, root, nbytes, value, op)
        return result

    def gather(self, tc, root: int, nbytes: int, value: Any = None):
        """Generator: gather to ``root``; non-roots return None."""
        result = yield from _coll.gather(self, tc, root, nbytes, value)
        return result

    def scatter(self, tc, root: int, nbytes: int, values=None):
        """Generator: scatter from ``root``; returns this rank's share."""
        result = yield from _coll.scatter(self, tc, root, nbytes, values)
        return result

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def dup(self) -> "Communicator":
        """Duplicate this communicator into a fresh matching context.

        Collective: every rank must dup the same communicator in the same
        order, which is what makes the derived ids agree across ranks.
        """
        self._ndups += 1
        new_id = self.cluster._dup_comm_id(self.comm_id, self._ndups)
        return Communicator(self.cluster, self.proc, new_id, self.size)
