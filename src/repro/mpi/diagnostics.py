"""Runtime diagnostics: where did the simulated time and contention go?

The paper positions its suite as "a tool for developers to evaluate their
designs".  This module turns the substrate's built-in accounting — library
lock contention, matching-queue depths and scan counts, NIC utilization,
cache behaviour — into one per-rank report, so a design change (say, a
different pready cost or binding policy) can be judged by *why* it moved
the metrics, not just by how much.  When the run was made under
:func:`repro.analysis.enable_checking`, each rank's row also carries its
dynamic-checker verdict (a ``checks`` column: ``ok`` or the finding
count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs import CounterSink
from ..sim import MutexStats

__all__ = ["RankDiagnostics", "cluster_report", "collect_diagnostics"]


@dataclass(frozen=True)
class RankDiagnostics:
    """One rank's accounting snapshot."""

    rank: int
    lock_acquisitions: int
    lock_contention_ratio: float
    lock_wait_time: float
    lock_hold_time: float
    posted_matches: int
    unexpected_matches: int
    elements_scanned: int
    max_posted_depth: int
    max_unexpected_depth: int
    nic_messages: int
    nic_bytes: int
    nic_busy_time: float
    nic_max_queue: int
    cache_hit_ratio: float
    cache_invalidations: int
    #: Findings the dynamic checker attributed to this rank (0 when the
    #: cluster ran without :func:`repro.analysis.enable_checking`).
    checker_findings: int = 0
    #: Instrumentation events attributed to this rank by a
    #: :class:`repro.obs.CounterSink` (0 when none was subscribed).
    events_observed: int = 0

    @property
    def mean_scan_length(self) -> float:
        """Average queue elements walked per match attempt."""
        attempts = self.posted_matches + self.unexpected_matches
        return self.elements_scanned / attempts if attempts else 0.0


def collect_diagnostics(
        cluster,
        counters: Optional[CounterSink] = None) -> List[RankDiagnostics]:
    """Snapshot every rank's counters from a (finished) cluster run.

    Pass the :class:`repro.obs.CounterSink` that observed the run to
    fold per-rank event totals into the snapshot.
    """
    out: List[RankDiagnostics] = []
    checker = getattr(cluster, "checker", None)
    for proc in cluster.procs:
        lock: MutexStats = proc.lock.stats
        match = proc.matching.stats
        nic = proc.nic.stats
        cache = proc.cache.stats
        n_findings = (len(checker.findings_for_rank(proc.rank))
                      if checker is not None else 0)
        out.append(RankDiagnostics(
            rank=proc.rank,
            lock_acquisitions=lock.acquisitions,
            lock_contention_ratio=lock.contention_ratio,
            lock_wait_time=lock.total_wait_time,
            lock_hold_time=lock.total_hold_time,
            posted_matches=match.posted_matches,
            unexpected_matches=match.unexpected_matches,
            elements_scanned=match.elements_scanned,
            max_posted_depth=match.max_posted_depth,
            max_unexpected_depth=match.max_unexpected_depth,
            nic_messages=nic.messages,
            nic_bytes=nic.bytes,
            nic_busy_time=nic.busy_time,
            nic_max_queue=nic.max_queue,
            cache_hit_ratio=cache.hit_ratio,
            cache_invalidations=cache.invalidations,
            checker_findings=n_findings,
            events_observed=(sum(counters.rank_counts(proc.rank).values())
                             if counters is not None else 0),
        ))
    return out


def cluster_report(cluster,
                   counters: Optional[CounterSink] = None) -> str:
    """Render the per-rank diagnostics as a text table.

    With a :class:`repro.obs.CounterSink` that observed the run, each
    rank's row gains an ``events`` column and a per-kind event-count
    table is appended.
    """
    from ..core.report import ascii_table  # local import: avoid cycle

    diags = collect_diagnostics(cluster, counters=counters)
    headers = ["rank", "lock acq", "contended", "lock wait",
               "matches (p/u)", "scan avg", "q depth (p/u)",
               "nic msgs", "nic MiB", "nic busy", "cache hit", "checks"]
    if counters is not None:
        headers.append("events")
    rows = []
    for d in diags:
        row = [
            str(d.rank),
            str(d.lock_acquisitions),
            f"{d.lock_contention_ratio * 100:.0f}%",
            f"{d.lock_wait_time * 1e3:.2f}ms",
            f"{d.posted_matches}/{d.unexpected_matches}",
            f"{d.mean_scan_length:.1f}",
            f"{d.max_posted_depth}/{d.max_unexpected_depth}",
            str(d.nic_messages),
            f"{d.nic_bytes / (1 << 20):.1f}",
            f"{d.nic_busy_time * 1e3:.2f}ms",
            f"{d.cache_hit_ratio * 100:.0f}%",
            "ok" if d.checker_findings == 0 else f"{d.checker_findings}!",
        ]
        if counters is not None:
            row.append(str(d.events_observed))
        rows.append(row)
    report = ascii_table(headers, rows,
                         title=f"cluster diagnostics at t="
                               f"{cluster.now * 1e3:.3f}ms")
    if counters is not None:
        count_rows = [[kind, str(rank), str(n)]
                      for kind, rank, n in counters.rows()]
        report += "\n\n" + ascii_table(
            ["event kind", "rank", "count"], count_rows,
            title=f"event counts ({counters.total} total)")
    return report
