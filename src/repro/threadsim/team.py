"""Simulated thread teams: contexts, workers, and fork/join.

A :class:`ThreadTeam` is the simulated analogue of an OpenMP parallel
region: each member runs a caller-supplied generator (the *worker*) as its
own kernel process, bound to a physical core chosen by the binding policy.
The team records when its last worker finished — the "thread join" moment
that anchors the paper's availability and early-bird metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..errors import SimulationError
from ..machine import ThreadBinding, scaled_compute_time
from ..obs.kinds import TEAM_JOIN, THREAD_COMPUTED
from ..sim import AllOf, Process, Simulator
from .openmp import DEFAULT_OPENMP_COSTS, OpenMPCosts

__all__ = ["ThreadContext", "ThreadTeam"]


class ThreadContext:
    """Identity of one simulated thread: who am I, where do I run.

    Every MPI verb takes the calling thread's context so threading-mode
    rules, the library lock, and NUMA injection penalties land on the right
    actor.  ``thread_id`` 0 with ``team=None`` denotes a rank's main thread.
    """

    def __init__(self, rank_ctx: Any, thread_id: int, core: int,
                 team: Optional["ThreadTeam"] = None):
        self.rank_ctx = rank_ctx
        self.thread_id = thread_id
        self.core = core
        self.team = team

    @property
    def sim(self) -> Simulator:
        """The kernel this thread lives in."""
        return self.rank_ctx.sim

    @property
    def rank(self) -> int:
        """The MPI rank this thread belongs to."""
        return self.rank_ctx.rank

    @property
    def share(self) -> int:
        """How many team threads time-share this thread's core."""
        if self.team is None:
            return 1
        return self.team.binding.oversubscription_factor(self.thread_id)

    def compute(self, seconds: float) -> Generator:
        """Generator: burn ``seconds`` of nominal CPU work on this thread.

        The wall-clock time is scaled for core oversubscription (time
        slicing plus context switches); callers add noise *before* calling,
        by inflating ``seconds`` with a sample from a noise model.
        """
        wall = scaled_compute_time(seconds, self.share,
                                   self.rank_ctx.spec)
        # Fault-plan per-rank slowdown (getattr: bare mock contexts in
        # tests carry no compute_scale and mean 1.0).
        scale = getattr(self.rank_ctx, "compute_scale", 1.0)
        if scale != 1.0:
            wall *= scale
        if wall > 0:
            yield self.sim.sleep(wall)
        self.rank_ctx.obs.emit(THREAD_COMPUTED, self.sim.now, self.rank,
                               self.thread_id, seconds, wall)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ThreadContext rank={self.rank} tid={self.thread_id} "
                f"core={self.core}>")


class ThreadTeam:
    """One parallel region: ``nthreads`` workers running concurrently.

    Created by :meth:`repro.mpi.cluster.RankContext.fork`; the workers start
    immediately.  ``join`` (a generator) blocks the caller until every
    worker returns, charges the implicit-barrier cost, and records
    :attr:`joined_at`.
    """

    def __init__(self, rank_ctx: Any, binding: ThreadBinding,
                 worker: Callable[[ThreadContext], Generator],
                 omp_costs: OpenMPCosts = DEFAULT_OPENMP_COSTS,
                 name: str = "team"):
        self.rank_ctx = rank_ctx
        self.binding = binding
        self.omp_costs = omp_costs
        self.name = name
        self.contexts: List[ThreadContext] = []
        self.processes: List[Process] = []
        #: Simulation time the join barrier completed (None until joined).
        self.joined_at: Optional[float] = None
        sim = rank_ctx.sim
        for tid in range(binding.nthreads):
            tc = ThreadContext(rank_ctx, tid, binding.core_of(tid), team=self)
            self.contexts.append(tc)
            proc = sim.process(worker(tc),
                               name=f"r{rank_ctx.rank}.{name}.t{tid}")
            self.processes.append(proc)

    @property
    def nthreads(self) -> int:
        """Team size."""
        return self.binding.nthreads

    def join(self) -> Generator:
        """Generator: wait for all workers, then pay the join barrier.

        Worker failures propagate to the joining caller.  Returns the join
        completion time.
        """
        if self.joined_at is not None:
            raise SimulationError(f"team {self.name} joined twice")
        sim = self.rank_ctx.sim
        yield AllOf(sim, [p for p in self.processes])
        yield sim.sleep(self.omp_costs.join_cost(self.nthreads))
        self.joined_at = sim.now
        self.rank_ctx.obs.emit(TEAM_JOIN, sim.now, self.rank_ctx.rank,
                               self.name, self.nthreads)
        return self.joined_at

    def results(self) -> List[Any]:
        """Return values of all workers (raises if any worker failed)."""
        out = []
        for p in self.processes:
            if not p.triggered:
                raise SimulationError(
                    f"worker {p.name} has not finished; join the team first")
            if not p.ok:
                raise p.value
            out.append(p.value)
        return out
