"""OpenMP-like runtime cost model for simulated parallel regions.

Fork/join overheads are the small fixed costs of ``#pragma omp parallel``:
waking the team and the implicit barrier at region end.  They matter for
the paper's metrics because the single-send model's "thread join" moment —
the reference point of the availability and early-bird metrics (§3.1.3,
§3.1.4) — includes exactly this barrier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["OpenMPCosts", "DEFAULT_OPENMP_COSTS"]


@dataclass(frozen=True)
class OpenMPCosts:
    """Fork/join costs of the simulated OpenMP runtime.

    Attributes
    ----------
    fork_base / fork_per_thread:
        Cost of opening a parallel region: a fixed wake-up plus a
        per-thread dispatch component.
    join_base / join_per_thread:
        Cost of the implicit end-of-region barrier once the last thread
        finishes.
    """

    fork_base: float = 1.5e-6
    fork_per_thread: float = 0.15e-6
    join_base: float = 1.0e-6
    join_per_thread: float = 0.10e-6

    def fork_cost(self, nthreads: int) -> float:
        """Seconds to open a region with ``nthreads`` threads."""
        if nthreads < 1:
            raise ConfigurationError(f"nthreads must be >= 1: {nthreads}")
        return self.fork_base + nthreads * self.fork_per_thread

    def join_cost(self, nthreads: int) -> float:
        """Seconds for the implicit barrier after the last thread finishes."""
        if nthreads < 1:
            raise ConfigurationError(f"nthreads must be >= 1: {nthreads}")
        return self.join_base + nthreads * self.join_per_thread


#: Defaults in line with measured ``omp parallel`` overheads on Skylake.
DEFAULT_OPENMP_COSTS = OpenMPCosts()
