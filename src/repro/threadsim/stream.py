"""Simulated device work queues (``cudaStream_t`` / ``sycl::queue`` analogue).

The paper's §6.1 lists triggering ``MPI_Pready`` from accelerator compute
kernels or task queues as future work.  This module provides the substrate
to prototype exactly that: an in-order :class:`DeviceStream` executes
kernels back to back; each kernel's completion can fire a host-side
callback or run a *trigger generator* — e.g. a lock-free native
``pready`` — without any host thread blocking on the device.

This is an extension beyond the paper's evaluation; the example
``examples/gpu_stream_partitioned.py`` and the tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..errors import ConfigurationError
from ..sim import Event, Simulator, Store
from .team import ThreadContext

__all__ = ["DeviceStream", "KernelHandle"]


@dataclass
class KernelHandle:
    """Handle on one enqueued kernel.

    ``done`` triggers when the kernel finishes on the device (after which
    any trigger generator has been *started*, not necessarily finished).
    """

    name: str
    duration: float
    done: Event


class DeviceStream:
    """An in-order device queue bound to one rank.

    Parameters
    ----------
    rank_ctx:
        The owning rank's context; the stream's trigger actor issues MPI
        calls as a pseudo-thread pinned to the NIC socket (device DMA
        engines do not pay the CPU's cross-socket penalty).
    launch_overhead:
        Host-side cost to enqueue one kernel (a launch is cheap but not
        free).
    queue_gap:
        Device-side gap between back-to-back kernels.
    """

    def __init__(self, rank_ctx: Any, launch_overhead: float = 4.0e-6,
                 queue_gap: float = 1.0e-6, name: str = "stream0"):
        if launch_overhead < 0 or queue_gap < 0:
            raise ConfigurationError("stream costs must be non-negative")
        self.rank_ctx = rank_ctx
        self.sim: Simulator = rank_ctx.sim
        self.launch_overhead = launch_overhead
        self.queue_gap = queue_gap
        self.name = name
        #: The device-side actor identity used for triggered MPI calls.
        device_core = (rank_ctx.spec.nic_socket
                       * rank_ctx.spec.cores_per_socket)
        self.device_tc = ThreadContext(rank_ctx, thread_id=0,
                                       core=device_core, team=None)
        self._queue: Store = Store(self.sim, name=f"{name}.q")
        self._inflight = 0
        self._idle = Event(self.sim)
        self._idle.succeed()
        self.kernels_completed = 0
        self.sim.process(self._device_loop(), name=f"r{rank_ctx.rank}.{name}")

    # -- host-side API ----------------------------------------------------
    def launch(self, tc, duration: float, name: str = "kernel",
               on_complete: Optional[Callable[[], Generator]] = None):
        """Generator: enqueue a kernel from host thread ``tc``.

        ``on_complete`` — if given — is a zero-argument callable returning
        a generator; it runs as its own simulated process when the kernel
        finishes (the device-triggered action, e.g. a ``pready``).
        Returns a :class:`KernelHandle` immediately after the (cheap)
        launch; the host never blocks on the device.
        """
        if duration < 0:
            raise ConfigurationError(f"negative kernel duration: {duration}")
        yield self.sim.sleep(self.launch_overhead)
        handle = KernelHandle(name=name, duration=duration,
                              done=Event(self.sim))
        if self._inflight == 0:
            self._idle = Event(self.sim)
        self._inflight += 1
        self._queue.put((handle, on_complete))
        return handle

    def synchronize(self, tc):
        """Generator: block the host thread until the stream drains
        (``cudaStreamSynchronize``)."""
        if self._inflight > 0:
            yield self._idle

    @property
    def pending(self) -> int:
        """Kernels launched but not yet completed."""
        return self._inflight

    # -- device side --------------------------------------------------------
    def _device_loop(self):
        while True:
            handle, on_complete = yield self._queue.get()
            if self.queue_gap > 0:
                yield self.sim.sleep(self.queue_gap)
            if handle.duration > 0:
                yield self.sim.sleep(handle.duration)
            self.kernels_completed += 1
            handle.done.succeed(self.sim.now)
            if on_complete is not None:
                self.sim.process(
                    on_complete(),
                    name=f"r{self.rank_ctx.rank}.{self.name}.trigger")
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.succeed(self.sim.now)
