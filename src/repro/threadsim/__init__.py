"""Simulated OpenMP-style threading: contexts, teams, fork/join costs."""

from .barrier import SimBarrier
from .openmp import DEFAULT_OPENMP_COSTS, OpenMPCosts
from .stream import DeviceStream, KernelHandle
from .team import ThreadContext, ThreadTeam

__all__ = [
    "SimBarrier",
    "DeviceStream",
    "KernelHandle",
    "DEFAULT_OPENMP_COSTS",
    "OpenMPCosts",
    "ThreadContext",
    "ThreadTeam",
]
