"""A reusable (generational) barrier for simulated thread teams.

Models the ``#pragma omp barrier`` inside a parallel region: the paper's
fork-join point-to-point motifs synchronize the team between their
receive and compute phases, which is precisely the synchronization
partitioned communication lets applications drop.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import Event, Simulator

__all__ = ["SimBarrier"]


class SimBarrier:
    """Counting barrier for ``parties`` simulated threads, reusable.

    Each generation completes when all parties have called :meth:`wait`
    (a generator to ``yield from``); the barrier then resets for the next
    generation, like ``pthread_barrier_t``.
    """

    def __init__(self, sim: Simulator, parties: int,
                 cost_per_party: float = 0.05e-6):
        if parties < 1:
            raise ConfigurationError(f"parties must be >= 1: {parties}")
        self.sim = sim
        self.parties = parties
        #: Simulated cost of the barrier's notification fan-out, charged to
        #: the last arriver.
        self.cost_per_party = cost_per_party
        self._count = 0
        self._generation = 0
        self._event = Event(sim)

    @property
    def waiting(self) -> int:
        """Threads currently blocked in the barrier."""
        return self._count

    def wait(self):
        """Generator: block until all parties of this generation arrive."""
        self._count += 1
        if self._count == self.parties:
            # Last arriver releases everyone and pays the fan-out cost.
            self._count = 0
            self._generation += 1
            event, self._event = self._event, Event(self.sim)
            cost = self.cost_per_party * self.parties
            if cost > 0:
                yield self.sim.sleep(cost)
            event.succeed(self._generation)
        else:
            yield self._event
