"""Network parameter model (LogGP-style) and calibrated presets.

All first-order effects the paper analyses live in these parameters:

* per-message costs (``send_overhead``, ``recv_overhead``, ``injection_gap``)
  make small messages latency-bound, so splitting a message into ``n``
  partitions costs ~``n``× for tiny sizes (Fig. 4);
* ``bandwidth`` with per-packet ``header_bytes`` bounds large transfers, so
  splitting is nearly free for big messages (overhead → 1);
* the eager/rendezvous ``eager_threshold`` adds a handshake to large sends;
* ``match_cost`` models the per-element message-queue search that partitioned
  communication avoids by matching once at init time.

The :data:`NIAGARA_EDR` preset is calibrated against the published
characteristics of EDR InfiniBand (100 Gb/s, ~1 µs) on a single Dragonfly+
wing (one switch between any two endpoints), per the paper's §4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["NetworkParams", "NIAGARA_EDR", "INTRA_NODE", "validate_params"]


@dataclass(frozen=True)
class NetworkParams:
    """Static description of one network path type.

    Attributes
    ----------
    latency:
        One-way end-to-end base latency in seconds (NIC-to-NIC through the
        minimal route), excluding per-hop switch latency.
    switch_hop_latency:
        Added per switch traversed.
    bandwidth:
        Link bandwidth in bytes/second.
    mtu:
        Maximum payload per packet; each packet adds ``header_bytes`` of
        protocol framing onto the wire.
    header_bytes:
        Per-packet framing overhead (headers + CRC).
    send_overhead / recv_overhead:
        CPU time a process spends injecting / draining one message (the
        LogGP ``o`` parameters).
    injection_gap:
        Minimum NIC-side spacing between consecutive message injections (the
        LogGP ``g``); serializes many small partition messages.
    eager_threshold:
        Messages at or below this size use the eager protocol (sender
        completes on injection); larger ones use rendezvous.
    rendezvous_overhead:
        Extra CPU+NIC cost of the RTS/CTS handshake, on top of the extra
        round trip paid in latency.
    match_cost:
        Receiver-side cost *per queue element searched* when matching an
        incoming message against the posted-receive queue (Dosanjh et al.'s
        matching-cost observations); partitioned traffic bypasses the search
        after init.
    min_message_bytes:
        Smallest unit accounted on the wire (control messages use this).
    """

    latency: float = 0.9e-6
    switch_hop_latency: float = 0.11e-6
    bandwidth: float = 11.0e9
    mtu: int = 4096
    header_bytes: int = 64
    send_overhead: float = 0.35e-6
    recv_overhead: float = 0.35e-6
    injection_gap: float = 0.20e-6
    eager_threshold: int = 16 * 1024
    rendezvous_overhead: float = 0.6e-6
    match_cost: float = 30e-9
    min_message_bytes: int = 16

    def __post_init__(self) -> None:
        # Fail at construction: an invalid override (bandwidth=0, mtu=0)
        # must not survive until wire_time divides by it mid-sweep.
        validate_params(self)

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on the link, incl. packet headers."""
        if nbytes < 0:
            raise ConfigurationError(f"negative message size: {nbytes}")
        payload = max(nbytes, self.min_message_bytes)
        packets = max(1, math.ceil(payload / self.mtu))
        return (payload + packets * self.header_bytes) / self.bandwidth

    def path_latency(self, hops: int = 1) -> float:
        """One-way latency across ``hops`` switches."""
        if hops < 0:
            raise ConfigurationError(f"negative hop count: {hops}")
        return self.latency + hops * self.switch_hop_latency

    def is_eager(self, nbytes: int) -> bool:
        """True when a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold

    def regime(self, nbytes: int) -> str:
        """Protocol regime of an ``nbytes`` message: eager or rendezvous."""
        return "eager" if self.is_eager(nbytes) else "rendezvous"

    def control_frame_time(self) -> float:
        """NIC service time of a zero-payload control frame (RTS/CTS/PRTS).

        Control frames carry no payload but still occupy the injection
        port for one gap plus the minimum-frame serialization time.
        """
        return self.injection_gap + self.wire_time(0)

    def with_overrides(self, **kwargs) -> "NetworkParams":
        """Copy with fields replaced — used by protocol/lock ablations.

        ``replace`` re-runs ``__post_init__``, so an invalid override
        raises :class:`~repro.errors.ConfigurationError` immediately.
        """
        return replace(self, **kwargs)


def validate_params(params: NetworkParams) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on nonsense values."""
    if params.latency < 0 or params.switch_hop_latency < 0:
        raise ConfigurationError("latencies must be non-negative")
    if params.bandwidth <= 0:
        raise ConfigurationError("bandwidth must be positive")
    if params.mtu < 1:
        raise ConfigurationError("mtu must be >= 1 byte")
    if params.header_bytes < 0:
        raise ConfigurationError("header_bytes must be non-negative")
    if min(params.send_overhead, params.recv_overhead,
           params.injection_gap, params.rendezvous_overhead,
           params.match_cost) < 0:
        raise ConfigurationError("overheads must be non-negative")
    if params.eager_threshold < 0:
        raise ConfigurationError("eager_threshold must be non-negative")
    if params.min_message_bytes < 1:
        raise ConfigurationError("min_message_bytes must be >= 1")


#: EDR InfiniBand on one Dragonfly+ wing (paper §4.1): 100 Gb/s class link,
#: ~1 µs end-to-end, a single switch between any two endpoints.
NIAGARA_EDR = NetworkParams()

#: Shared-memory transport between ranks on the same node: lower latency,
#: memory-copy bandwidth, no packet headers worth modelling.
INTRA_NODE = NetworkParams(
    latency=0.25e-6,
    switch_hop_latency=0.0,
    bandwidth=9.0e9,
    mtu=1 << 30,
    header_bytes=0,
    send_overhead=0.25e-6,
    recv_overhead=0.25e-6,
    injection_gap=0.10e-6,
    eager_threshold=8 * 1024,
    rendezvous_overhead=0.3e-6,
)
