"""Network substrate: LogGP-style parameters, fabric routing, and NICs.

The model is deliberately first-order — per-message overheads, per-packet
headers, a serializing injection engine, and a one-switch Dragonfly+ wing —
because those are exactly the mechanisms the paper's analysis appeals to
(latency-bound small messages, header cost of splitting, NIC serialization
of partition trains, eager vs rendezvous knees).
"""

from .fabric import Fabric, Placement
from .model import INTRA_NODE, NIAGARA_EDR, NetworkParams, validate_params
from .nic import NIC, NICStats, Transmission

__all__ = [
    "Fabric",
    "Placement",
    "INTRA_NODE",
    "NIAGARA_EDR",
    "NetworkParams",
    "validate_params",
    "NIC",
    "NICStats",
    "Transmission",
]
