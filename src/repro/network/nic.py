"""Network-interface model: a serializing injection engine per rank.

Each rank owns one NIC.  Message injections queue FIFO on the NIC's
transmit engine; each occupies the engine for ``injection_gap + wire_time``
(LogGP's ``g`` plus serialization).  This is the mechanism behind two of the
paper's observations:

* many small partition messages serialize on the gap, producing the ~n×
  small-message overhead of Fig. 4;
* once transfers outlast the noise-induced stagger between ``MPI_Pready``
  calls, the *last* partition queues behind earlier ones, producing the
  perceived-bandwidth decline at large sizes in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..obs import EventBus
from ..obs.kinds import NIC_TX_DONE, NIC_TX_START
from ..sim import Event, Simulator, Store

__all__ = ["Transmission", "NIC", "NICStats"]


@dataclass
class Transmission:
    """One message handed to a NIC for injection.

    Attributes
    ----------
    dst_rank:
        Destination rank (routing is resolved by the cluster's deliver hook).
    nbytes:
        Payload size used for accounting.
    wire_time:
        Pre-computed serialization time on this path.
    gap:
        Minimum inter-message injection spacing (LogGP ``g``) charged to the
        transmit engine before serialization starts.
    latency:
        Pre-computed one-way propagation latency on this path.
    payload:
        Opaque object handed to the destination's inbox (protocol frames).
    injected:
        Event triggered when the NIC finishes injecting (sender-side
        completion point for eager sends).
    """

    dst_rank: int
    nbytes: int
    wire_time: float
    latency: float
    payload: Any
    gap: float = 0.0
    injected: Optional[Event] = None


@dataclass
class NICStats:
    """Aggregate NIC accounting, exposed for tests and reports."""

    messages: int = 0
    bytes: int = 0
    busy_time: float = 0.0
    max_queue: int = 0


class NIC:
    """FIFO transmit engine for one rank.

    Parameters
    ----------
    sim:
        The simulation kernel.
    rank:
        Owning rank (for tracing).
    deliver:
        Callback ``deliver(dst_rank, payload)`` invoked at the destination's
        side when a message finishes propagating.
    obs:
        Instrumentation bus ``nic.tx_*`` events go to; a private empty bus
        when omitted, so standalone NICs stay valid and emission free.
    faults:
        Optional :class:`~repro.faults.LinkFaults` decision engine.  When
        ``None`` (the default) the transmit loop pays exactly one ``is
        not None`` test per injection and nothing else — the budget the
        ``faults_off_overhead`` kernel in ``scripts/bench_guard.py``
        enforces.
    """

    def __init__(self, sim: Simulator, rank: int,
                 deliver: Callable[[int, Any], None],
                 obs: Optional[EventBus] = None,
                 faults=None):
        self.sim = sim
        self.rank = rank
        self.deliver = deliver
        self.obs = obs if obs is not None else EventBus()
        self.faults = faults
        #: Fail-stop flag: a failed NIC silently discards everything it
        #: is asked to inject (the rank is dead, not slow).
        self.failed = False
        self.stats = NICStats()
        self._queue: Store = Store(sim, name=f"nic{rank}.tx")
        sim.process(self._tx_worker(), name=f"nic{rank}")

    @property
    def queue_length(self) -> int:
        """Messages waiting for the transmit engine."""
        return len(self._queue)

    def enqueue(self, tx: Transmission) -> Transmission:
        """Hand a message to the transmit engine (never blocks the caller)."""
        if tx.injected is None:
            tx.injected = Event(self.sim)
        self._queue.put(tx)
        qlen = len(self._queue)
        if qlen > self.stats.max_queue:
            self.stats.max_queue = qlen
        return tx

    # -- internals ------------------------------------------------------
    def _tx_worker(self):
        """Serialize injections; runs for the life of the simulation."""
        while True:
            tx: Transmission = yield self._queue.get()
            faults = self.faults
            wire_time = tx.wire_time
            latency = tx.latency
            if faults is not None:
                if self.failed:
                    # Fail-stopped rank: nothing leaves the NIC.  The
                    # injected event never fires, so no completion hooks
                    # or retry timers run for this frame.
                    faults.note_drop(tx)
                    continue
                stall = faults.stall_delay(self.sim.now)
                if stall > 0.0:
                    yield self.sim.sleep(stall)
                wire_time, latency = faults.degraded(
                    self.sim.now, tx.dst_rank, wire_time, latency)
            start = self.sim.now
            self.obs.emit(NIC_TX_START, start, self.rank, tx.dst_rank,
                          tx.nbytes)
            yield self.sim.sleep(tx.gap + wire_time)
            self.stats.messages += 1
            self.stats.bytes += tx.nbytes
            self.stats.busy_time += self.sim.now - start
            self.obs.emit(NIC_TX_DONE, self.sim.now, self.rank, tx.dst_rank,
                          tx.nbytes)
            tx.injected.succeed(self.sim.now)
            if faults is not None and faults.drop(tx):
                continue  # the fabric ate it; retransmission recovers
            self._deliver_later(tx, latency)

    def _deliver_later(self, tx: Transmission, latency: float) -> None:
        """Schedule the destination-side delivery after propagation."""
        timeout = self.sim.timeout(latency, value=tx)
        timeout.callbacks.append(
            lambda ev: self.deliver(ev.value.dst_rank, ev.value.payload))
