"""Cluster fabric: placement of ranks on nodes and path selection.

The paper limits its point-to-point tests to a single Dragonfly+ wing, so
any two nodes are one switch apart; we model exactly that (``hops=1``
between distinct nodes) plus an intra-node shared-memory path for ranks
co-located on a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from .model import INTRA_NODE, NIAGARA_EDR, NetworkParams

__all__ = ["Placement", "Fabric"]


@dataclass(frozen=True)
class Placement:
    """Mapping of MPI ranks to nodes.

    Attributes
    ----------
    nodes_of_rank:
        ``nodes_of_rank[r]`` is the node id hosting rank ``r``.
    """

    nodes_of_rank: Tuple[int, ...]

    @classmethod
    def round_robin(cls, nranks: int, nnodes: int) -> "Placement":
        """Cyclic placement: rank ``r`` on node ``r % nnodes``."""
        if nranks < 1 or nnodes < 1:
            raise ConfigurationError("nranks and nnodes must be >= 1")
        return cls(tuple(r % nnodes for r in range(nranks)))

    @classmethod
    def block(cls, nranks: int, ranks_per_node: int) -> "Placement":
        """Block placement: the first ``ranks_per_node`` ranks on node 0, etc."""
        if nranks < 1 or ranks_per_node < 1:
            raise ConfigurationError(
                "nranks and ranks_per_node must be >= 1")
        return cls(tuple(r // ranks_per_node for r in range(nranks)))

    @classmethod
    def one_per_node(cls, nranks: int) -> "Placement":
        """The paper's default for its pattern benchmarks."""
        return cls.block(nranks, 1)

    @property
    def nranks(self) -> int:
        """Number of placed ranks."""
        return len(self.nodes_of_rank)

    @property
    def nnodes(self) -> int:
        """Number of distinct nodes used."""
        return len(set(self.nodes_of_rank)) if self.nodes_of_rank else 0

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``."""
        return self.nodes_of_rank[rank]

    def colocated(self, a: int, b: int) -> bool:
        """True when both ranks share a node."""
        return self.node_of(a) == self.node_of(b)


class Fabric:
    """Path selection between ranks: inter-node EDR vs intra-node shm.

    Parameters
    ----------
    placement:
        Where each rank lives.
    inter_node / intra_node:
        Parameter sets for the two path types.
    """

    def __init__(self, placement: Placement,
                 inter_node: NetworkParams = NIAGARA_EDR,
                 intra_node: NetworkParams = INTRA_NODE):
        self.placement = placement
        self.inter_node = inter_node
        self.intra_node = intra_node

    def params_between(self, src_rank: int, dst_rank: int) -> NetworkParams:
        """The parameter set governing traffic from ``src`` to ``dst``."""
        if self.placement.colocated(src_rank, dst_rank):
            return self.intra_node
        return self.inter_node

    def hops_between(self, src_rank: int, dst_rank: int) -> int:
        """Switch count on the path (0 intra-node, 1 within the wing)."""
        return 0 if self.placement.colocated(src_rank, dst_rank) else 1

    def delivery_latency(self, src_rank: int, dst_rank: int) -> float:
        """One-way propagation latency between the two ranks."""
        params = self.params_between(src_rank, dst_rank)
        return params.path_latency(self.hops_between(src_rank, dst_rank))
