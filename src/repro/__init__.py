"""repro — a micro-benchmark suite for MPI Partitioned communication.

A faithful, fully self-contained reproduction of

    Temuçin, Grant, Afsahi.  *Micro-Benchmarking MPI Partitioned
    Point-to-Point Communication.*  ICPP 2022.

built on a deterministic discrete-event simulation of an HPC cluster
(machine + network + MPI runtime + MPI 4.0 partitioned communication), so
every figure of the paper can be regenerated on a laptop.

Quick start
-----------
>>> from repro import PtpBenchmarkConfig, run_ptp_benchmark
>>> from repro.noise import UniformNoise
>>> cfg = PtpBenchmarkConfig(message_bytes=1 << 20, partitions=8,
...                          compute_seconds=0.010, noise=UniformNoise(4.0),
...                          iterations=3)
>>> result = run_ptp_benchmark(cfg)
>>> 0 < result.overhead.mean < 100
True

Package map
-----------
``repro.sim``
    Discrete-event kernel (events, processes, resources, RNG, traces).
``repro.machine`` / ``repro.network``
    Niagara-calibrated node and EDR-InfiniBand path models.
``repro.mpi`` / ``repro.partitioned``
    The simulated MPI runtime and the MPI 4.0 partitioned API
    (MPIPCL-layered and idealized-native implementations).
``repro.threadsim`` / ``repro.noise``
    OpenMP-style thread teams and the paper's §3.3 noise models.
``repro.metrics`` / ``repro.core``
    The §3.1 metrics and the micro-benchmark suite (runner, sweeps,
    per-figure drivers, reports, partition-count advisor).
``repro.patterns`` / ``repro.proxy``
    Sweep3D / Halo3D motifs (Figures 9–12) and the SNAP projection
    (Figure 13).
"""

from .core import (
    PtpBenchmarkConfig,
    PtpResult,
    Recommendation,
    SweepResult,
    metric_table,
    recommend_partitions,
    run_ptp_benchmark,
    sweep_ptp,
)
from .errors import (
    ConfigurationError,
    DeadlockError,
    MPIError,
    PartitionError,
    ReproError,
    RequestStateError,
    SimulationError,
    ThreadingModeError,
    TruncationError,
)
from .mpi import Cluster, MPICosts, ThreadingMode

__version__ = "1.0.0"

__all__ = [
    "PtpBenchmarkConfig",
    "PtpResult",
    "Recommendation",
    "SweepResult",
    "metric_table",
    "recommend_partitions",
    "run_ptp_benchmark",
    "sweep_ptp",
    "ConfigurationError",
    "DeadlockError",
    "MPIError",
    "PartitionError",
    "ReproError",
    "RequestStateError",
    "SimulationError",
    "ThreadingModeError",
    "TruncationError",
    "Cluster",
    "MPICosts",
    "ThreadingMode",
    "__version__",
]
