"""SNAP-like proxy application (§4.8).

SNAP models discrete-ordinates neutral-particle transport (a PARTISN
stand-in): a 3D domain decomposed over a 2D process grid, swept by KBA
wavefronts over angle/energy blocks, one octant after another, using plain
MPI send/recv — the SNAP-C port the paper profiles is single-threaded MPI.

We reproduce the *performance structure* the paper's Figure 13 depends on:
with a strong-scaled problem, per-rank compute shrinks as ``1/P`` while
wavefront fill/drain and per-block messaging do not, so the mpiP-measured
MPI fraction grows from a few percent at small node counts to dominant at
hundreds of nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..machine import MachineSpec, NIAGARA_NODE
from ..mpi import Cluster, DEFAULT_COSTS, MPICosts, ThreadingMode
from ..network import INTRA_NODE, NIAGARA_EDR, NetworkParams
from .mpip import MPIPProfiler, MPIPReport

__all__ = ["SnapConfig", "SnapRunResult", "run_snap", "process_grid"]


def process_grid(nranks: int) -> Tuple[int, int]:
    """Near-square 2D factorization of ``nranks`` (SNAP's npey × npez)."""
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1: {nranks}")
    px = int(math.sqrt(nranks))
    while px > 1 and nranks % px != 0:
        px -= 1
    return px, nranks // px


@dataclass(frozen=True)
class SnapConfig:
    """A SNAP-like run description.

    Attributes
    ----------
    nodes:
        Node count (one rank per node, like the paper's SNAP scaling runs).
    total_compute:
        Strong-scaled total compute per sweep, divided over ranks and
        blocks (seconds of CPU work for the whole domain).
    blocks:
        Angle/energy work blocks per octant (KBA pipeline depth).
    octants:
        Sweep directions per timestep (SNAP sweeps all 8; fewer makes the
        simulation cheaper without changing the fractions' shape).
    timesteps:
        Outer iterations.
    boundary_bytes:
        Boundary data per block at one node; shrinks with the grid
        dimension as the strong-scaled domain is split.
    """

    nodes: int
    total_compute: float = 6.0
    blocks: int = 32
    octants: int = 2
    timesteps: int = 1
    boundary_bytes: int = 2 << 20
    seed: int = 0
    spec: MachineSpec = NIAGARA_NODE
    inter_node: NetworkParams = NIAGARA_EDR
    intra_node: NetworkParams = INTRA_NODE
    costs: MPICosts = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1: {self.nodes}")
        if self.total_compute <= 0:
            raise ConfigurationError("total_compute must be positive")
        if min(self.blocks, self.octants, self.timesteps) < 1:
            raise ConfigurationError(
                "blocks/octants/timesteps must be >= 1")
        if self.boundary_bytes < 1:
            raise ConfigurationError("boundary_bytes must be >= 1")

    @property
    def grid(self) -> Tuple[int, int]:
        """The 2D process grid."""
        return process_grid(self.nodes)

    def compute_per_block(self) -> float:
        """Per-rank, per-block compute under strong scaling."""
        return self.total_compute / (self.nodes * self.blocks
                                     * self.octants * self.timesteps)

    def message_bytes(self) -> int:
        """Per-block boundary message size (shrinks with the grid)."""
        px, py = self.grid
        return max(64, self.boundary_bytes // max(px, py))

    def with_overrides(self, **kwargs) -> "SnapConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


@dataclass
class SnapRunResult:
    """Outcome of one SNAP proxy run."""

    config: SnapConfig
    report: MPIPReport
    elapsed: float

    @property
    def mpi_fraction(self) -> float:
        """The mpiP aggregate MPI-time fraction."""
        return self.report.mpi_fraction


def _octant_neighbors(px: int, py: int, rank: int,
                      octant: int) -> Dict[str, Optional[int]]:
    """Upstream/downstream neighbours for one sweep direction.

    Octant bits flip the sweep direction along each grid axis, like KBA
    corner starts.
    """
    x, y = rank % px, rank // px
    dx = 1 if octant & 1 == 0 else -1
    dy = 1 if octant & 2 == 0 else -1
    up_x = x - dx
    dn_x = x + dx
    up_y = y - dy
    dn_y = y + dy
    def rank_of(cx: int, cy: int) -> Optional[int]:
        if 0 <= cx < px and 0 <= cy < py:
            return cy * px + cx
        return None
    return {
        "up_x": rank_of(up_x, y),
        "dn_x": rank_of(dn_x, y),
        "up_y": rank_of(x, up_y),
        "dn_y": rank_of(x, dn_y),
    }


def run_snap(config: SnapConfig) -> SnapRunResult:
    """Run the SNAP proxy and return its mpiP report.

    Single-threaded MPI per rank (as in SNAP-C): per octant, per block,
    each rank receives its upstream x/y boundaries, computes, and forwards
    downstream.  All MPI calls are wrapped by the profiler.
    """
    px, py = config.grid
    cluster = Cluster(
        nranks=config.nodes,
        spec=config.spec,
        inter_node=config.inter_node,
        intra_node=config.intra_node,
        costs=config.costs,
        mode=ThreadingMode.FUNNELED,
        seed=config.seed,
    )
    profilers: List[MPIPProfiler] = []
    comp = config.compute_per_block()
    msg = config.message_bytes()
    record: Dict[str, float] = {}

    def program(ctx):
        prof = MPIPProfiler(ctx)
        profilers.append(prof)
        comm, main = ctx.comm, ctx.main
        yield from comm.barrier(main)
        prof.start_app()
        if ctx.rank == 0:
            record["t_start"] = ctx.sim.now
        for ts in range(config.timesteps):
            for octant in range(config.octants):
                nbrs = _octant_neighbors(px, py, ctx.rank, octant)
                for b in range(config.blocks):
                    tag = ((ts * config.octants + octant)
                           * config.blocks + b) * 2
                    if nbrs["up_x"] is not None:
                        yield from prof.timed(
                            comm.recv(main, nbrs["up_x"], tag, msg),
                            "MPI_Recv(x)")
                    if nbrs["up_y"] is not None:
                        yield from prof.timed(
                            comm.recv(main, nbrs["up_y"], tag + 1, msg),
                            "MPI_Recv(y)")
                    yield from main.compute(comp)
                    reqs = []
                    if nbrs["dn_x"] is not None:
                        reqs.append((yield from prof.timed(
                            comm.isend(main, nbrs["dn_x"], tag, msg),
                            "MPI_Isend(x)")))
                    if nbrs["dn_y"] is not None:
                        reqs.append((yield from prof.timed(
                            comm.isend(main, nbrs["dn_y"], tag + 1, msg),
                            "MPI_Isend(y)")))
                    if reqs:
                        yield from prof.timed(
                            comm.wait_all(main, reqs), "MPI_Waitall")
            # SNAP converges flux between octant sweeps: a small allreduce.
            yield from prof.timed(
                comm.allreduce(main, 8, value=1.0), "MPI_Allreduce")
        prof.stop_app()
        if ctx.rank == 0:
            record["t_end"] = ctx.sim.now

    cluster.run(program)
    report = MPIPReport.from_profilers(profilers)
    return SnapRunResult(config=config, report=report,
                         elapsed=record["t_end"] - record["t_start"])
