"""An mpiP-style application profiler (the paper uses mpiP 3.5, §4.8).

mpiP measures, per rank, the wall time spent inside MPI calls and reports
the aggregate "MPI time %" of the application.  Our :class:`MPIPProfiler`
does the same for simulated programs: wrap every MPI call in
:meth:`timed` and bracket the run with :meth:`start_app` / :meth:`stop_app`;
:class:`MPIPReport` then aggregates across ranks exactly like mpiP's
summary section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigurationError

__all__ = ["MPIPProfiler", "CallSiteStats", "MPIPReport"]


@dataclass
class CallSiteStats:
    """Accumulated time for one call site (mpiP's per-callsite rows)."""

    name: str
    calls: int = 0
    total_time: float = 0.0

    @property
    def mean_time(self) -> float:
        """Average seconds per call."""
        return self.total_time / self.calls if self.calls else 0.0


class MPIPProfiler:
    """Per-rank profiler: wall time inside MPI vs total application time."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.sites: Dict[str, CallSiteStats] = {}
        self._app_start: float = float("nan")
        self._app_stop: float = float("nan")

    def start_app(self) -> None:
        """Mark the start of the profiled window."""
        self._app_start = self.ctx.sim.now

    def stop_app(self) -> None:
        """Mark the end of the profiled window."""
        self._app_stop = self.ctx.sim.now

    def timed(self, gen, site: str):
        """Generator: run one MPI-call generator, attributing its wall time.

        Usage inside a program::

            status = yield from prof.timed(
                comm.recv(main, src, tag, nbytes), "recv")
        """
        start = self.ctx.sim.now
        result = yield from gen
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = CallSiteStats(site)
        stats.calls += 1
        stats.total_time += self.ctx.sim.now - start
        return result

    @property
    def mpi_time(self) -> float:
        """Total seconds this rank spent inside MPI calls."""
        return sum(s.total_time for s in self.sites.values())

    @property
    def app_time(self) -> float:
        """Wall seconds between start_app and stop_app."""
        if self._app_start != self._app_start:  # NaN check
            raise ConfigurationError("profiler window never started")
        stop = self._app_stop
        if stop != stop:
            stop = self.ctx.sim.now
        return stop - self._app_start

    @property
    def mpi_fraction(self) -> float:
        """This rank's MPI-time share of its application time."""
        app = self.app_time
        return self.mpi_time / app if app > 0 else 0.0


@dataclass
class MPIPReport:
    """Aggregate across ranks — mpiP's ``@--- MPI Time`` summary.

    ``mpi_fraction`` is total-MPI-time over total-app-time, which is how
    mpiP computes the headline percentage the paper's Figure 13 builds on.
    """

    rank_mpi_times: List[float]
    rank_app_times: List[float]
    sites: Dict[str, CallSiteStats] = field(default_factory=dict)

    @classmethod
    def from_profilers(cls, profilers: Iterable[MPIPProfiler]) -> "MPIPReport":
        """Merge per-rank profilers into one report."""
        profilers = list(profilers)
        if not profilers:
            raise ConfigurationError("no profilers to aggregate")
        sites: Dict[str, CallSiteStats] = {}
        for p in profilers:
            for name, s in p.sites.items():
                agg = sites.setdefault(name, CallSiteStats(name))
                agg.calls += s.calls
                agg.total_time += s.total_time
        return cls(
            rank_mpi_times=[p.mpi_time for p in profilers],
            rank_app_times=[p.app_time for p in profilers],
            sites=sites,
        )

    @property
    def nranks(self) -> int:
        """Number of profiled ranks."""
        return len(self.rank_mpi_times)

    @property
    def mpi_fraction(self) -> float:
        """Aggregate MPI time / aggregate app time."""
        total_app = sum(self.rank_app_times)
        return sum(self.rank_mpi_times) / total_app if total_app else 0.0

    @property
    def mpi_percent(self) -> float:
        """The headline mpiP number."""
        return 100.0 * self.mpi_fraction

    def top_sites(self, k: int = 5) -> List[Tuple[str, CallSiteStats]]:
        """The ``k`` most expensive call sites (mpiP's callsite table)."""
        ranked = sorted(self.sites.items(),
                        key=lambda kv: kv[1].total_time, reverse=True)
        return ranked[:k]

    def format(self) -> str:
        """Render an mpiP-flavoured text summary."""
        lines = [
            "@--- MPI Time (aggregate) " + "-" * 34,
            f"ranks: {self.nranks}   "
            f"app: {sum(self.rank_app_times):.6f}s   "
            f"mpi: {sum(self.rank_mpi_times):.6f}s   "
            f"mpi%: {self.mpi_percent:.2f}",
            "@--- Callsites (by total time) " + "-" * 29,
        ]
        for name, s in self.top_sites():
            lines.append(f"  {name:<16s} calls={s.calls:<8d} "
                         f"time={s.total_time:.6f}s "
                         f"mean={s.mean_time * 1e6:.2f}us")
        return "\n".join(lines)
