"""Figure 13: projected speedup from porting SNAP to MPI Partitioned.

The paper projects SNAP's gain by assuming its MPI send/receive time would
speed up by the 15.1× factor measured for Sweep3D in §4.6, leaving the
rest of the runtime unchanged — an Amdahl-style bound:

    speedup(f) = 1 / ((1 - f) + f / s)

where ``f`` is the mpiP-measured MPI-time fraction and ``s`` the
communication speedup.  This module runs the SNAP proxy across node
counts, extracts ``f`` per count, and applies the projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .snap import SnapConfig, SnapRunResult, run_snap

__all__ = ["project_speedup", "SnapProjectionRow", "SnapProjection",
           "snap_projection", "PAPER_COMM_SPEEDUP"]

#: The Sweep3D partitioned-vs-single-threaded gain the paper measured.
PAPER_COMM_SPEEDUP = 15.1


def project_speedup(mpi_fraction: float, comm_speedup: float
                    = PAPER_COMM_SPEEDUP) -> float:
    """Amdahl projection: application speedup if MPI time shrinks by
    ``comm_speedup``."""
    if not (0.0 <= mpi_fraction <= 1.0):
        raise ConfigurationError(
            f"mpi_fraction must be in [0, 1]: {mpi_fraction}")
    if comm_speedup <= 0:
        raise ConfigurationError(
            f"comm_speedup must be positive: {comm_speedup}")
    return 1.0 / ((1.0 - mpi_fraction) + mpi_fraction / comm_speedup)


@dataclass(frozen=True)
class SnapProjectionRow:
    """One node count's measurement and projection."""

    nodes: int
    mpi_percent: float
    projected_speedup: float
    elapsed: float


@dataclass
class SnapProjection:
    """The full Figure-13 series."""

    comm_speedup: float
    rows: List[SnapProjectionRow] = field(default_factory=list)

    def format(self) -> str:
        """Text table matching the figure's series."""
        lines = [
            f"SNAP -> MPI Partitioned projection "
            f"(comm speedup {self.comm_speedup:g}x)",
            f"{'nodes':>6}  {'MPI %':>7}  {'speedup':>8}",
            f"{'-' * 6}  {'-' * 7}  {'-' * 8}",
        ]
        for row in self.rows:
            lines.append(f"{row.nodes:>6}  {row.mpi_percent:>6.1f}%  "
                         f"{row.projected_speedup:>7.2f}x")
        return "\n".join(lines)


def snap_projection(node_counts: Sequence[int] = (2, 4, 8, 16, 32, 64,
                                                  128, 256),
                    comm_speedup: float = PAPER_COMM_SPEEDUP,
                    base_config: Optional[SnapConfig] = None,
                    ) -> SnapProjection:
    """Run the SNAP proxy at each node count and project the speedup.

    ``base_config`` overrides the proxy's workload parameters; its
    ``nodes`` field is replaced per count.
    """
    if not node_counts:
        raise ConfigurationError("need at least one node count")
    base = base_config or SnapConfig(nodes=node_counts[0])
    projection = SnapProjection(comm_speedup=comm_speedup)
    for nodes in node_counts:
        result: SnapRunResult = run_snap(base.with_overrides(nodes=nodes))
        f = result.mpi_fraction
        projection.rows.append(SnapProjectionRow(
            nodes=nodes,
            mpi_percent=100.0 * f,
            projected_speedup=project_speedup(f, comm_speedup),
            elapsed=result.elapsed,
        ))
    return projection
