"""SNAP proxy application, mpiP-style profiler, and the Fig. 13 projection."""

from .mpip import CallSiteStats, MPIPProfiler, MPIPReport
from .projection import (PAPER_COMM_SPEEDUP, SnapProjection,
                         SnapProjectionRow, project_speedup, snap_projection)
from .snap import SnapConfig, SnapRunResult, process_grid, run_snap

__all__ = [
    "CallSiteStats",
    "MPIPProfiler",
    "MPIPReport",
    "PAPER_COMM_SPEEDUP",
    "SnapProjection",
    "SnapProjectionRow",
    "project_speedup",
    "snap_projection",
    "SnapConfig",
    "SnapRunResult",
    "process_grid",
    "run_snap",
]
