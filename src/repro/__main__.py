"""``python -m repro`` — the suite's command-line entry point."""

import sys

from .cli import main

sys.exit(main())
