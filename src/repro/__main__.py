"""``python -m repro`` — the suite's command-line entry point.

Figure reproductions (``fig4``..``fig13``), one-off measurements
(``metrics``), the partition advisor (``advisor``) and the correctness
analyzer (``lint`` / ``check``) all dispatch through :mod:`repro.cli`.
"""

import sys

from .cli import main

sys.exit(main())
