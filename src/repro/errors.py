"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.  Sub-hierarchies
mirror the package layout: simulation-kernel errors, MPI semantic errors, and
benchmark-configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An error inside the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.Simulator.run` when ``until`` has not been
    reached, no events remain, and at least one live process exists.  This is
    the simulated analogue of an MPI deadlock (e.g. two blocking sends with
    no matching receives).
    """


class MPIError(ReproError):
    """Violation of MPI semantics by the simulated application."""


class TruncationError(MPIError):
    """A receive buffer was smaller than the matched incoming message."""


class RequestStateError(MPIError):
    """An operation was applied to a request in an illegal state.

    Examples: calling ``pready`` before ``start``, starting an active
    persistent request, or double-completing a request.
    """


class PartitionError(MPIError):
    """Illegal partition index or partition-count mismatch."""


class ThreadingModeError(MPIError):
    """An MPI call violated the communicator's declared threading mode."""


class ConfigurationError(ReproError):
    """An invalid benchmark, machine, or network configuration value."""
