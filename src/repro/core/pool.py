"""The persistent worker pool: boot-once processes behind every sweep.

Before this subsystem existed, every ``--jobs N`` sweep paid a
``ProcessPoolExecutor`` spawn plus a full interpreter boot per sweep —
imports, interned event-kind tables, machine/topology model construction
— which dominates wall time now that the analytic fast path answers a
deterministic paper grid in tens of milliseconds.  Hunold &
Carpen-Amarie ("MPI Benchmarking Revisited") catalogue exactly this
failure mode in MPI micro-benchmarks: fixed per-experiment overhead that
swamps the quantity under study.

:class:`WorkerPool` is the manager half of a manager/worker architecture
(the shape of nengo-mpi's ``mpi_wake_workers``/``mpi_worker_start``
loop): long-lived worker processes that boot **once** and stay warm —
module imports, the process-wide interned :data:`repro.obs.SCHEMA`, and
every memoized machine/network model survive from sweep to sweep.  The
manager keeps one logical task deque per worker, hands out adaptively
sized *chunks* of tasks (many cheap cells or planner trials ride one
queue message; the chunk size tracks the observed per-task cost, so
expensive cells still dispatch one at a time), and lets an idle worker
*steal* from the most loaded peer, so a
skewed grid (one faulty or high-iteration cell among cheap ones) cannot
serialize the sweep behind a single worker.  Results stream back to the
manager incrementally as binary :mod:`~repro.core.wire` frames — each
cell's raw sample timelines plus its SHA-256 event digest, one packed
queue message per chunk — instead of arriving as one end-of-sweep
batch.

Determinism is untouched by any of this: a task is a fully resolved,
self-seeded :class:`~repro.core.config.PtpBenchmarkConfig`, so *which*
worker runs it, in *what* order, after *how many* steals, cannot change
a bit of its result.  The golden-digest and parallel-equivalence suites
enforce serial == ``--jobs N`` == reused-warm-pool, digest for digest.

Crash handling degrades structurally instead of hanging: a dead worker's
queued tasks are redistributed, its in-flight task is retried once on a
surviving worker, and a task that keeps killing workers (or a pool with
no survivors) runs inline in the manager, where an error surfaces as an
ordinary exception.

Everything the pool does is observable through ``pool.*`` typed kinds on
the pool's own :class:`~repro.obs.EventBus` (worker boots, dispatches,
steals, crashes, drains) — manager-side lifecycle telemetry, stamped
with host-monotonic seconds, deliberately outside the simulated event
streams that result digests seal.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, ReproError
from ..faults import FaultOutcome
from ..obs import EventBus
from ..obs.kinds import (POOL_DISPATCH, POOL_DISPATCH_BATCH, POOL_DRAIN,
                         POOL_RESULT, POOL_RESULT_BATCH, POOL_STEAL,
                         POOL_WORKER_BOOT, POOL_WORKER_CRASH)
from .config import PtpBenchmarkConfig
from .persistence import sample_from_dict, sample_to_dict
from .runner import PtpResult, run_ptp_benchmark
from .wire import WireError, decode_result, encode_result

__all__ = ["PoolRunStats", "PoolTaskError", "WorkerPool", "shared_pool",
           "shutdown_shared_pool", "result_from_shipped", "ship_result"]

#: How long the manager blocks on the result queue before polling worker
#: liveness.  Purely a crash-detection latency bound; correctness does
#: not depend on it.
_POLL_SECONDS = 0.2

#: Adaptive chunking: the manager grows a dispatch chunk until one chunk
#: costs roughly this much worker time.  Big enough to amortize the
#: per-message queue + pickling overhead over many cheap cells, small
#: enough that an idle peer can still steal a skewed grid's backlog.
_CHUNK_TARGET_SECONDS = 0.03

#: EMA weight for the observed per-task cost that drives chunk sizing.
_COST_EMA_ALPHA = 0.4

#: A task whose worker died this many times is run inline in the manager
#: instead of being redispatched (a poisoned cell must not assassinate
#: the whole pool one worker at a time).
_MAX_TASK_CRASHES = 2


class PoolTaskError(ReproError):
    """A task raised inside a worker process.

    Carries the worker-side traceback text; the original exception
    object does not cross the process boundary.
    """


# ---------------------------------------------------------------------------
# The wire format: what a worker ships back per task
# ---------------------------------------------------------------------------

def ship_result(result: PtpResult) -> Dict:
    """Reduce a result to the dict a worker streams to the manager.

    Only the sample timelines, the event-stream digest, the trial count,
    and any fault outcome cross the process boundary; the manager
    recomputes derived metrics from the timelines exactly as a
    deserializing load does, so pooled results match serial ones bit for
    bit — and the shipped digest proves the worker's event stream was
    identical too.
    """
    shipped = {
        "samples": [sample_to_dict(s) for s in result.samples],
        "event_digest": result.event_digest,
        "trials": result.trials,
    }
    if result.fault_outcome is not None:
        shipped["fault_outcome"] = result.fault_outcome.to_dict()
    return shipped


def result_from_shipped(config: PtpBenchmarkConfig,
                        shipped) -> PtpResult:
    """Rebuild a :class:`PtpResult` from a worker's shipped payload.

    Accepts both payload shapes a worker may stream: the binary
    :mod:`~repro.core.wire` frame (the fast path) and the dict fallback
    above.
    """
    if isinstance(shipped, (bytes, bytearray, memoryview)):
        return decode_result(config, shipped)
    result = PtpResult(config=config,
                       event_digest=shipped.get("event_digest"),
                       trials=shipped.get("trials", 1))
    outcome = shipped.get("fault_outcome")
    if outcome is not None:
        result.fault_outcome = FaultOutcome.from_dict(outcome)
    for s in shipped["samples"]:
        result.samples.append(sample_from_dict(s))
    return result


def _execute_shipped(config: PtpBenchmarkConfig):
    """Run one config (in whichever process) and ship its result.

    The preferred shape is a binary :mod:`~repro.core.wire` frame — one
    flat bytes object instead of a dict of per-sample dicts of lists —
    which the queue pickles in a single opcode.  A result the codec
    cannot frame degrades to the dict fallback.
    """
    result = run_ptp_benchmark(config)
    try:
        return encode_result(result)
    except WireError:
        return ship_result(result)


def _worker_main(worker_id: int, tasks, results) -> None:
    """The worker loop: boot once, then run tasks until the stop sentinel.

    Booting means everything this module's imports pulled in — the DES
    kernel, the MPI runtime, the interned event-kind tables, the machine
    and network presets — is resident and warm for every task that
    follows.  Each message is ``(epoch, [(task_id, config), ...])`` — a
    *chunk* of one or more tasks riding a single queue message; the
    reply is one ``("results", worker_id, epoch, entries)`` message per
    chunk, where each entry is ``(task_id, frame)`` for a success or
    ``(task_id, ("error", message, traceback))`` for a task that raised
    (the loop itself never dies on a task exception).
    """
    results.put(("boot", worker_id, os.getpid()))
    while True:
        message = tasks.get()
        if message is None:
            return
        epoch, chunk = message
        entries = []
        for task_id, config in chunk:
            try:
                entries.append((task_id, _execute_shipped(config)))
            except Exception as exc:  # ships the traceback
                entries.append((task_id,
                                ("error", f"{type(exc).__name__}: {exc}",
                                 traceback.format_exc())))
        results.put(("results", worker_id, epoch, entries))


# ---------------------------------------------------------------------------
# Manager-side bookkeeping
# ---------------------------------------------------------------------------

@dataclass
class PoolRunStats:
    """How one pool run (or a pool's lifetime) executed its tasks."""

    #: Tasks completed (including inline recoveries).
    tasks: int = 0
    #: Tasks executed by a worker that was already booted before the run
    #: started — the warm-pool payoff a cold spawn never sees.
    warm_tasks: int = 0
    #: Tasks a worker stole from a peer's queue instead of draining its
    #: own (nonzero under skewed grids).
    stolen_tasks: int = 0
    #: Workers booted during this run.
    booted_workers: int = 0
    #: Worker processes that died mid-run.
    crashed_workers: int = 0
    #: Tasks the manager ran inline (no live workers, or a task that
    #: kept crashing its workers).
    inline_tasks: int = 0
    #: Completed tasks per worker id.
    worker_tasks: Dict[int, int] = field(default_factory=dict)

    def absorb(self, other: "PoolRunStats") -> None:
        """Accumulate another run's counters (pool-lifetime totals)."""
        self.tasks += other.tasks
        self.warm_tasks += other.warm_tasks
        self.stolen_tasks += other.stolen_tasks
        self.booted_workers += other.booted_workers
        self.crashed_workers += other.crashed_workers
        self.inline_tasks += other.inline_tasks
        for worker_id, count in other.worker_tasks.items():
            self.worker_tasks[worker_id] = \
                self.worker_tasks.get(worker_id, 0) + count


class _Worker:
    """Manager-side handle for one worker process."""

    __slots__ = ("id", "process", "tasks", "queue", "booted", "busy",
                 "current", "spawned_at", "dispatched_at")

    def __init__(self, worker_id: int, process, tasks) -> None:
        self.id = worker_id
        self.process = process
        self.tasks = tasks          # the worker's inbound task queue
        self.queue: deque = deque()  # manager-side backlog of task ids
        self.booted = False
        self.busy = False
        self.current: Optional[List[int]] = None  # in-flight chunk ids
        # Host clock, on purpose: pool lifecycle telemetry is
        # manager-side wall time, never simulated time.
        self.spawned_at = time.monotonic()  # simlint: disable=SIM101
        self.dispatched_at = self.spawned_at

    @property
    def load(self) -> int:
        """Queued plus in-flight tasks (the submit-placement key)."""
        return len(self.queue) + (1 if self.busy else 0)


class _PoolSession:
    """One streaming run over a :class:`WorkerPool` (single-flight).

    ``submit()`` may be called while ``results()`` is being consumed —
    that is how the adaptive planner schedules follow-up trial batches
    as earlier ones stream in.
    """

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self.stats = PoolRunStats()
        #: Workers that were live before this run began: tasks they
        #: complete are "warm" executions.
        self._warm_ids = set(pool._workers)
        self._payloads: Dict[int, PtpBenchmarkConfig] = {}
        self._keys: Dict[int, object] = {}
        self._crashes: Dict[int, int] = {}
        self._done: set = set()
        self._inline: deque = deque()  # task ids the manager will run
        self._ids = itertools.count()

    # -- submission --------------------------------------------------------

    def submit(self, key, config: PtpBenchmarkConfig) -> None:
        """Enqueue one task; results stream back under ``key``."""
        task_id = next(self._ids)
        self._keys[task_id] = key
        self._payloads[task_id] = config
        pool = self._pool
        worker = pool._place(self)
        if worker is None:
            # No workers could be (re)started at all: degrade inline —
            # queued here, *executed* when results() drains, so a
            # crash-degraded manager does no work at submit time.
            self._inline.append(task_id)
            return
        worker.queue.append(task_id)
        if not worker.busy:
            pool._refill(worker, self)

    # -- the streaming consumer -------------------------------------------

    def outstanding(self) -> int:
        """Tasks submitted whose results have not been yielded yet."""
        return len(self._payloads) - len(self._done) - len(self._inline)

    def results(self) -> Iterator[Tuple[object, object]]:
        """Yield ``(key, payload)`` as tasks complete, until drained.

        ``payload`` is what the executing side shipped — a binary
        :mod:`~repro.core.wire` frame, or the dict fallback; rebuild
        with :func:`result_from_shipped`.  Completion order follows
        execution, not submission; callers that need submission order
        reassemble by key.  Worker crashes are absorbed here (requeue,
        retry, inline fallback); a task that *raised* inside a worker
        re-raises as :class:`PoolTaskError`.
        """
        pool = self._pool
        while self._inline or self.outstanding():
            if self._inline:
                task_id = self._inline.popleft()
                if task_id in self._done:
                    continue  # completed by a worker retry meanwhile
                shipped = _execute_shipped(self._payloads[task_id])
                self.stats.inline_tasks += 1
                yield self._finish(task_id, -1, shipped)
                continue
            message = self._next_message()
            if message is None:
                continue  # crash recovery queued inline work
            kind = message[0]
            if kind == "boot":
                pool._mark_booted(message[1], message[2], self)
                continue
            _, worker_id, epoch, entries = message
            chunk_ids = [task_id for task_id, _ in entries]
            worker = pool._workers.get(worker_id)
            if worker is not None and worker.current == chunk_ids and \
                    epoch == pool._epoch:
                worker.busy = False
                worker.current = None
                pool._observe_cost(
                    (time.monotonic()  # simlint: disable=SIM101
                     - worker.dispatched_at) / max(1, len(chunk_ids)))
                pool._refill(worker, self)
            if epoch != pool._epoch:
                continue  # stale epoch: an abandoned run's leftovers
            pool.obs.emit(POOL_RESULT_BATCH, pool._now(), worker_id,
                          len(entries))
            for task_id, payload in entries:
                if task_id in self._done:
                    continue  # a crash-retry duplicate
                if isinstance(payload, tuple):
                    raise PoolTaskError(
                        f"task {self._keys[task_id]!r} failed in pool "
                        f"worker {worker_id}: {payload[1]}\n{payload[2]}")
                yield self._finish(task_id, worker_id, payload)
        pool.obs.emit(POOL_DRAIN, pool._now(), self.stats.tasks,
                      self.stats.stolen_tasks, self.stats.crashed_workers)

    def _finish(self, task_id: int, worker_id: int,
                shipped) -> Tuple[object, object]:
        self._done.add(task_id)
        self.stats.tasks += 1
        self.stats.worker_tasks[worker_id] = \
            self.stats.worker_tasks.get(worker_id, 0) + 1
        if worker_id in self._warm_ids:
            self.stats.warm_tasks += 1
        pool = self._pool
        pool.obs.emit(POOL_RESULT, pool._now(), worker_id, task_id)
        return self._keys[task_id], shipped

    def _next_message(self):
        pool = self._pool
        while True:
            try:
                return pool._results.get(timeout=_POLL_SECONDS)
            except Empty:
                self._reap_crashes()
                if self._inline:
                    # Crash recovery just queued inline work; with no
                    # surviving workers there may never be another
                    # message, so hand control back to the drain loop.
                    return None
            except (OSError, ValueError):
                # The pool was shut down under this run (the result
                # queue is closed).  shutdown() already joined the
                # workers, cleared the registry, and drained any
                # results they had shipped, so crash reaping cannot see
                # them: fold every not-yet-done task into the inline
                # queue ourselves and let the drain loop complete the
                # sweep in the manager — the caller still gets every
                # result, and cache claims are released by the normal
                # put path.
                queued = set(self._inline)
                for task_id in self._payloads:
                    if task_id not in self._done and \
                            task_id not in queued:
                        self._inline.append(task_id)
                return None

    # -- crash recovery ----------------------------------------------------

    def _reap_crashes(self) -> None:
        pool = self._pool
        dead = [w for w in pool._workers.values()
                if not w.process.is_alive()]
        for worker in dead:
            in_flight = [t for t in (worker.current or ())
                         if t not in self._done]
            pool.obs.emit(POOL_WORKER_CRASH, pool._now(), worker.id,
                          in_flight[0] if in_flight else -1)
            self.stats.crashed_workers += 1
            orphans = list(worker.queue)
            del pool._workers[worker.id]
            retry: List[int] = []
            for crashed_task in in_flight:
                self._crashes[crashed_task] = \
                    self._crashes.get(crashed_task, 0) + 1
                if self._crashes[crashed_task] >= _MAX_TASK_CRASHES:
                    self._inline.append(crashed_task)
                else:
                    retry.append(crashed_task)
            self._requeue(retry + orphans)

    def _requeue(self, task_ids: List[int]) -> None:
        """Hand a dead worker's backlog to survivors (or run it inline)."""
        pool = self._pool
        for task_id in task_ids:
            if task_id in self._done:
                continue
            worker = pool._place(self)
            if worker is None:
                self._inline.append(task_id)
                continue
            worker.queue.append(task_id)
            if not worker.busy:
                pool._refill(worker, self)


class WorkerPool:
    """A long-lived pool of warm worker processes for sweep cells.

    ``workers`` is the *ceiling*: processes are spawned lazily, one per
    concurrently outstanding task, so a 64-worker pool asked to run a
    4-cell grid starts exactly 4 processes.  The pool survives across
    runs — that is the point: the second sweep on the same pool pays
    zero spawn or import cost (its cells count as ``warm_tasks``).

    Use :meth:`run` for a plain "one result per config" mapping or
    :meth:`session` for streaming/dynamic workloads, and
    :meth:`shutdown` (or process exit — workers are daemons) to stop it.
    Results are bit-identical to inline execution by construction; see
    the module docstring.
    """

    def __init__(self, workers: int,
                 mp_context: Optional[str] = None,
                 max_chunk: int = 32) -> None:
        if workers < 1:
            raise ConfigurationError(f"pool workers must be >= 1: {workers}")
        if max_chunk < 1:
            raise ConfigurationError(
                f"pool max_chunk must be >= 1: {max_chunk}")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.max_workers = workers
        #: Ceiling on how many tasks ride one queue message.  ``1``
        #: restores strict per-task dispatch (the pre-batching wire
        #: behaviour, kept for comparison benchmarks).
        self.max_chunk = max_chunk
        #: Manager-side lifecycle events (``pool.*`` kinds) are emitted
        #: here; attach sinks to observe boots, steals, and drains.
        self.obs = EventBus()
        #: Lifetime totals across every run of this pool.
        self.stats = PoolRunStats()
        self._ctx = multiprocessing.get_context(mp_context)
        self._results = self._ctx.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._epoch = 0
        #: EMA of observed seconds per task; None until the first chunk
        #: completes (cold dispatches stay per-task, so a skewed grid's
        #: expensive head never drags cheap cells into its chunk).
        self._task_cost: Optional[float] = None
        self._t0 = time.monotonic()  # simlint: disable=SIM101
        self._closed = False

    # -- introspection -----------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0  # simlint: disable=SIM101

    @property
    def started_workers(self) -> int:
        """Worker processes currently live (spawned and not crashed)."""
        return len(self._workers)

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, session: _PoolSession) -> Optional[_Worker]:
        if len(self._workers) >= self.max_workers or self._closed:
            return None
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        tasks = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main, args=(worker_id, tasks, self._results),
            name=f"repro-pool-w{worker_id}", daemon=True)
        worker = _Worker(worker_id, process, tasks)
        process.start()
        self._workers[worker_id] = worker
        session.stats.booted_workers += 1
        return worker

    def _mark_booted(self, worker_id: int, pid: int,
                     session: _PoolSession) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.booted:
            return
        worker.booted = True
        self.obs.emit(POOL_WORKER_BOOT, self._now(), worker_id, pid,
                      time.monotonic()  # simlint: disable=SIM101
                      - worker.spawned_at)

    def _place(self, session: _PoolSession) -> Optional[_Worker]:
        """The worker a fresh task should land on (spawning if useful)."""
        idle = [w for w in self._workers.values() if not w.busy
                and not w.queue]
        if idle:
            return min(idle, key=lambda w: w.id)
        spawned = self._spawn(session)
        if spawned is not None:
            return spawned
        if not self._workers:
            return None
        return min(self._workers.values(), key=lambda w: (w.load, w.id))

    # -- dispatch, chunking, and stealing ---------------------------------

    def _chunk_size(self) -> int:
        """How many tasks the next dispatch should carry.

        Adaptive: grow the chunk until it costs ~``_CHUNK_TARGET_SECONDS``
        of worker time at the observed per-task cost, clamped to
        ``max_chunk``.  With no cost observation yet (cold pool, or a
        per-task ``max_chunk=1`` pool) dispatch stays one task at a time.
        """
        cost = self._task_cost
        if self.max_chunk <= 1 or cost is None:
            return 1
        if cost <= 0:
            return self.max_chunk
        return max(1, min(self.max_chunk,
                          int(_CHUNK_TARGET_SECONDS / cost)))

    def _observe_cost(self, seconds_per_task: float) -> None:
        """Feed one completed chunk's per-task cost into the sizing EMA."""
        if self._task_cost is None:
            self._task_cost = seconds_per_task
        else:
            self._task_cost += _COST_EMA_ALPHA * (
                seconds_per_task - self._task_cost)

    def _dispatch(self, worker: _Worker, task_ids: List[int],
                  session: _PoolSession, stolen_from: int = -1) -> None:
        worker.busy = True
        worker.current = list(task_ids)
        worker.dispatched_at = time.monotonic()  # simlint: disable=SIM101
        worker.tasks.put((self._epoch,
                          [(t, session._payloads[t]) for t in task_ids]))
        now = self._now()
        if stolen_from >= 0:
            session.stats.stolen_tasks += len(task_ids)
            for task_id in task_ids:
                self.obs.emit(POOL_STEAL, now, worker.id, stolen_from,
                              task_id)
        for task_id in task_ids:
            self.obs.emit(POOL_DISPATCH, now, worker.id, task_id)
        self.obs.emit(POOL_DISPATCH_BATCH, now, worker.id, len(task_ids))

    def _refill(self, worker: _Worker, session: _PoolSession) -> None:
        """Give a now-free worker its next chunk: own queue, else steal."""
        size = self._chunk_size()
        if worker.queue:
            chunk = [worker.queue.popleft()
                     for _ in range(min(size, len(worker.queue)))]
            self._dispatch(worker, chunk, session)
            return
        victims = [w for w in self._workers.values() if w.queue]
        if not victims:
            return
        victim = max(victims, key=lambda w: (len(w.queue), -w.id))
        # Take at most half the victim's backlog: the victim refills
        # from its own queue next, so stealing must not starve it.
        take = max(1, min(size, (len(victim.queue) + 1) // 2))
        chunk = [victim.queue.popleft() for _ in range(take)]
        self._dispatch(worker, chunk, session, stolen_from=victim.id)

    # -- public execution API ----------------------------------------------

    def session(self) -> _PoolSession:
        """Start a streaming run (submit tasks, then consume results).

        Opening a session advances the pool's epoch: any result still in
        flight from an abandoned earlier run is recognized as stale and
        dropped rather than misdelivered.
        """
        if self._closed:
            raise ConfigurationError("worker pool is shut down")
        self._epoch += 1
        return _PoolSession(self)

    def run(self, configs: Iterable[PtpBenchmarkConfig],
            keys: Optional[Iterable[object]] = None,
            ) -> Iterator[Tuple[object, Dict]]:
        """Stream ``(key, payload)`` for each config as it finishes.

        ``payload`` is the shipped wire frame (or fallback dict);
        rebuild with :func:`result_from_shipped`.  ``keys`` defaults to
        the configs' positions.  The pool-lifetime :attr:`stats` absorb
        the run's counters when the stream drains.
        """
        session = self.session()
        configs = list(configs)
        key_list = list(keys) if keys is not None else list(
            range(len(configs)))
        if len(key_list) != len(configs):
            raise ConfigurationError(
                f"run() got {len(configs)} configs but {len(key_list)} keys")
        for key, config in zip(key_list, configs):
            session.submit(key, config)
        try:
            for item in session.results():
                yield item
        finally:
            self.stats.absorb(session.stats)

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, join_seconds: float = 2.0) -> int:
        """Stop every worker (idempotent): sentinel, join, then terminate.

        Beyond stopping the processes, shutdown *drains and closes* the
        queue plumbing: every worker's task queue (both pipe ends held
        by the manager) and the shared result queue, whose stale
        messages are consumed before ``close()``/``join_thread()``.
        Without this, each pool left a pair of pipe fds per worker plus
        the result queue's buffer thread behind — a real leak
        (``ResourceWarning`` under ``-X dev``) once a long-running
        service starts and stops pools repeatedly.  Returns the number
        of stale result messages drained (0 on a clean pool, and on
        repeated calls).
        """
        if self._closed:
            return 0
        self._closed = True
        workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.tasks.put(None)
            except (OSError, ValueError):  # queue already broken/closed
                pass
        for worker in workers:
            worker.process.join(timeout=join_seconds)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=join_seconds)
        self._workers.clear()
        for worker in workers:
            try:
                worker.tasks.close()  # both manager-held pipe ends
            except (OSError, ValueError):
                pass
        # Workers are gone; anything still buffered in the result queue
        # is an abandoned run's leftovers.  Consume it so the queue's
        # feeder machinery can wind down cleanly via join_thread()
        # instead of being cancelled with live buffers.
        drained = 0
        while True:
            try:
                self._results.get_nowait()
                drained += 1
            except (Empty, OSError, ValueError):
                break
        self._results.close()
        try:
            self._results.join_thread()
        except (OSError, ValueError, AssertionError):
            pass
        return drained


# ---------------------------------------------------------------------------
# The process-wide shared pool (the CLI's --pool keep mode)
# ---------------------------------------------------------------------------

_SHARED: Optional[WorkerPool] = None


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide warm pool, created (or grown) on first use.

    Repeated calls return the same pool so consecutive sweeps reuse warm
    workers; asking for more ``workers`` raises the ceiling (processes
    still spawn lazily).  The pool is shut down automatically at
    interpreter exit; call :func:`shutdown_shared_pool` to do it sooner.
    """
    global _SHARED
    if workers < 1:
        raise ConfigurationError(f"pool workers must be >= 1: {workers}")
    if _SHARED is None or _SHARED._closed:
        _SHARED = WorkerPool(workers)
    elif workers > _SHARED.max_workers:
        _SHARED.max_workers = workers
    return _SHARED


def shutdown_shared_pool() -> None:
    """Stop the shared pool's workers (no-op when none exists)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None


atexit.register(shutdown_shared_pool)
