"""The MPI Partitioned micro-benchmark suite — the paper's contribution.

Layers:

* :class:`PtpBenchmarkConfig` + :func:`run_ptp_benchmark` — one cell of the
  parameter space, measured per the paper's Figure 3 procedure.
* :func:`sweep_ptp` / :class:`SweepResult` — grids over message size ×
  partition count.
* :mod:`~repro.core.parallel` — the sweep execution engine: fan-out over
  a persistent :mod:`~repro.core.pool` of warm workers plus a
  content-addressed result cache, bit-identical to serial.
* ``fig4_…``–``fig8_…`` — per-figure experiment drivers (suite module).
* :func:`recommend_partitions` — the developer-guidance advisor.
* :mod:`~repro.core.report` — the text tables the harness prints.
"""

from .compare import (COMPARE_MODES, Drift, compare_sweeps, drift_table,
                      gate_sweeps)
from .config import (COLD, HOT, PAPER_MESSAGE_SIZES, PAPER_PARTITION_COUNTS,
                     PtpBenchmarkConfig)
from .guidance import OBJECTIVES, Recommendation, recommend_partitions
from .parallel import (ANALYTIC_MODES, CACHE_SCHEMA_VERSION,
                       FINGERPRINT_VERSION, ResultCache, SweepStats,
                       config_fingerprint, derive_cell_seed, plan_cells,
                       run_cells)
from .persistence import (load_sweep, result_from_dict,
                          result_to_dict, save_sweep,
                          sweep_from_dict, sweep_to_dict)
from .pool import (PoolRunStats, PoolTaskError, WorkerPool, shared_pool,
                   shutdown_shared_pool)
from .plot import ascii_plot
from .report import (METRIC_FORMATS, ascii_table, fault_table, format_bytes,
                     format_seconds, metric_table, provenance_line,
                     series_table)
from .runner import PtpResult, PtpSample, run_ptp_benchmark, run_ptp_trial
from .suite import (QUICK_MESSAGE_SIZES, QUICK_PARTITION_COUNTS,
                    fig4_overhead, fig5_perceived_bandwidth,
                    fig6_availability, fig7_noise_models, fig8_early_bird)
from .sweep import METRIC_NAMES, SweepPoint, SweepResult, sweep_ptp
from .wire import (WIRE_VERSION, WireError, decode_payload, decode_result,
                   encode_result)

__all__ = [
    "COLD",
    "HOT",
    "PAPER_MESSAGE_SIZES",
    "PAPER_PARTITION_COUNTS",
    "PtpBenchmarkConfig",
    "Drift",
    "COMPARE_MODES",
    "compare_sweeps",
    "drift_table",
    "gate_sweeps",
    "ANALYTIC_MODES",
    "CACHE_SCHEMA_VERSION",
    "FINGERPRINT_VERSION",
    "OBJECTIVES",
    "Recommendation",
    "recommend_partitions",
    "ResultCache",
    "SweepStats",
    "config_fingerprint",
    "derive_cell_seed",
    "plan_cells",
    "run_cells",
    "PoolRunStats",
    "PoolTaskError",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pool",
    "ascii_plot",
    "load_sweep",
    "result_from_dict",
    "result_to_dict",
    "save_sweep",
    "sweep_from_dict",
    "sweep_to_dict",
    "METRIC_FORMATS",
    "ascii_table",
    "fault_table",
    "format_bytes",
    "format_seconds",
    "metric_table",
    "provenance_line",
    "series_table",
    "PtpResult",
    "PtpSample",
    "run_ptp_benchmark",
    "run_ptp_trial",
    "QUICK_MESSAGE_SIZES",
    "QUICK_PARTITION_COUNTS",
    "fig4_overhead",
    "fig5_perceived_bandwidth",
    "fig6_availability",
    "fig7_noise_models",
    "fig8_early_bird",
    "METRIC_NAMES",
    "SweepPoint",
    "SweepResult",
    "sweep_ptp",
    "WIRE_VERSION",
    "WireError",
    "decode_payload",
    "decode_result",
    "encode_result",
]
