"""Figure-level experiment drivers (the per-figure entry points).

One function per point-to-point figure of the paper (Figures 4–8); the
pattern figures (9–12) live in :mod:`repro.patterns` and the SNAP
projection (Figure 13) in :mod:`repro.proxy`.  Each driver returns sweep
results keyed the way the figure is panelled, and the ``benchmarks/``
harness prints them with :func:`repro.core.report.metric_table`.

Every driver takes ``quick`` — a reduced grid for CI-speed runs — and
accepts config overrides for ablations.  ``jobs``, ``cache``, and
``pool`` are handed straight to :func:`~repro.core.sweep.sweep_ptp`, so
any figure can fan its grid out over worker processes — including a kept
warm :class:`~repro.core.pool.WorkerPool` shared across figures — and
reuse cached cells (see :mod:`repro.core.parallel`); results are
bit-identical either way.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..noise import (GaussianNoise, NoNoise, NoiseModel, SingleThreadNoise,
                     UniformNoise)
from .config import (COLD, HOT, PAPER_MESSAGE_SIZES, PAPER_PARTITION_COUNTS,
                     PtpBenchmarkConfig)
from .sweep import SweepResult, sweep_ptp

__all__ = ["fig4_overhead", "fig5_perceived_bandwidth",
           "fig6_availability", "fig7_noise_models", "fig8_early_bird",
           "QUICK_MESSAGE_SIZES", "QUICK_PARTITION_COUNTS"]

#: Reduced grids for quick runs (still spanning the paper's axes).
QUICK_MESSAGE_SIZES: Tuple[int, ...] = (
    256, 4096, 65536, 1 << 20, 4 << 20, 16 << 20)
QUICK_PARTITION_COUNTS: Tuple[int, ...] = (1, 2, 8, 16, 32)


def _grid(quick: bool,
          sizes: Optional[Sequence[int]],
          counts: Optional[Sequence[int]]):
    if sizes is None:
        sizes = QUICK_MESSAGE_SIZES if quick else PAPER_MESSAGE_SIZES
    if counts is None:
        counts = QUICK_PARTITION_COUNTS if quick else PAPER_PARTITION_COUNTS
    return sizes, counts


def fig4_overhead(quick: bool = True,
                  sizes: Optional[Sequence[int]] = None,
                  counts: Optional[Sequence[int]] = None,
                  jobs: int = 1, cache=None,
                  analytic: str = "off", planner=None, pool=None,
                  **overrides) -> Dict[str, SweepResult]:
    """Figure 4: overhead vs message size, hot and cold cache, no noise,
    10 ms compute.  Returns ``{"hot": sweep, "cold": sweep}``."""
    sizes, counts = _grid(quick, sizes, counts)
    out: Dict[str, SweepResult] = {}
    for cache_mode in (HOT, COLD):
        base = PtpBenchmarkConfig(
            message_bytes=sizes[0], partitions=1,
            compute_seconds=0.010, noise=NoNoise(), cache=cache_mode,
            iterations=3 if quick else 7, **overrides)
        out[cache_mode] = sweep_ptp(base, sizes, counts,
                                    jobs=jobs, cache=cache,
                                    analytic=analytic, planner=planner,
                                    pool=pool)
    return out


def fig5_perceived_bandwidth(quick: bool = True,
                             sizes: Optional[Sequence[int]] = None,
                             counts: Optional[Sequence[int]] = None,
                             jobs: int = 1, cache=None,
                             analytic: str = "off", planner=None, pool=None,
                             **overrides
                             ) -> Dict[Tuple[float, float], SweepResult]:
    """Figure 5: perceived bandwidth under uniform noise, hot cache.

    Returns sweeps keyed by ``(noise_percent, compute_seconds)`` for the
    paper's panels: 0%/10 ms, 4%/10 ms, 0%/100 ms, 4%/100 ms.
    """
    sizes, counts = _grid(quick, sizes, counts)
    panels = [(0.0, 0.010), (4.0, 0.010), (0.0, 0.100), (4.0, 0.100)]
    if quick:
        panels = [(0.0, 0.010), (4.0, 0.010), (4.0, 0.100)]
    out: Dict[Tuple[float, float], SweepResult] = {}
    for pct, comp in panels:
        noise: NoiseModel = UniformNoise(pct) if pct > 0 else NoNoise()
        base = PtpBenchmarkConfig(
            message_bytes=sizes[0], partitions=1, compute_seconds=comp,
            noise=noise, cache=HOT,
            iterations=3 if quick else 7, **overrides)
        out[(pct, comp)] = sweep_ptp(base, sizes, counts,
                                     jobs=jobs, cache=cache,
                                     analytic=analytic, planner=planner,
                                    pool=pool)
    return out


def fig6_availability(quick: bool = True,
                      sizes: Optional[Sequence[int]] = None,
                      counts: Optional[Sequence[int]] = None,
                      noise_percent: float = 4.0,
                      jobs: int = 1, cache=None,
                      analytic: str = "off", planner=None, pool=None,
                      **overrides) -> Dict[float, SweepResult]:
    """Figure 6: application availability, single-thread delay model,
    4% noise, hot cache; panels keyed by compute seconds (10 ms, 100 ms)."""
    sizes, counts = _grid(quick, sizes, counts)
    counts = [n for n in counts if n >= 2]  # availability needs >= 2 threads
    out: Dict[float, SweepResult] = {}
    for comp in (0.010, 0.100):
        base = PtpBenchmarkConfig(
            message_bytes=sizes[0], partitions=2, compute_seconds=comp,
            noise=SingleThreadNoise(noise_percent), cache=HOT,
            iterations=3 if quick else 9, **overrides)
        out[comp] = sweep_ptp(base, sizes, counts,
                              jobs=jobs, cache=cache,
                              analytic=analytic, planner=planner,
                                    pool=pool)
    return out


def fig7_noise_models(quick: bool = True,
                      sizes: Optional[Sequence[int]] = None,
                      partitions: int = 16,
                      noise_percent: float = 4.0,
                      jobs: int = 1, cache=None,
                      analytic: str = "off", planner=None, pool=None,
                      **overrides) -> Dict[float, Dict[str, SweepResult]]:
    """Figure 7: availability per noise model at 16 partitions, 4% noise.

    Returns ``{compute_seconds: {model_name: sweep}}`` where each sweep has
    the single partition count 16.
    """
    sizes, _ = _grid(quick, sizes, None)
    models = {
        "single": SingleThreadNoise(noise_percent),
        "uniform": UniformNoise(noise_percent),
        "gaussian": GaussianNoise(noise_percent),
    }
    out: Dict[float, Dict[str, SweepResult]] = {}
    for comp in (0.010, 0.100):
        panel: Dict[str, SweepResult] = {}
        for name, noise in models.items():
            base = PtpBenchmarkConfig(
                message_bytes=sizes[0], partitions=partitions,
                compute_seconds=comp, noise=noise, cache=HOT,
                iterations=3 if quick else 9, **overrides)
            panel[name] = sweep_ptp(base, sizes, [partitions],
                                    jobs=jobs, cache=cache,
                                    analytic=analytic, planner=planner,
                                    pool=pool)
        out[comp] = panel
    return out


def fig8_early_bird(quick: bool = True,
                    sizes: Optional[Sequence[int]] = None,
                    counts: Optional[Sequence[int]] = None,
                    noise_percent: float = 4.0,
                    jobs: int = 1, cache=None,
                    analytic: str = "off", planner=None, pool=None,
                    **overrides) -> Dict[float, SweepResult]:
    """Figure 8: % early-bird communication under uniform noise; panels
    keyed by compute seconds (10 ms, 100 ms).

    The paper notes 0% noise or one partition make this metric degenerate,
    so the partition grid starts at 2 and noise defaults to 4%.
    """
    sizes, counts = _grid(quick, sizes, counts)
    counts = [n for n in counts if n >= 2]
    out: Dict[float, SweepResult] = {}
    for comp in (0.010, 0.100):
        base = PtpBenchmarkConfig(
            message_bytes=sizes[0], partitions=2, compute_seconds=comp,
            noise=UniformNoise(noise_percent), cache=HOT,
            iterations=3 if quick else 9, **overrides)
        out[comp] = sweep_ptp(base, sizes, counts,
                              jobs=jobs, cache=cache,
                              analytic=analytic, planner=planner,
                                    pool=pool)
    return out
