"""Parameter sweeps over the micro-benchmark space.

A sweep runs :func:`~repro.core.runner.run_ptp_benchmark` over a grid of
message sizes × partition counts (× anything else via config overrides) and
organizes the results for the figure-shaped reports: one *series* per
partition count, message size on the x-axis — the layout of the paper's
Figures 4–8.

Execution is delegated to :mod:`repro.core.parallel`: pass ``jobs`` to fan
cells out over worker processes and/or ``cache`` to reuse previously
computed cells — both produce results bit-identical to a plain serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..metrics import SampleSummary
from .config import PtpBenchmarkConfig
from .runner import PtpResult

__all__ = ["SweepPoint", "SweepResult", "sweep_ptp",
           "METRIC_NAMES"]

#: The four §3.1 metric attribute names on :class:`PtpResult`.
METRIC_NAMES = ("overhead", "perceived_bandwidth",
                "application_availability", "early_bird_fraction")


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: its configuration and measured result."""

    config: PtpBenchmarkConfig
    result: PtpResult


@dataclass
class SweepResult:
    """All cells of one sweep, queryable as figure-shaped series.

    Cell lookups go through a ``(message_bytes, partitions)`` index that is
    maintained incrementally, so :meth:`point` is O(1) and :meth:`series`
    walks cells once in sorted order instead of re-sorting per call.
    """

    points: List[SweepPoint] = field(default_factory=list)
    #: How the cells were produced (jobs, cache hits); None for sweeps
    #: assembled by hand.  See :class:`repro.core.parallel.SweepStats`.
    stats: Optional[object] = field(default=None, compare=False)
    _index: Dict[Tuple[int, int], SweepPoint] = field(
        default_factory=dict, repr=False, compare=False)
    _sorted_keys: Optional[List[Tuple[int, int]]] = field(
        default=None, repr=False, compare=False)

    def add(self, point: SweepPoint) -> None:
        """Append one cell, keeping the lookup index current."""
        self.points.append(point)
        key = (point.config.message_bytes, point.config.partitions)
        self._index[key] = point
        self._sorted_keys = None

    def _sync_index(self) -> Dict[Tuple[int, int], SweepPoint]:
        # ``points`` is a public list, so tolerate direct appends: rebuild
        # whenever the index has fallen behind.
        if len(self._index) != len(self.points):
            self._index = {
                (p.config.message_bytes, p.config.partitions): p
                for p in self.points
            }
            self._sorted_keys = None
        return self._index

    def _iter_sorted(self) -> List[Tuple[int, int]]:
        """Cell keys sorted by (partitions, message_bytes), cached."""
        index = self._sync_index()
        if self._sorted_keys is None:
            self._sorted_keys = sorted(index, key=lambda k: (k[1], k[0]))
        return self._sorted_keys

    @property
    def message_sizes(self) -> List[int]:
        """Distinct message sizes, ascending."""
        return sorted({p.config.message_bytes for p in self.points})

    @property
    def partition_counts(self) -> List[int]:
        """Distinct partition counts, ascending."""
        return sorted({p.config.partitions for p in self.points})

    def point(self, message_bytes: int, partitions: int) -> SweepPoint:
        """The cell at (message size, partition count) — O(1)."""
        found = self._sync_index().get((message_bytes, partitions))
        if found is None:
            raise ConfigurationError(
                f"no sweep point for m={message_bytes}, n={partitions}")
        return found

    def series(self, metric: str) -> Dict[int, List[Tuple[int, float]]]:
        """Figure-shaped data: ``{partitions: [(message_bytes, mean), ...]}``.

        ``metric`` is one of :data:`METRIC_NAMES`.  Cells abandoned under
        a fault plan (no measured samples) are skipped — the tables
        print them as ``-`` and :meth:`fault_points` lists why.
        """
        if metric not in METRIC_NAMES:
            raise ConfigurationError(
                f"unknown metric {metric!r}; choose from {METRIC_NAMES}")
        index = self._sync_index()
        out: Dict[int, List[Tuple[int, float]]] = {}
        for m, n in self._iter_sorted():
            result = index[(m, n)].result
            if not result.samples:
                continue  # abandoned cell: nothing to summarize
            summary: SampleSummary = getattr(result, metric)
            out.setdefault(n, []).append((m, summary.mean))
        return out

    def fault_points(self) -> List[SweepPoint]:
        """Cells that ran under a fault plan, in sorted cell order."""
        index = self._sync_index()
        return [index[key] for key in self._iter_sorted()
                if index[key].result.fault_outcome is not None]

    def value(self, metric: str, message_bytes: int,
              partitions: int) -> float:
        """The pruned-mean metric value of one cell."""
        point = self.point(message_bytes, partitions)
        return getattr(point.result, metric).mean


def sweep_ptp(base: PtpBenchmarkConfig,
              message_sizes: Sequence[int],
              partition_counts: Sequence[int],
              progress: Optional[Callable[[PtpBenchmarkConfig], None]] = None,
              jobs: int = 1,
              cache=None,
              derive_seeds: bool = True,
              analytic: str = "off",
              planner=None,
              pool=None,
              ) -> SweepResult:
    """Run the grid ``message_sizes`` × ``partition_counts`` from ``base``.

    Cells where the message is smaller than the partition count are
    skipped (they cannot be split), matching how the paper's figures leave
    those cells empty.

    ``jobs`` fans independent cells out over that many worker processes
    (``None`` = all cores); ``cache`` (a
    :class:`~repro.core.parallel.ResultCache` or a directory path) reuses
    previously computed cells.  Neither changes any result bit: see
    :mod:`repro.core.parallel`.  With ``derive_seeds`` (default) each
    cell's noise stream is seeded from the base seed and the cell
    coordinates, decorrelating cells; pass ``False`` to reuse ``base.seed``
    everywhere.  ``analytic``/``planner`` select the closed-form fast
    path and CI-targeted trial allocation, and ``pool`` executes on a
    live :class:`~repro.core.pool.WorkerPool` whose warm workers are
    reused across sweeps — see :func:`~repro.core.parallel.run_cells`.
    """
    from .parallel import plan_cells, run_cells
    cells = plan_cells(base, message_sizes, partition_counts,
                       derive_seeds=derive_seeds)
    results, stats = run_cells(cells, jobs=jobs, cache=cache,
                               progress=progress, analytic=analytic,
                               planner=planner, pool=pool)
    sweep = SweepResult(stats=stats)
    for config, result in zip(cells, results):
        sweep.add(SweepPoint(config=config, result=result))
    return sweep
