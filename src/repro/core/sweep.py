"""Parameter sweeps over the micro-benchmark space.

A sweep runs :func:`~repro.core.runner.run_ptp_benchmark` over a grid of
message sizes × partition counts (× anything else via config overrides) and
organizes the results for the figure-shaped reports: one *series* per
partition count, message size on the x-axis — the layout of the paper's
Figures 4–8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..metrics import SampleSummary
from .config import PtpBenchmarkConfig
from .runner import PtpResult, run_ptp_benchmark

__all__ = ["SweepPoint", "SweepResult", "sweep_ptp",
           "METRIC_NAMES"]

#: The four §3.1 metric attribute names on :class:`PtpResult`.
METRIC_NAMES = ("overhead", "perceived_bandwidth",
                "application_availability", "early_bird_fraction")


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: its configuration and measured result."""

    config: PtpBenchmarkConfig
    result: PtpResult


@dataclass
class SweepResult:
    """All cells of one sweep, queryable as figure-shaped series."""

    points: List[SweepPoint] = field(default_factory=list)

    @property
    def message_sizes(self) -> List[int]:
        """Distinct message sizes, ascending."""
        return sorted({p.config.message_bytes for p in self.points})

    @property
    def partition_counts(self) -> List[int]:
        """Distinct partition counts, ascending."""
        return sorted({p.config.partitions for p in self.points})

    def point(self, message_bytes: int, partitions: int) -> SweepPoint:
        """The cell at (message size, partition count)."""
        for p in self.points:
            if (p.config.message_bytes == message_bytes
                    and p.config.partitions == partitions):
                return p
        raise ConfigurationError(
            f"no sweep point for m={message_bytes}, n={partitions}")

    def series(self, metric: str) -> Dict[int, List[Tuple[int, float]]]:
        """Figure-shaped data: ``{partitions: [(message_bytes, mean), ...]}``.

        ``metric`` is one of :data:`METRIC_NAMES`.
        """
        if metric not in METRIC_NAMES:
            raise ConfigurationError(
                f"unknown metric {metric!r}; choose from {METRIC_NAMES}")
        out: Dict[int, List[Tuple[int, float]]] = {}
        for p in sorted(self.points,
                        key=lambda p: (p.config.partitions,
                                       p.config.message_bytes)):
            summary: SampleSummary = getattr(p.result, metric)
            out.setdefault(p.config.partitions, []).append(
                (p.config.message_bytes, summary.mean))
        return out

    def value(self, metric: str, message_bytes: int,
              partitions: int) -> float:
        """The pruned-mean metric value of one cell."""
        point = self.point(message_bytes, partitions)
        return getattr(point.result, metric).mean


def sweep_ptp(base: PtpBenchmarkConfig,
              message_sizes: Sequence[int],
              partition_counts: Sequence[int],
              progress: Optional[Callable[[PtpBenchmarkConfig], None]] = None,
              ) -> SweepResult:
    """Run the grid ``message_sizes`` × ``partition_counts`` from ``base``.

    Cells where the message is smaller than the partition count are
    skipped (they cannot be split), matching how the paper's figures leave
    those cells empty.
    """
    if not message_sizes or not partition_counts:
        raise ConfigurationError("sweep needs at least one size and count")
    result = SweepResult()
    for n in partition_counts:
        for m in message_sizes:
            if m < n:
                continue
            config = base.with_overrides(message_bytes=m, partitions=n)
            if progress is not None:
                progress(config)
            result.points.append(
                SweepPoint(config=config, result=run_ptp_benchmark(config)))
    return result
