"""The binary wire codec: one packed frame per shipped result.

Every result that crosses a process or storage boundary — a pool worker
streaming a finished cell to the manager, the :class:`ResultCache`
writing an entry to disk — used to travel as a dict of per-sample dicts
of per-partition lists.  Pickling (or JSON-encoding) that shape builds
thousands of small Python objects per cell, and per-object overhead is
exactly the harness cost OMB-Py warns a Python micro-benchmark suite
about.  This module replaces it with a versioned, struct-packed frame:

``
+------+----+-----+--------+--------+-----------+-----------------+
| RPWF | v1 | flg | source | trials | n_samples | digest? fault?  |
+------+----+-----+--------+--------+-----------+-----------------+
| per sample: iteration u32 | message_bytes u64 | partitions u32  |
|             join f64 | pt2pt f64 | pready[P] f64 | arrival[P] f64|
+----------------------------------------------------------------+
``

All integers and floats are little-endian; timestamps are IEEE-754
binary64, which round-trips every Python float *exactly*, so a decoded
result reproduces its metrics — and its SHA-256 event digest — bit for
bit.  The four derived metric names (:data:`METRIC_NAMES`) are interned
here as frame vocabulary rather than serialized per sample: only raw
timelines cross the boundary, and the decoder recomputes metrics the
same way a deserializing load does.

The dict shape (:func:`repro.core.pool.ship_result`) remains the
fallback: :func:`decode_payload` accepts either a binary frame or a
legacy dict, so mixed-version producers and exotic values degrade to
the slow path instead of failing.
"""

from __future__ import annotations

import struct
from typing import Dict, Union

from ..errors import ReproError
from ..faults import FaultOutcome
from ..metrics import PartitionTimeline, PtpMetrics
from .config import PtpBenchmarkConfig
from .runner import PtpResult, PtpSample

__all__ = ["WIRE_VERSION", "WIRE_MAGIC", "METRIC_NAMES", "WireError",
           "encode_result", "decode_result", "decode_payload",
           "is_wire_frame"]

#: Bumped on any incompatible change to the frame layout; the decoder
#: rejects frames from a different version (callers treat that as a
#: cache miss or fall back to the dict path).
WIRE_VERSION = 1

#: First four bytes of every frame.
WIRE_MAGIC = b"RPWF"

#: The interned metric vocabulary of the frame.  Metrics are *derived*:
#: only raw timelines are packed, and the decoder recomputes these four
#: via :meth:`PtpMetrics.from_timeline`, so the names live here once
#: instead of riding every sample.
METRIC_NAMES = ("overhead", "perceived_bandwidth",
                "application_availability", "early_bird_fraction")

#: Interned ``source`` values (index = wire byte).  Unknown sources are
#: carried verbatim as a length-prefixed string.
_SOURCES = ("des", "analytic")
_SOURCE_INLINE = 0xFF

# Header flag bits.
_FLAG_DIGEST_SHA256 = 0x01   # digest present as raw 32 bytes (hex sha256)
_FLAG_DIGEST_STRING = 0x02   # digest present as length-prefixed UTF-8
_FLAG_FAULT_OUTCOME = 0x04

_HEADER = struct.Struct("<4sBBBxII")        # magic, ver, flags, source,
                                            # pad, trials, n_samples
_SAMPLE = struct.Struct("<IQIdd")           # iteration, bytes, partitions,
                                            # join, pt2pt
_FAULT = struct.Struct("<B7IH")             # delivered, 7 counters,
                                            # reason length


class WireError(ReproError):
    """A frame could not be encoded or decoded (corrupt, wrong version)."""


def is_wire_frame(payload: Union[bytes, bytearray, memoryview, Dict]) -> bool:
    """Whether ``payload`` looks like a binary frame (vs a fallback dict)."""
    return (isinstance(payload, (bytes, bytearray, memoryview))
            and bytes(payload[:4]) == WIRE_MAGIC)


def encode_result(result: PtpResult) -> bytes:
    """Pack one result into a binary frame.

    Only the boundary-crossing state is packed — raw timelines, the
    event digest, trial count, provenance, and any fault outcome; the
    config is deliberately *not* part of the frame (the receiver always
    holds the live config the frame answers).
    """
    flags = 0
    digest_piece = b""
    digest = result.event_digest
    if digest is not None:
        try:
            raw = bytes.fromhex(digest)
        except (ValueError, TypeError):
            raw = None
        if raw is not None and len(raw) == 32:
            flags |= _FLAG_DIGEST_SHA256
            digest_piece = raw
        else:
            encoded = str(digest).encode("utf-8")
            if len(encoded) > 0xFFFF:
                raise WireError("event digest too long for a wire frame")
            flags |= _FLAG_DIGEST_STRING
            digest_piece = struct.pack("<H", len(encoded)) + encoded
    fault_piece = b""
    outcome = result.fault_outcome
    if outcome is not None:
        flags |= _FLAG_FAULT_OUTCOME
        reason = outcome.reason.encode("utf-8")
        if len(reason) > 0xFFFF:
            raise WireError("fault reason too long for a wire frame")
        fault_piece = _FAULT.pack(
            1 if outcome.delivered else 0, outcome.drops,
            outcome.retransmits, outcome.duplicates, outcome.acks,
            outcome.abandoned, outcome.stalls, outcome.fail_stops,
            len(reason)) + reason
    try:
        source_idx = _SOURCES.index(result.source)
        source_piece = b""
    except ValueError:
        source_idx = _SOURCE_INLINE
        encoded = str(result.source).encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise WireError("source tag too long for a wire frame")
        source_piece = struct.pack("<H", len(encoded)) + encoded
    trials = result.trials
    n_samples = len(result.samples)
    if not 0 <= trials <= 0xFFFFFFFF or n_samples > 0xFFFFFFFF:
        raise WireError("trial/sample count out of frame range")

    pieces = [_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, flags, source_idx,
                           trials, n_samples),
              source_piece, digest_piece, fault_piece]
    for sample in result.samples:
        timeline = sample.timeline
        p = len(timeline.pready_times)
        if len(timeline.arrival_times) != p:
            raise WireError("ragged timeline cannot be framed")
        pieces.append(_SAMPLE.pack(
            sample.iteration, timeline.message_bytes, p,
            timeline.join_time, timeline.pt2pt_time))
        pieces.append(struct.pack(f"<{2 * p}d", *timeline.pready_times,
                                  *timeline.arrival_times))
    return b"".join(pieces)


def decode_result(config: PtpBenchmarkConfig,
                  frame: Union[bytes, bytearray, memoryview]) -> PtpResult:
    """Rebuild a :class:`PtpResult` from a frame, under a live config.

    Timelines are unpacked exactly (binary64 round trip) and metrics
    recomputed, so the result is indistinguishable from the one that was
    encoded — the golden-digest tests pin this bit for bit.
    """
    view = memoryview(bytes(frame))
    try:
        magic, version, flags, source_idx, trials, n_samples = \
            _HEADER.unpack_from(view, 0)
    except struct.error as exc:
        raise WireError(f"truncated wire frame: {exc}")
    if magic != WIRE_MAGIC:
        raise WireError("not a wire frame (bad magic)")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire frame version {version} (this build reads "
            f"{WIRE_VERSION})")
    offset = _HEADER.size
    try:
        if source_idx == _SOURCE_INLINE:
            (length,) = struct.unpack_from("<H", view, offset)
            offset += 2
            source = bytes(view[offset:offset + length]).decode("utf-8")
            offset += length
        else:
            source = _SOURCES[source_idx]
        digest = None
        if flags & _FLAG_DIGEST_SHA256:
            digest = bytes(view[offset:offset + 32]).hex()
            if len(digest) != 64:
                raise WireError("truncated digest in wire frame")
            offset += 32
        elif flags & _FLAG_DIGEST_STRING:
            (length,) = struct.unpack_from("<H", view, offset)
            offset += 2
            digest = bytes(view[offset:offset + length]).decode("utf-8")
            offset += length
        outcome = None
        if flags & _FLAG_FAULT_OUTCOME:
            unpacked = _FAULT.unpack_from(view, offset)
            offset += _FAULT.size
            reason_len = unpacked[8]
            reason = bytes(
                view[offset:offset + reason_len]).decode("utf-8")
            offset += reason_len
            outcome = FaultOutcome(
                delivered=bool(unpacked[0]), drops=unpacked[1],
                retransmits=unpacked[2], duplicates=unpacked[3],
                acks=unpacked[4], abandoned=unpacked[5],
                stalls=unpacked[6], fail_stops=unpacked[7],
                reason=reason)
        result = PtpResult(config=config, event_digest=digest,
                           fault_outcome=outcome, source=source,
                           trials=trials)
        for _ in range(n_samples):
            iteration, message_bytes, p, join_time, pt2pt_time = \
                _SAMPLE.unpack_from(view, offset)
            offset += _SAMPLE.size
            times = struct.unpack_from(f"<{2 * p}d", view, offset)
            offset += 16 * p
            timeline = PartitionTimeline(
                message_bytes=message_bytes,
                pready_times=list(times[:p]),
                arrival_times=list(times[p:]),
                join_time=join_time,
                pt2pt_time=pt2pt_time)
            result.samples.append(PtpSample(
                iteration=iteration, timeline=timeline,
                metrics=PtpMetrics.from_timeline(timeline)))
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise WireError(f"corrupt wire frame: {exc}")
    if offset != len(view):
        raise WireError(
            f"wire frame has {len(view) - offset} trailing byte(s)")
    return result


def decode_payload(config: PtpBenchmarkConfig,
                   payload: Union[bytes, bytearray, memoryview, Dict],
                   ) -> PtpResult:
    """Rebuild a result from either a binary frame or a fallback dict.

    This is the single entry point consumers use (pool manager, cache
    reads): binary when the producer could frame the result, the
    dict-of-lists shape otherwise.
    """
    if is_wire_frame(payload):
        return decode_result(config, payload)
    # Imported lazily: pool imports this module for encoding.
    from .pool import result_from_shipped
    return result_from_shipped(config, payload)
