"""Sweep comparison: detect metric drift between two runs.

The paper pitches its suite as a tool "that can be used in testing and
development of MPI implementation native solutions" — i.e. you change the
implementation, re-run the suite, and ask *what moved*.  This module does
that mechanically: cell-by-cell relative deltas between a baseline sweep
(possibly loaded from JSON) and a candidate sweep, with a tolerance band
and a rendered drift table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..errors import ConfigurationError
from .persistence import LoadedSweep
from .report import ascii_table, format_bytes
from .sweep import METRIC_NAMES, SweepResult

__all__ = ["Drift", "compare_sweeps", "drift_table", "gate_sweeps",
           "COMPARE_MODES"]

SweepLike = Union[SweepResult, LoadedSweep]

#: Tolerance interpretations for :func:`compare_sweeps`.
COMPARE_MODES = ("relative", "absolute")


@dataclass(frozen=True)
class Drift:
    """One cell whose metric moved beyond tolerance.

    ``relative`` is ``(candidate - baseline) / |baseline|`` — positive
    means the candidate's value is higher.
    """

    metric: str
    message_bytes: int
    partitions: int
    baseline: float
    candidate: float

    @property
    def relative(self) -> float:
        """Signed relative change vs the baseline."""
        if self.baseline == 0.0:
            return float("inf") if self.candidate else 0.0
        return (self.candidate - self.baseline) / abs(self.baseline)

    @property
    def absolute(self) -> float:
        """Signed absolute change vs the baseline."""
        return self.candidate - self.baseline


def _cells(sweep: SweepLike):
    if isinstance(sweep, SweepResult):
        return [(p.config.message_bytes, p.config.partitions)
                for p in sweep.points]
    return [(p.message_bytes, p.partitions) for p in sweep.points]


def compare_sweeps(baseline: SweepLike, candidate: SweepLike,
                   metric: str, tolerance: float = 0.10,
                   mode: str = "relative") -> List[Drift]:
    """Cells where ``metric`` moved by more than ``tolerance``.

    ``mode`` chooses how the tolerance is read: ``"relative"`` compares
    ``|candidate - baseline| / |baseline|`` (a zero baseline with any
    nonzero candidate always drifts), ``"absolute"`` compares the raw
    difference — the right band for metrics that legitimately pass
    through zero, where relative drift is unbounded noise.

    Both sweeps must cover the same (message size, partition count) grid;
    a mismatched grid is an error, not a silent skip — a missing cell is
    itself a regression in coverage.
    """
    if metric not in METRIC_NAMES:
        raise ConfigurationError(
            f"unknown metric {metric!r}; choose from {METRIC_NAMES}")
    if not (0.0 <= tolerance):
        raise ConfigurationError(f"tolerance must be >= 0: {tolerance}")
    if mode not in COMPARE_MODES:
        raise ConfigurationError(
            f"mode must be one of {COMPARE_MODES}: {mode!r}")
    base_cells = sorted(_cells(baseline))
    cand_cells = sorted(_cells(candidate))
    if base_cells != cand_cells:
        raise ConfigurationError(
            f"sweeps cover different grids: baseline has "
            f"{len(base_cells)} cells, candidate {len(cand_cells)}")
    drifts: List[Drift] = []
    for m, n in base_cells:
        b = baseline.value(metric, m, n)
        c = candidate.value(metric, m, n)
        drift = Drift(metric=metric, message_bytes=m, partitions=n,
                      baseline=b, candidate=c)
        moved = abs(drift.relative if mode == "relative" else drift.absolute)
        if moved > tolerance:
            drifts.append(drift)
    return drifts


def gate_sweeps(baseline: SweepLike, candidate: SweepLike,
                metric: str, tolerance: float,
                mode: str = "relative") -> None:
    """Gate form of :func:`compare_sweeps`: raise on any drift.

    The exception message embeds the full drift table, so a failing CI
    cross-validation run (analytic vs DES) shows exactly which cells
    disagreed and by how much.
    """
    drifts = compare_sweeps(baseline, candidate, metric,
                            tolerance=tolerance, mode=mode)
    if drifts:
        raise ConfigurationError(
            f"{metric} drifted beyond {mode} tolerance {tolerance:g}:\n"
            f"{drift_table(drifts)}")


def drift_table(drifts: List[Drift]) -> str:
    """Render detected drifts (or a clean bill of health)."""
    if not drifts:
        return "no drift beyond tolerance"
    rows = []
    for d in sorted(drifts, key=lambda d: -abs(d.relative)):
        rows.append([
            d.metric,
            format_bytes(d.message_bytes),
            str(d.partitions),
            f"{d.baseline:.4g}",
            f"{d.candidate:.4g}",
            f"{d.relative * 100:+.1f}%",
        ])
    return ascii_table(
        ["metric", "message", "parts", "baseline", "candidate", "change"],
        rows, title=f"{len(drifts)} drifted cell(s)")
