"""Parallel sweep execution with content-addressed result caching.

Every figure of the paper is a grid of *independent, deterministic*
simulations: each cell builds its own two-rank cluster from its own
config, so cells can run in any order — or concurrently — without
changing a single bit of any result.  This module exploits that twice:

* :func:`run_cells` fans grid cells out over a persistent
  :class:`~repro.core.pool.WorkerPool` (``jobs`` workers, spawned
  lazily and clamped to the pending cell count), reassembling streamed
  results in the serial cell order so a parallel sweep is bit-identical
  to ``jobs=1`` — and a reused warm pool is bit-identical to both.
  Under an :class:`~repro.metrics.AdaptiveTrialPlanner` the unit of
  pool work shrinks from a cell to a single trial, so CI-targeted
  refinement of one noisy cell overlaps with every other cell's trials.
* :class:`ResultCache` is a content-addressed store keyed by
  :func:`config_fingerprint` — a stable hash of the *fully resolved*
  :class:`~repro.core.config.PtpBenchmarkConfig`, substrate presets
  included.  Re-running a figure only computes cells whose configuration
  actually changed; everything else is reloaded losslessly through
  :mod:`repro.core.persistence`.

Determinism is preserved by construction: per-cell seeds are derived from
the base seed and the cell coordinates (:func:`derive_cell_seed`), never
from execution order, and workers ship raw timelines back to the parent,
which recomputes the derived metrics exactly as a serial run would.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import struct
import threading
from collections import OrderedDict
from enum import Enum
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..errors import ConfigurationError
from .config import PtpBenchmarkConfig
from .persistence import result_from_dict
from .pool import WorkerPool, result_from_shipped
from .runner import PtpResult, run_ptp_benchmark
from .wire import WireError, decode_result, encode_result

__all__ = ["CACHE_SCHEMA_VERSION", "FINGERPRINT_VERSION", "ANALYTIC_MODES",
           "JOIN_TIMEOUT_SECONDS", "SweepStats", "ResultCache",
           "config_fingerprint", "derive_cell_seed", "plan_cells",
           "run_cells"]

#: Default bound on how long a single-flight joiner waits for another
#: caller's in-flight computation before falling back to computing the
#: cell itself.  A leader that dies without reaching ``put`` *or*
#: ``abandon`` (a killed thread, a hard-crashed process) would otherwise
#: park every joiner forever; generous enough that no legitimate cell —
#: even a full-grid faulty one — comes close.
JOIN_TIMEOUT_SECONDS = 120.0

#: Bumped whenever cached entries become unreadable by newer code (layout
#: changes).  Old entries are simply treated as misses (or upgraded by
#: :meth:`ResultCache.migrate` when the stored state is still valid).
#: 2: results carry the instrumentation-stream digest (repro.obs).
#: 3: results carry the fault outcome (repro.faults).
#: 4: results carry their provenance (source + merged trial count).
#: 5: values are binary wire frames (repro.core.wire) instead of JSON.
CACHE_SCHEMA_VERSION = 5

#: Mixed into :func:`config_fingerprint` — bumped only when *simulation
#: semantics* change, so stored results are actually stale.  The v5
#: on-disk format change was layout-only (the same timelines, digests,
#: and provenance, packed differently), so fingerprints deliberately
#: stay compatible with v4: that is what lets ``migrate()`` upgrade a
#: v4 cache in place without recomputing a single cell.
FINGERPRINT_VERSION = 4

#: The JSON value-format generation :meth:`ResultCache.migrate` upgrades.
_LEGACY_JSON_SCHEMA = 4

#: Cache entry envelope: magic, schema, label length; the config label
#: (debuggability only) and the wire frame follow.
_CACHE_MAGIC = b"RPC\x01"
_ENVELOPE = struct.Struct("<4sHH")


# ---------------------------------------------------------------------------
# Content-addressed config fingerprinting
# ---------------------------------------------------------------------------

def _canonical(value):
    """A JSON-able canonical form of any config component.

    Frozen dataclasses (the config itself, machine/network/cost presets)
    expand field by field; enums collapse to their values; noise models and
    other plain objects expand to class name + public attributes, so two
    configs fingerprint equal exactly when every simulated-behaviour input
    is equal.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return _canonical(value.value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    attrs = getattr(value, "__dict__", None)
    if attrs is None:
        raise ConfigurationError(
            f"cannot fingerprint config component {value!r}")
    state = {
        k: _canonical(v)
        for k, v in sorted(attrs.items())
        if not k.startswith("_")
    }
    return {"__class__": type(value).__name__, **state}


def config_fingerprint(config: PtpBenchmarkConfig,
                       salt: Optional[str] = None) -> str:
    """Stable SHA-256 hex digest of a fully resolved benchmark config.

    Two configs share a fingerprint iff every field — sizes, counts, noise
    model and its parameters, cache mode, impl, iteration counts, seed, and
    the whole machine/network/cost substrate — is equal.  The digest is
    stable across processes and Python versions (no use of ``hash()``).

    The base digest is memoized on the (frozen) config instance — a
    sweep fingerprints each cell several times (cache get, cache put,
    memory tier), and canonicalizing the whole substrate again each time
    was pure waste.  ``salt`` mixes an execution-policy discriminator
    into the digest (e.g. an adaptive planner's settings) so results
    produced under different policies never alias; the memoized base is
    unaffected.
    """
    fingerprint = config.__dict__.get("_fingerprint")
    if fingerprint is None:
        # Keyed by FINGERPRINT_VERSION, *not* the on-disk schema: a
        # layout-only schema bump must keep every identity stable.
        payload = {"schema": FINGERPRINT_VERSION,
                   "config": _canonical(config)}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fingerprint = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        # The config is a frozen dataclass; stash via object.__setattr__.
        # ``_canonical`` walks declared fields only, so the memo can
        # never leak into another config's digest.
        object.__setattr__(config, "_fingerprint", fingerprint)
    if salt is not None:
        fingerprint = hashlib.sha256(
            f"{fingerprint}|{salt}".encode("utf-8")).hexdigest()
    return fingerprint


def derive_cell_seed(base_seed: int, message_bytes: int,
                     partitions: int, trial: int = 0) -> int:
    """Deterministic per-cell seed, independent of execution order.

    Mixes the sweep's base seed with the cell coordinates through SHA-256,
    so every cell gets a decorrelated noise stream and serial, parallel,
    and cached runs of the same grid all see identical draws.

    ``trial`` decorrelates the extra repetitions an
    :class:`~repro.metrics.AdaptiveTrialPlanner` appends to one cell.
    Trial 0 reuses the cell's own seed blob (bit-compatible with every
    seed derived before the planner existed).
    """
    blob = f"{base_seed}|{message_bytes}|{partitions}"
    if trial:
        blob += f"|t{trial}"
    return int.from_bytes(
        hashlib.sha256(blob.encode("utf-8")).digest()[:8], "little")


# ---------------------------------------------------------------------------
# The content-addressed result cache
# ---------------------------------------------------------------------------

class _Flight:
    """One in-flight computation another caller can wait on."""

    __slots__ = ("event", "entry")

    def __init__(self) -> None:
        self.event = threading.Event()
        #: Set by the leader's put(): (samples, digest, outcome, source,
        #: trials) — the memory-tier entry shape.  None after abandon().
        self.entry: Optional[tuple] = None


class ResultCache:
    """Content-addressed store of :class:`PtpResult` objects on disk.

    Layout: ``<root>/<first two hex chars>/<fingerprint>.bin`` —
    git-object-style fingerprint-prefix shards, one file per
    configuration, each a small envelope around a binary
    :mod:`~repro.core.wire` frame (schema v5).  Entries are written
    atomically (tmp file + rename) and reads take no lock of any kind,
    so concurrent sweeps sharing a cache directory cannot corrupt or
    block each other.  Hit/miss/store counters accumulate across calls
    and feed the sweep report; :meth:`stats` snapshots them.

    An in-process LRU tier (``memory_entries`` results, the first slice
    of the ROADMAP sweep-service memory tier) sits in front of the disk
    reads: repeated gets for the same cell — report regeneration,
    comparison runs, a service loop — skip the decode entirely.
    ``memory_hits`` counts the gets it absorbed (also included in
    ``hits``).

    Concurrent *computations* of the same fingerprint are collapsed by a
    per-fingerprint single-flight registry (:meth:`claim` /
    :meth:`join`): the first caller becomes the leader and executes; any
    other caller that arrives before the leader's :meth:`put` blocks on
    the registration and shares the leader's result instead of
    recomputing it.  The engine surfaces those as
    ``SweepStats.singleflight_hits``.  All bookkeeping is thread-safe;
    a cache instance may be shared by concurrent sweeps.
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 memory_entries: int = 128):
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0: {memory_entries}")
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.memory_hits = 0
        #: Gets answered by joining another caller's in-flight
        #: computation instead of reading or recomputing.
        self.singleflight_hits = 0
        self._memory_entries = memory_entries
        #: fingerprint -> (samples, event_digest, fault_outcome, source,
        #: trials); samples are frozen PtpSample objects, shared between
        #: the tier and every result handed out (copied lists, so caller
        #: mutations of ``result.samples`` cannot corrupt the tier).
        self._memory: "OrderedDict[str, tuple]" = OrderedDict()
        #: fingerprint -> _Flight for computations currently in flight.
        self._inflight: Dict[str, _Flight] = {}
        self._lock = threading.Lock()

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.bin"

    def _remember(self, fingerprint: str, result: PtpResult) -> None:
        if self._memory_entries == 0:
            return
        with self._lock:
            self._memory[fingerprint] = (
                tuple(result.samples), result.event_digest,
                result.fault_outcome, result.source, result.trials)
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    @staticmethod
    def _from_entry(config: PtpBenchmarkConfig, entry: tuple) -> PtpResult:
        samples, digest, outcome, source, trials = entry
        return PtpResult(config=config, samples=list(samples),
                         event_digest=digest, fault_outcome=outcome,
                         source=source, trials=trials)

    def get(self, config: PtpBenchmarkConfig,
            salt: Optional[str] = None) -> Optional[PtpResult]:
        """The cached result for ``config``, or None (counted as a miss).

        The returned result carries the *live* ``config`` object, so it is
        indistinguishable from a freshly computed one; metrics are
        recomputed from the stored timelines, which round-trip exactly.
        ``salt`` must match the one the result was stored under.
        """
        fingerprint = config_fingerprint(config, salt)
        with self._lock:
            entry = self._memory.get(fingerprint)
            if entry is not None:
                self._memory.move_to_end(fingerprint)
                self.hits += 1
                self.memory_hits += 1
        if entry is not None:
            return self._from_entry(config, entry)
        path = self._path(fingerprint)
        try:
            blob = path.read_bytes()
            magic, schema, label_len = _ENVELOPE.unpack_from(blob, 0)
        except (OSError, struct.error):
            with self._lock:
                self.misses += 1
            return None
        if magic != _CACHE_MAGIC or schema != CACHE_SCHEMA_VERSION:
            with self._lock:
                self.misses += 1
            return None
        try:
            result = decode_result(
                config, memoryview(blob)[_ENVELOPE.size + label_len:])
        except WireError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        self._remember(fingerprint, result)
        return result

    def _write(self, fingerprint: str, label: str, frame: bytes) -> None:
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = label.encode("utf-8")[:0xFFFF]
        payload = _ENVELOPE.pack(_CACHE_MAGIC, CACHE_SCHEMA_VERSION,
                                 len(encoded)) + encoded + frame
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)

    def put(self, config: PtpBenchmarkConfig, result: PtpResult,
            salt: Optional[str] = None) -> None:
        """Store ``result`` under ``config``'s fingerprint (atomic).

        Also publishes the result to any caller blocked in :meth:`join`
        on the same fingerprint (the single-flight hand-off).
        """
        fingerprint = config_fingerprint(config, salt)
        self._write(fingerprint, config.label(), encode_result(result))
        with self._lock:
            self.stores += 1
            # The memory tier holds *validated reads* only — remembering
            # the put here would let a get return an entry that no longer
            # matches what is on disk (e.g. after an external rewrite).
            # The first get pays one decode; every later one is free.
            self._memory.pop(fingerprint, None)
            flight = self._inflight.pop(fingerprint, None)
        if flight is not None:
            flight.entry = (tuple(result.samples), result.event_digest,
                            result.fault_outcome, result.source,
                            result.trials)
            flight.event.set()

    # -- single-flight ----------------------------------------------------

    def claim(self, fingerprint: str) -> Optional[_Flight]:
        """Try to become the computation leader for ``fingerprint``.

        Returns None when the caller now leads — it *must* eventually
        :meth:`put` the result (which publishes it) or :meth:`abandon`
        the claim.  Otherwise returns the existing in-flight
        registration, to be handed to :meth:`join`.
        """
        with self._lock:
            flight = self._inflight.get(fingerprint)
            if flight is None:
                self._inflight[fingerprint] = _Flight()
                return None
            return flight

    def join(self, flight: _Flight, config: PtpBenchmarkConfig,
             timeout: Optional[float] = JOIN_TIMEOUT_SECONDS,
             ) -> Optional[PtpResult]:
        """Wait for a claimed computation and share its result.

        Returns None if the leader abandoned (or ``timeout`` expired) —
        the caller should then compute the cell itself.  The default
        timeout is bounded (:data:`JOIN_TIMEOUT_SECONDS`): a leader that
        dies without reaching :meth:`put` or :meth:`abandon` must not
        park joiners forever.  Pass ``None`` only when the caller has
        its own liveness guarantee for the leader.
        """
        if not flight.event.wait(timeout):
            return None
        if flight.entry is None:
            return None
        with self._lock:
            self.singleflight_hits += 1
        return self._from_entry(config, flight.entry)

    def abandon(self, fingerprint: str) -> None:
        """Release a claim without a result (leader failed); wakes joiners."""
        with self._lock:
            flight = self._inflight.pop(fingerprint, None)
        if flight is not None:
            flight.event.set()

    # -- maintenance ------------------------------------------------------

    def __len__(self) -> int:
        """Number of (current-schema) entries on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.bin"))

    def stats(self) -> Dict[str, int]:
        """Snapshot of the counters plus the on-disk entry count.

        The counters are snapshotted atomically under the lock; the
        on-disk entry count — a glob over the whole shard tree — is
        taken *after* the lock is released.  Holding the lock across
        that filesystem walk would stall every concurrent ``put``,
        ``claim``, and memory-tier ``get`` behind disk latency, which a
        many-client service polling ``/stats`` would turn into a
        periodic whole-cache convoy.
        """
        with self._lock:
            snapshot = {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "memory_hits": self.memory_hits,
                "singleflight_hits": self.singleflight_hits,
                "memory_entries": len(self._memory),
                "inflight": len(self._inflight),
            }
        snapshot["entries"] = len(self)
        return snapshot

    def describe(self) -> str:
        """One-line cache summary for reports and the CLI."""
        s = self.stats()
        line = (f"cache at {self.root}: {s['entries']} entry(ies), "
                f"{s['hits']} hits ({s['memory_hits']} memory), "
                f"{s['misses']} misses, {s['stores']} stored")
        if s["singleflight_hits"]:
            line += f", {s['singleflight_hits']} single-flight"
        return line

    def clear(self) -> int:
        """Delete every entry and reset *all* counters with the store.

        Returns how many entries were on disk.  Counters are part of the
        cleared state: a cleared cache reports like a fresh one instead
        of carrying hit/miss history for entries that no longer exist.
        """
        removed = len(self)
        if self.root.exists():
            shutil.rmtree(self.root)
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.stores = 0
            self.memory_hits = 0
            self.singleflight_hits = 0
        return removed

    def migrate(self) -> int:
        """One-shot upgrade of legacy v4 JSON entries to the v5 format.

        Handles both historical layouts — flat ``<root>/<fp>.json`` and
        sharded ``<root>/ab/<fp>.json`` — re-encoding each record's
        timelines as a wire frame under the sharded binary layout and
        removing the JSON original.  Fingerprints are preserved verbatim
        (the v4→v5 change was layout-only, see
        :data:`FINGERPRINT_VERSION`), so every migrated entry resolves
        for exactly the configs it did before, with zero recomputation.
        Returns the number of entries migrated; unreadable or
        older-schema files are left untouched.
        """
        if not self.root.exists():
            return 0
        migrated = 0
        candidates = (list(self.root.glob("*.json"))
                      + list(self.root.glob("*/*.json")))
        for path in candidates:
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            fingerprint = data.get("fingerprint")
            if data.get("schema") != _LEGACY_JSON_SCHEMA or not fingerprint:
                continue
            try:
                result = result_from_dict(data["result"])
                frame = encode_result(result)
            except (KeyError, ConfigurationError, WireError):
                continue
            self._write(fingerprint, data.get("label", ""), frame)
            path.unlink()
            migrated += 1
        return migrated


# ---------------------------------------------------------------------------
# The execution engine
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class SweepStats:
    """How a sweep's cells were produced — the report's provenance line."""

    jobs: int = 1
    total_cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: Cells answered by the closed-form evaluator (no simulation).
    analytic: int = 0
    #: Benchmark trials simulated across all executed cells — worker
    #: processes included (their counts ship back with the results), so
    #: this is accurate under ``jobs > 1`` where the in-process
    #: ``ExecutionCounter`` by design is not.
    trials: int = 0
    #: Pool tasks executed by a worker that was already warm (booted
    #: before this sweep started) — nonzero only when a kept pool is
    #: reused across sweeps.
    warm_hits: int = 0
    #: Pool tasks an idle worker stole from a loaded peer's queue.
    stolen_cells: int = 0
    #: Cells answered by sharing another identical cell's in-flight
    #: execution (duplicates in this grid, or a concurrent sweep on the
    #: same cache) instead of executing or reading a stored entry.
    singleflight_hits: int = 0
    #: Completed pool tasks per worker id (-1 = run inline in the
    #: manager after crash recovery).  Under an adaptive planner the
    #: unit of work is a single trial, otherwise a whole cell.
    worker_cells: Dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def cache_misses(self) -> int:
        """Cells that had to be computed despite a cache being attached."""
        return self.total_cells - self.cache_hits

    def describe(self) -> str:
        """One-line summary for sweep reports."""
        line = (f"{self.total_cells} cells: {self.executed} executed "
                f"({self.trials} trials)")
        if self.analytic:
            line += f", {self.analytic} analytic"
        line += f", {self.cache_hits} cache hits"
        if self.singleflight_hits:
            line += f", {self.singleflight_hits} single-flight"
        if self.worker_cells:
            spread = " ".join(
                (f"w{w}:{c}" if w >= 0 else f"inline:{c}")
                for w, c in sorted(self.worker_cells.items()))
            line += (f", {self.warm_hits} warm, {self.stolen_cells} "
                     f"stolen [{spread}]")
        line += f" (jobs={self.jobs})"
        return line


def plan_cells(base: PtpBenchmarkConfig,
               message_sizes: Sequence[int],
               partition_counts: Sequence[int],
               derive_seeds: bool = True) -> List[PtpBenchmarkConfig]:
    """Resolve a grid into its per-cell configs, in serial sweep order.

    Cells where the message is smaller than the partition count are
    skipped (they cannot be split), matching how the paper's figures leave
    those cells empty.  With ``derive_seeds`` (the default) each cell's
    seed comes from :func:`derive_cell_seed`; otherwise every cell reuses
    ``base.seed`` (the pre-parallel behaviour).
    """
    if not message_sizes or not partition_counts:
        raise ConfigurationError("sweep needs at least one size and count")
    cells: List[PtpBenchmarkConfig] = []
    for n in partition_counts:
        for m in message_sizes:
            if m < n:
                continue
            overrides = {"message_bytes": m, "partitions": n}
            if derive_seeds:
                overrides["seed"] = derive_cell_seed(base.seed, m, n)
            cells.append(base.with_overrides(**overrides))
    return cells


def _run_des_cell(config: PtpBenchmarkConfig, planner=None) -> PtpResult:
    """One cell through the simulator, adaptively re-trialled if planned."""
    if planner is not None:
        return planner.run_cell(config)
    return run_ptp_benchmark(config)


def _run_pooled(pool: WorkerPool,
                pending: List[Tuple[int, PtpBenchmarkConfig]],
                results: Dict[int, PtpResult],
                stats: SweepStats,
                planner=None) -> None:
    """Stream the pending cells through a :class:`WorkerPool` session.

    Plain (or deterministic) cells are whole-cell tasks keyed
    ``(cell, -1)``.  Under a planner, each nondeterministic cell is
    decomposed into per-trial tasks keyed ``(cell, trial)``; follow-up
    batches are submitted the moment a cell's scheduled trials have all
    streamed back, using the planner's own
    :meth:`~repro.metrics.AdaptiveTrialPlanner.plan_next` — the same
    decision procedure, fed the same trial-ordered results, as the
    serial path, so trial counts and merged digests are bit-identical
    while one cell's refinement overlaps every other cell's work.
    """
    session = pool.session()
    configs = dict(pending)
    trial_results: Dict[int, Dict[int, PtpResult]] = {}
    scheduled: Dict[int, int] = {}

    def submit_trials(i: int, config: PtpBenchmarkConfig,
                      count: int) -> None:
        start = scheduled.get(i, 0)
        trial_cfgs = planner.trial_configs(config, start, count)
        for t, trial_cfg in enumerate(trial_cfgs, start):
            session.submit((i, t), trial_cfg)
        scheduled[i] = start + count

    for i, config in pending:
        if planner is not None and not config.is_deterministic:
            trial_results[i] = {}
            submit_trials(i, config, planner.plan_next(config, []))
        else:
            session.submit((i, -1), config)

    for (i, t), shipped in session.results():
        config = configs[i]
        if t < 0:
            results[i] = result_from_shipped(config, shipped)
            continue
        done = trial_results[i]
        done[t] = result_from_shipped(planner.trial_config(config, t),
                                      shipped)
        if len(done) < scheduled[i]:
            continue
        ordered = [done[trial] for trial in range(len(done))]
        more = planner.plan_next(config, ordered)
        if more:
            submit_trials(i, config, more)
        else:
            results[i] = planner.merge_trials(config, ordered)

    run = session.stats
    pool.stats.absorb(run)
    stats.warm_hits += run.warm_tasks
    stats.stolen_cells += run.stolen_tasks
    for worker_id, count in run.worker_tasks.items():
        stats.worker_cells[worker_id] = \
            stats.worker_cells.get(worker_id, 0) + count


#: ``analytic`` dispatch modes accepted by :func:`run_cells`.
ANALYTIC_MODES = ("off", "auto", "only")


def run_cells(cells: Sequence[PtpBenchmarkConfig],
              jobs: Optional[int] = None,
              cache: Optional[Union[ResultCache, str, pathlib.Path]] = None,
              progress: Optional[Callable[[PtpBenchmarkConfig], None]] = None,
              analytic: str = "off",
              planner=None,
              pool: Optional[WorkerPool] = None,
              join_timeout: Optional[float] = JOIN_TIMEOUT_SECONDS,
              ) -> Tuple[List[PtpResult], SweepStats]:
    """Produce one result per cell, in order; the engine behind sweeps.

    Parameters
    ----------
    cells:
        Fully resolved configs, e.g. from :func:`plan_cells`.
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``jobs=1``
        runs inline in this process (no pool, no serialization detour for
        cached comparisons — results are identical either way).
    cache:
        A :class:`ResultCache`, or a path to create one at, or ``None`` to
        always simulate.  Hits skip simulation entirely; fresh results are
        stored back.
    progress:
        Called with each cell's config as it is *planned* (before any
        simulation), mirroring the serial sweep's callback contract.
    analytic:
        ``"off"`` (default) simulates every cell; ``"auto"`` answers
        analytic-eligible cache misses with the closed-form evaluator
        (:mod:`repro.analytic`) and simulates the rest; ``"only"``
        raises on any cell the evaluator cannot answer.  Analytic
        results carry ``source="analytic"`` and are *not* written to the
        cache — the evaluator is already faster than a disk read.
    planner:
        An :class:`~repro.metrics.AdaptiveTrialPlanner`; nondeterministic
        DES cells then run trials until their CI target is met.  Planned
        results are cached under a planner-salted fingerprint so they
        never alias fixed-trial entries.  On a pool, each trial is its
        own task, so one cell's refinement overlaps other cells.
    pool:
        A live :class:`~repro.core.pool.WorkerPool` to execute on — its
        warm workers are reused and left running (the CLI's ``--pool
        keep`` mode, and the sweep-service execution path).  ``None``
        spawns a transient pool sized ``min(jobs, pending cells)`` when
        ``jobs > 1`` needs one, and shuts it down afterwards.  Results
        are bit-identical in every mode.
    join_timeout:
        Bound (seconds) on waiting for a *concurrent* sweep's in-flight
        computation of an identical cell before giving up and computing
        it here (default :data:`JOIN_TIMEOUT_SECONDS`).  ``None`` waits
        forever — only safe when every possible leader is known to
        reach ``put`` or ``abandon``.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1: {jobs}")
    if analytic not in ANALYTIC_MODES:
        raise ConfigurationError(
            f"analytic must be one of {ANALYTIC_MODES}: {analytic!r}")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    # Imported lazily: repro.analytic imports this package's runner, so a
    # module-scope import would be circular for ``import repro.analytic``.
    if analytic != "off":
        from ..analytic import analytic_supported, evaluate_analytic

    def cell_salt(config: PtpBenchmarkConfig) -> Optional[str]:
        # The planner only changes what runs for nondeterministic cells;
        # deterministic ones stay bit-compatible with unplanned entries.
        if planner is not None and not config.is_deterministic:
            return planner.cache_salt()
        return None

    stats = SweepStats(jobs=jobs, total_cells=len(cells))
    results: Dict[int, PtpResult] = {}
    pending: List[Tuple[int, PtpBenchmarkConfig]] = []
    #: fingerprint -> leader cell index, for cells this call executes.
    claimed: Dict[str, int] = {}
    #: This grid's duplicate cells: they share the leader's result.
    followers: List[Tuple[int, str]] = []
    #: Cells a *concurrent* sweep (same cache) is already computing.
    joiners: List[Tuple[int, PtpBenchmarkConfig, _Flight, str]] = []
    for i, config in enumerate(cells):
        if progress is not None:
            progress(config)
        cached = (cache.get(config, salt=cell_salt(config))
                  if cache is not None else None)
        if cached is not None:
            results[i] = cached
            stats.cache_hits += 1
            continue
        if analytic != "off":
            reason = analytic_supported(config)
            if reason is None:
                results[i] = evaluate_analytic(config)
                stats.analytic += 1
                continue
            if analytic == "only":
                raise ConfigurationError(
                    f"analytic=only, but cell {config.label()} needs the "
                    f"simulator: {reason}")
        # Single-flight: identical uncached cells execute exactly once.
        fingerprint = config_fingerprint(config, cell_salt(config))
        if fingerprint in claimed:
            followers.append((i, fingerprint))
            stats.singleflight_hits += 1
            continue
        if cache is not None:
            flight = cache.claim(fingerprint)
            if flight is not None:
                joiners.append((i, config, flight, fingerprint))
                stats.singleflight_hits += 1
                continue
        claimed[fingerprint] = i
        pending.append((i, config))

    stats.executed = len(pending)

    if pending:
        try:
            if pool is None and (jobs == 1 or len(pending) == 1):
                for i, config in pending:
                    results[i] = _run_des_cell(config, planner)
            elif pool is not None:
                _run_pooled(pool, pending, results, stats, planner)
            else:
                # Transient pool, clamped to the work: ``--jobs 64`` on a
                # 4-cell grid spawns 4 workers, not 64.
                transient = WorkerPool(min(jobs, len(pending)))
                try:
                    _run_pooled(transient, pending, results, stats, planner)
                finally:
                    transient.shutdown()
            for i, config in pending:
                stats.trials += results[i].trials
                if cache is not None:
                    # put() also publishes to any concurrent joiner.
                    cache.put(config, results[i], salt=cell_salt(config))
        except BaseException:
            if cache is not None:
                # Wake anyone waiting on our claims; they recompute.
                for fingerprint in claimed:
                    cache.abandon(fingerprint)
            raise

    for i, fingerprint in followers:
        # Duplicate configs are bit-identical by construction, so the
        # leader's (immutable-sample) result is shared as-is.
        results[i] = results[claimed[fingerprint]]
    for i, config, flight, fingerprint in joiners:
        joined = cache.join(flight, config, timeout=join_timeout)
        if joined is None:
            # The concurrent leader abandoned (or died without ever
            # publishing, and the bounded join expired): compute the
            # cell here.  The put below pops any stale flight and wakes
            # its remaining joiners with this result.
            joined = _run_des_cell(config, planner)
            stats.executed += 1
            stats.trials += joined.trials
            cache.put(config, joined, salt=cell_salt(config))
        results[i] = joined

    return [results[i] for i in range(len(cells))], stats
