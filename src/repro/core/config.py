"""Benchmark configuration for the point-to-point micro-benchmarks.

One :class:`PtpBenchmarkConfig` describes a single cell of the paper's
parameter space: message size × partition count × compute amount × noise
model × cache mode × implementation, plus substrate overrides for the
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from typing import Optional

from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..machine import BindPolicy, MachineSpec, NIAGARA_NODE
from ..mpi import DEFAULT_COSTS, MPICosts, ThreadingMode
from ..network import INTRA_NODE, NIAGARA_EDR, NetworkParams
from ..noise import NoNoise, NoiseModel
from ..partitioned import IMPL_MPIPCL, IMPL_NATIVE

__all__ = ["PtpBenchmarkConfig", "HOT", "COLD",
           "PAPER_MESSAGE_SIZES", "PAPER_PARTITION_COUNTS"]

#: Cache modes (§3.4).
HOT = "hot"
COLD = "cold"

#: Message sizes covering the paper's figures: 64 B – 16 MiB.
PAPER_MESSAGE_SIZES: Tuple[int, ...] = tuple(
    64 * 4 ** k for k in range(10))  # 64 B ... 16 MiB

#: Partition counts of Figures 4–8 (one thread per partition).
PAPER_PARTITION_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class PtpBenchmarkConfig:
    """One point of the micro-benchmark parameter space.

    Attributes
    ----------
    message_bytes:
        Total message size ``m``; partitions are ``m / partitions`` each.
    partitions:
        Partition count = thread count (one thread per partition, §2.1).
    compute_seconds:
        Nominal per-thread compute ``comp`` (the paper uses 10 ms / 100 ms).
    noise:
        Injected-noise model (§3.3).
    cache:
        ``"hot"`` (buffers stay resident) or ``"cold"`` (invalidate every
        iteration, §3.4).
    impl:
        Partitioned implementation: ``"mpipcl"`` (paper) or ``"native"``
        (idealized extension).
    iterations / warmup:
        Measured and discarded iteration counts.
    seed:
        Master seed for noise streams.
    mode / bind_policy / spec / inter_node / intra_node / costs:
        Substrate configuration, defaulting to the Niagara calibration.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; part of the config
        fingerprint, so a cached clean result is never returned for a
        faulty configuration (and vice versa).
    """

    message_bytes: int
    partitions: int
    #: Partitions each thread owns (the paper uses 1:1; MPI allows more —
    #: §2.1 "one or more partitions can be assigned to each thread").
    #: ``partitions`` must be a multiple; the team size is
    #: ``partitions // partitions_per_thread``.
    partitions_per_thread: int = 1
    compute_seconds: float = 0.010
    noise: NoiseModel = field(default_factory=NoNoise)
    cache: str = HOT
    impl: str = IMPL_MPIPCL
    iterations: int = 5
    warmup: int = 1
    seed: int = 0
    mode: ThreadingMode = ThreadingMode.MULTIPLE
    bind_policy: BindPolicy = BindPolicy.COMPACT
    spec: MachineSpec = NIAGARA_NODE
    inter_node: NetworkParams = NIAGARA_EDR
    intra_node: NetworkParams = INTRA_NODE
    costs: MPICosts = DEFAULT_COSTS
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.message_bytes < 1:
            raise ConfigurationError(
                f"message_bytes must be >= 1: {self.message_bytes}")
        if self.partitions < 1:
            raise ConfigurationError(
                f"partitions must be >= 1: {self.partitions}")
        if self.message_bytes < self.partitions:
            raise ConfigurationError(
                f"{self.partitions} partitions need at least that many "
                f"bytes, got {self.message_bytes}")
        if self.compute_seconds < 0:
            raise ConfigurationError(
                f"compute_seconds must be >= 0: {self.compute_seconds}")
        if self.cache not in (HOT, COLD):
            raise ConfigurationError(
                f"cache must be '{HOT}' or '{COLD}': {self.cache!r}")
        if self.impl not in (IMPL_MPIPCL, IMPL_NATIVE):
            raise ConfigurationError(f"unknown impl {self.impl!r}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1: {self.iterations}")
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0: {self.warmup}")
        if self.partitions_per_thread < 1:
            raise ConfigurationError(
                f"partitions_per_thread must be >= 1: "
                f"{self.partitions_per_thread}")
        if self.partitions % self.partitions_per_thread != 0:
            raise ConfigurationError(
                f"partitions ({self.partitions}) must be a multiple of "
                f"partitions_per_thread ({self.partitions_per_thread})")

    @property
    def threads(self) -> int:
        """Team size: one thread per ``partitions_per_thread`` partitions."""
        return self.partitions // self.partitions_per_thread

    @property
    def partition_bytes(self) -> int:
        """Nominal bytes per partition (exact sizes may differ by 1 B)."""
        return self.message_bytes // self.partitions

    @property
    def total_iterations(self) -> int:
        """Warmup plus measured iterations."""
        return self.warmup + self.iterations

    @property
    def is_deterministic(self) -> bool:
        """True when every trial of this cell is bit-identical.

        No fault plan, and a noise model that hands every thread exactly
        ``compute_seconds``: :class:`~repro.noise.NoNoise`, or any
        percent-parameterised model dialled to 0% (the sweeps' noise
        axes start at 0).  Deterministic cells need one trial — and are
        the candidates for the :mod:`repro.analytic` fast path.
        """
        if self.faults is not None:
            return False
        return (isinstance(self.noise, NoNoise)
                or getattr(self.noise, "noise_percent", None) == 0)

    def with_overrides(self, **kwargs) -> "PtpBenchmarkConfig":
        """Copy with fields replaced (sweeps and ablations)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        """Compact description used in reports."""
        base = (f"m={self.message_bytes}B n={self.partitions} "
                f"comp={self.compute_seconds * 1e3:g}ms "
                f"noise={self.noise.describe()} cache={self.cache} "
                f"impl={self.impl}")
        if self.faults is not None:
            base += f" faults[{self.faults.describe()}]"
        return base
