"""The point-to-point micro-benchmark trial runner.

Implements the measurement procedure behind the paper's Figure 3.  Every
iteration runs *both* models back to back with **common random numbers**
(identical per-thread compute draws), so the single-send reference join
time and ``t_pt2pt`` are the "equivalent" quantities the metric equations
demand:

1. *Partitioned phase* — both sides ``start``; the sender forks one thread
   per partition; each thread computes its (noise-inflated) amount and
   calls ``MPI_Pready``; the receiver's arrival times are taken from the
   ``part.arrived`` events.
2. *Single-send phase* — the sender forks the same team with the same
   compute draws, joins, then issues one ``m``-byte send matched by a
   pre-posted receive.

The programs do no bookkeeping of their own: they emit ``bench.*`` phase
markers on the cluster's instrumentation bus and the streaming
:class:`~repro.obs.TimelineBuilder` sink assembles one
:class:`~repro.metrics.timeline.PartitionTimeline` per iteration from the
markers plus the runtime's ``part.pready``/``part.arrived`` events.  A
:class:`~repro.obs.DigestSink` fingerprints the full event stream, so
serial, parallel, and cached executions can be proven bit-identical.

A cold-cache configuration invalidates both ranks' caches at the top of
every iteration (§3.4); a hot-cache one relies on the warmup iteration to
install the buffers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError, DeadlockError
from ..faults import FaultOutcome
from ..metrics import PartitionTimeline, PtpMetrics, SampleSummary, summarize
from ..mpi import Cluster
from ..obs import DigestSink, Sink, TimelineBuilder
from ..obs.kinds import (BENCH_JOIN, BENCH_PART_BEGIN, BENCH_RECV_COMPLETE,
                         BENCH_SEND_BEGIN, BENCH_SINGLE_BEGIN)
from .config import COLD, PtpBenchmarkConfig

__all__ = ["PtpSample", "PtpResult", "run_ptp_benchmark", "run_ptp_trial",
           "ExecutionCounter", "EXECUTIONS"]

#: Tags used by the two phases (ordinary user tag space).
_PART_TAG = 100
_SINGLE_TAG = 101


class ExecutionCounter:
    """Counts full benchmark trials run *in this process*.

    The parallel engine's cache tests use it to prove a cached re-run
    executed zero simulations.  Worker processes each count their own
    trials, so under ``jobs > 1`` the parent's counter only reflects
    inline (non-pooled) executions; use
    :class:`~repro.core.parallel.SweepStats` for sweep-level accounting.

    Increments are lock-protected: concurrent sweeps sharing one cache
    (the single-flight tests) drive trials from several threads, and an
    unguarded ``+= 1`` can lose counts across an interleaving.
    """

    def __init__(self) -> None:
        #: Trials run in this process since import (or the last reset).
        self.value = 0
        self._lock = threading.Lock()

    def bump(self) -> None:
        """Record one benchmark trial."""
        with self._lock:
            self.value += 1

    def reset(self) -> None:
        """Zero the counter (tests isolate their measurements with this)."""
        with self._lock:
            self.value = 0


#: Module-level trial counter (see :class:`ExecutionCounter`).
EXECUTIONS = ExecutionCounter()


@dataclass(frozen=True)
class PtpSample:
    """One measured iteration: the raw timeline plus its four metrics."""

    iteration: int
    timeline: PartitionTimeline
    metrics: PtpMetrics


@dataclass
class PtpResult:
    """All measured iterations of one configuration, with summaries.

    ``event_digest`` is the SHA-256 fingerprint of the trial's full
    instrumentation stream (``None`` for results rebuilt from formats
    that predate it); equal digests prove two executions saw the same
    events in the same order with bit-identical payloads.

    ``fault_outcome`` is populated only for trials run under a
    :class:`~repro.faults.FaultPlan`: what the fault machinery saw, and —
    for trials that hit the deadline, a fail-stop, or an exhausted retry
    budget — why the samples are partial or absent.

    ``source`` records how the samples were produced: ``"des"`` for
    simulated trials, ``"analytic"`` for closed-form evaluations (see
    :mod:`repro.analytic`).  ``trials`` is how many simulations fed the
    samples — 1 for a plain trial, more when an
    :class:`~repro.metrics.AdaptiveTrialPlanner` merged repetitions, and
    0 for analytic results (nothing was simulated).
    """

    config: PtpBenchmarkConfig
    samples: List[PtpSample] = field(default_factory=list)
    event_digest: Optional[str] = None
    fault_outcome: Optional[FaultOutcome] = None
    source: str = "des"
    trials: int = 1

    def _summary(self, attr: str) -> SampleSummary:
        return summarize([getattr(s.metrics, attr) for s in self.samples])

    @property
    def overhead(self) -> SampleSummary:
        """Eq. (1) across iterations."""
        return self._summary("overhead")

    @property
    def perceived_bandwidth(self) -> SampleSummary:
        """Eq. (2) across iterations (bytes/second)."""
        return self._summary("perceived_bandwidth")

    @property
    def application_availability(self) -> SampleSummary:
        """Eq. (3) across iterations."""
        return self._summary("application_availability")

    @property
    def early_bird_fraction(self) -> SampleSummary:
        """Eq. (4) across iterations (0–1)."""
        return self._summary("early_bird_fraction")

    def metric_summary(self, metric: str) -> SampleSummary:
        """Summary by metric name (the four attribute names above)."""
        if not hasattr(PtpMetrics, "__dataclass_fields__") or \
                metric not in PtpMetrics.__dataclass_fields__:
            raise ConfigurationError(f"unknown metric {metric!r}")
        return self._summary(metric)


def _sender_program(ctx, config: PtpBenchmarkConfig):
    comm, main = ctx.comm, ctx.main
    m, n = config.message_bytes, config.partitions
    rng = ctx.rng("noise")
    ps = yield from comm.psend_init(main, 1, _PART_TAG, m, n,
                                    impl=config.impl)
    nthreads = config.threads
    ppt = config.partitions_per_thread
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if config.cache == COLD:
            yield from ctx.invalidate_cache()
        computes = config.noise.compute_times(rng, nthreads,
                                              config.compute_seconds)
        # ---- partitioned phase -------------------------------------
        yield from ps.start(main)

        def worker(tc):
            yield from tc.compute(computes[tc.thread_id])
            # Each thread owns a contiguous block of partitions (the
            # paper's 1:1 mapping when partitions_per_thread == 1).
            lo = tc.thread_id * ppt
            for p in range(lo, lo + ppt):
                yield from ps.pready(tc, p)

        # Anchor each phase at the opening of its parallel region so the
        # two phases (which run back to back in absolute simulated time)
        # can be compared on a common relative clock, as the paper's
        # side-by-side timelines in Fig. 3 do.
        ctx.obs.emit(BENCH_PART_BEGIN, ctx.sim.now, ctx.rank, it, m, n)
        team = yield from ctx.fork(nthreads, worker)
        yield from team.join()
        yield from ps.wait(main)
        # ---- single-send phase --------------------------------------
        yield from comm.barrier(main)

        def worker_single(tc):
            yield from tc.compute(computes[tc.thread_id])

        ctx.obs.emit(BENCH_SINGLE_BEGIN, ctx.sim.now, ctx.rank, it)
        team2 = yield from ctx.fork(nthreads, worker_single)
        yield from team2.join()
        ctx.obs.emit(BENCH_JOIN, ctx.sim.now, ctx.rank, it)
        ctx.obs.emit(BENCH_SEND_BEGIN, ctx.sim.now, ctx.rank, it)
        sreq = yield from comm.isend(main, 1, _SINGLE_TAG, m)
        yield sreq.wait()
        yield from comm.barrier(main)


def _receiver_program(ctx, config: PtpBenchmarkConfig):
    comm, main = ctx.comm, ctx.main
    m, n = config.message_bytes, config.partitions
    pr = yield from comm.precv_init(main, 0, _PART_TAG, m, n,
                                    impl=config.impl)
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if config.cache == COLD:
            yield from ctx.invalidate_cache()
        # ---- partitioned phase -------------------------------------
        yield from pr.start(main)
        yield from pr.wait(main)
        # ---- single-send phase --------------------------------------
        # Pre-post the receive so t_pt2pt measures the transfer, not the
        # posting race.
        rreq = yield from comm.irecv(main, 0, _SINGLE_TAG, m)
        yield from comm.barrier(main)
        yield rreq.wait()
        ctx.obs.emit(BENCH_RECV_COMPLETE, ctx.sim.now, ctx.rank, it)
        yield from comm.barrier(main)


#: Extra sinks for :func:`run_ptp_trial`: bare sinks (attached with their
#: ``PATTERNS`` attribute, ``"*"`` when absent) or ``(sink, patterns)``.
SinkSpec = Union[Sink, Tuple[Sink, Tuple[str, ...]]]


def run_ptp_trial(config: PtpBenchmarkConfig,
                  sinks: Iterable[SinkSpec] = ()
                  ) -> Tuple[PtpResult, Cluster]:
    """Run one instrumented trial; returns ``(result, cluster)``.

    The two ranks live on distinct nodes (one switch apart), like the
    paper's single-wing point-to-point setup.  A
    :class:`~repro.obs.TimelineBuilder` and a ``"*"``-subscribed
    :class:`~repro.obs.DigestSink` are always attached; pass ``sinks``
    to subscribe additional observers (e.g. a
    :class:`~repro.obs.MemorySink` for ``repro trace export``) to the
    same stream.  The result keeps measured iterations only — warmup is
    discarded — and carries the digest of the *full* event stream.
    """
    EXECUTIONS.bump()
    faults = config.faults
    cluster = Cluster(
        nranks=2,
        spec=config.spec,
        inter_node=config.inter_node,
        intra_node=config.intra_node,
        costs=config.costs,
        mode=config.mode,
        bind_policy=config.bind_policy,
        seed=config.seed,
        faults=faults,
    )
    builder = TimelineBuilder(allow_partial=faults is not None)
    cluster.obs.attach(builder, TimelineBuilder.PATTERNS)
    digest = DigestSink()
    cluster.obs.attach(digest, ("*",))
    for spec in sinks:
        if isinstance(spec, tuple):
            sink, patterns = spec
            cluster.obs.attach(sink, patterns)
        else:
            cluster.obs.attach(spec, getattr(spec, "PATTERNS", ("*",)))

    def program(ctx):
        if ctx.rank == 0:
            yield from _sender_program(ctx, config)
        else:
            yield from _receiver_program(ctx, config)

    abandoned_reason = None
    if faults is None:
        cluster.run(program)
    else:
        try:
            cluster.run(program, until=faults.deadline)
        except DeadlockError:
            # Graceful degradation: the trial could not finish under the
            # fault plan.  Record a structured outcome instead of
            # crashing the sweep; completed iterations are kept.
            stats = cluster.fault_stats
            if stats.fail_stops:
                abandoned_reason = "rank fail-stop"
            elif faults.deadline is not None and \
                    cluster.now >= faults.deadline:
                abandoned_reason = (f"simulated deadline "
                                    f"{faults.deadline:g}s exceeded")
            elif stats.abandoned:
                abandoned_reason = "retry budget exhausted"
            else:
                abandoned_reason = "deadlocked under fault plan"
    cluster.obs.finalize()

    result = PtpResult(config=config, event_digest=digest.hexdigest())
    if faults is not None:
        result.fault_outcome = cluster.fault_stats.outcome(
            delivered=abandoned_reason is None,
            reason=abandoned_reason or "")
    for it, timeline in builder.timelines:
        if it < config.warmup:
            continue
        result.samples.append(PtpSample(
            iteration=it - config.warmup,
            timeline=timeline,
            metrics=PtpMetrics.from_timeline(timeline),
        ))
    return result, cluster


def run_ptp_benchmark(config: PtpBenchmarkConfig) -> PtpResult:
    """Run one configuration on a fresh two-rank cluster; returns the result.

    Convenience wrapper over :func:`run_ptp_trial` for callers that do
    not need the cluster or extra sinks.
    """
    result, _ = run_ptp_trial(config)
    return result
