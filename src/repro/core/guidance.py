"""Partition-count guidance — the paper's advice to application developers.

The paper's stated contribution: "We provide application developers
guidance on appropriate partition counts based on the message sizes,
computation amount, system noise, and communication pattern."  This module
operationalizes that guidance: given an application's message size, compute
amount and noise profile, it measures the candidate partition counts and
recommends one, explaining the trade-offs the paper calls out (latency-bound
small messages, socket spillover, oversubscription).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..machine import MachineSpec
from ..noise import NoiseModel
from .config import PtpBenchmarkConfig
from .report import format_bytes
from .runner import PtpResult, run_ptp_benchmark

__all__ = ["Recommendation", "recommend_partitions", "OBJECTIVES"]

#: Supported optimization objectives.
OBJECTIVES = ("availability", "overhead", "balanced")


@dataclass
class Recommendation:
    """The advisor's verdict for one application profile.

    Attributes
    ----------
    partitions:
        The recommended partition (= thread) count.
    objective:
        What was optimized.
    scores:
        Per-candidate objective score (higher is better).
    results:
        Per-candidate raw benchmark results for deeper inspection.
    rationale:
        Human-readable reasoning, including the paper's platform caveats.
    """

    partitions: int
    objective: str
    scores: Dict[int, float]
    results: Dict[int, PtpResult]
    rationale: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """The rationale as one printable block."""
        return "\n".join(self.rationale)


def _score(result: PtpResult, objective: str) -> float:
    if objective == "availability":
        return result.application_availability.mean
    if objective == "overhead":
        return -result.overhead.mean  # lower overhead = better
    # balanced: availability minus a regularized overhead penalty, so a
    # candidate that frees the CPU but floods the network still loses.
    return (result.application_availability.mean
            - 0.1 * max(0.0, result.overhead.mean - 1.0))


def recommend_partitions(
        message_bytes: int,
        compute_seconds: float,
        noise: NoiseModel,
        candidates: Optional[Sequence[int]] = None,
        objective: str = "balanced",
        base_config: Optional[PtpBenchmarkConfig] = None,
) -> Recommendation:
    """Measure the candidates and recommend a partition count.

    Parameters
    ----------
    message_bytes / compute_seconds / noise:
        The application's communication/computation profile.
    candidates:
        Partition counts to evaluate; defaults to powers of two up to the
        node's core count.
    objective:
        ``"availability"`` (maximize freed CPU time), ``"overhead"``
        (minimize network slowdown) or ``"balanced"``.
    base_config:
        Substrate overrides (machine, network, costs); the message size,
        partitions, compute and noise fields are replaced per candidate.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}")
    base = base_config or PtpBenchmarkConfig(message_bytes=message_bytes,
                                             partitions=1)
    spec: MachineSpec = base.spec
    if candidates is None:
        candidates = []
        n = 1
        while n <= spec.cores_per_node:
            candidates.append(n)
            n *= 2
    candidates = [n for n in candidates if n <= message_bytes]
    if not candidates:
        raise ConfigurationError(
            f"no feasible candidate for a {message_bytes}-byte message")

    results: Dict[int, PtpResult] = {}
    scores: Dict[int, float] = {}
    for n in candidates:
        cfg = base.with_overrides(
            message_bytes=message_bytes, partitions=n,
            compute_seconds=compute_seconds, noise=noise)
        res = run_ptp_benchmark(cfg)
        results[n] = res
        scores[n] = _score(res, objective)

    best = max(scores, key=lambda n: (scores[n], -n))
    rationale = [
        f"profile: {format_bytes(message_bytes)} message, "
        f"{compute_seconds * 1e3:g} ms compute, noise={noise.describe()}",
        f"objective: {objective}",
        f"recommended partitions: {best} "
        f"(score {scores[best]:.3f})",
    ]
    per_socket = spec.cores_per_socket
    if best > per_socket:
        rationale.append(
            f"warning: {best} partitions exceed one socket "
            f"({per_socket} cores); threads spill to the second socket and "
            f"pay inter-socket injection penalties (paper §4.2) — pin "
            f"carefully or stay at <= {per_socket}.")
    on_socket = [c for c in candidates if c <= per_socket]
    best_on_socket = (scores[max(on_socket)] if on_socket
                      else float("-inf"))
    spilled = [n for n in candidates
               if n > per_socket and scores[n] < best_on_socket]
    if spilled:
        rationale.append(
            f"candidates {spilled} scored below the best single-socket "
            f"option, consistent with the paper's 32-partition spillover "
            f"spike.")
    ovh = results[best].overhead.mean
    if ovh > 2.0:
        rationale.append(
            f"note: the recommended count still costs {ovh:.1f}x network "
            f"overhead vs a single send — this message size is "
            f"latency-bound; partitioned pays off only through overlap "
            f"(availability {results[best].application_availability.mean:.2f}).")
    return Recommendation(partitions=best, objective=objective,
                          scores=scores, results=results,
                          rationale=rationale)
