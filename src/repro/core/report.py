"""Plain-text reporting: the tables the benchmark harness prints.

Each figure-reproduction bench prints one table per paper figure: rows are
partition counts (the figure's series), columns are message sizes (the
figure's x-axis), cells are the pruned-mean metric value.  The formatting
helpers here are shared by the benches, the examples, and the docs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .sweep import METRIC_NAMES, SweepResult

__all__ = ["format_bytes", "format_seconds", "ascii_table",
           "metric_table", "series_table", "fault_table",
           "provenance_line", "METRIC_FORMATS"]


def format_bytes(n: int) -> str:
    """Human-readable byte count: ``64B``, ``4KiB``, ``16MiB``."""
    if n < 0:
        raise ConfigurationError(f"negative byte count: {n}")
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_seconds(s: float) -> str:
    """Human-readable duration: ``1.2us``, ``3.4ms``, ``5.6s``."""
    if s < 0:
        raise ConfigurationError(f"negative duration: {s}")
    if s < 1e-3:
        return f"{s * 1e6:.2f}us"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


#: Per-metric cell formatting: (header suffix, scale, format string).
METRIC_FORMATS: Dict[str, Tuple[str, float, str]] = {
    "overhead": ("x", 1.0, "{:.2f}"),
    "perceived_bandwidth": ("GB/s", 1e-9, "{:.2f}"),
    "application_availability": ("", 1.0, "{:.3f}"),
    "early_bird_fraction": ("%", 100.0, "{:.1f}"),
}


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                title: Optional[str] = None) -> str:
    """Render a fixed-width text table with a separator under the header."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for r in rows:
        if len(r) != len(headers):
            raise ConfigurationError(
                f"row width {len(r)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def metric_table(sweep: SweepResult, metric: str,
                 title: Optional[str] = None) -> str:
    """One paper-figure-shaped table from a sweep.

    Rows = partition counts, columns = message sizes, cells = pruned mean
    of ``metric`` (scaled per :data:`METRIC_FORMATS`).  Unreachable cells
    (message smaller than partition count) print ``-``.
    """
    if metric not in METRIC_NAMES:
        raise ConfigurationError(
            f"unknown metric {metric!r}; choose from {METRIC_NAMES}")
    suffix, scale, fmt = METRIC_FORMATS[metric]
    sizes = sweep.message_sizes
    headers = [f"parts\\msg"] + [format_bytes(m) for m in sizes]
    rows: List[List[str]] = []
    series = sweep.series(metric)
    for n in sweep.partition_counts:
        cells = {m: v for m, v in series.get(n, [])}
        row = [str(n)]
        for m in sizes:
            if m in cells:
                row.append(fmt.format(cells[m] * scale))
            else:
                row.append("-")
        rows.append(row)
    default = f"{metric} ({suffix})" if suffix else metric
    return ascii_table(headers, rows, title=title or default)


def provenance_line(sweep: SweepResult) -> Optional[str]:
    """How the sweep's numbers were produced, when it is worth saying.

    Mixed-provenance sweeps (some cells closed-form, some simulated —
    the ``--analytic auto`` steady state) get one line of source counts
    so a reader of the tables knows which engine stands behind them.
    Returns ``None`` for all-DES single-trial sweeps, the historical
    default, so existing reports stay byte-identical.
    """
    analytic = sum(1 for p in sweep.points if p.result.source == "analytic")
    des = len(sweep.points) - analytic
    trials = sum(p.result.trials for p in sweep.points)
    if analytic == 0 and trials == des:
        return None
    parts = []
    if analytic:
        parts.append(f"{analytic} cell(s) closed-form")
    if des:
        parts.append(f"{des} cell(s) simulated ({trials} trials)")
    return "sources: " + ", ".join(parts)


def fault_table(sweep: SweepResult,
                title: Optional[str] = None) -> Optional[str]:
    """Fault-outcome summary for sweeps run under a fault plan.

    One row per cell that carries a :class:`~repro.faults.FaultOutcome`:
    what the fault machinery counted (drops, retransmits, duplicates,
    abandoned sends, stalls, fail-stops) and whether the trial delivered
    its samples or was abandoned (with the reason).  Returns ``None``
    for fault-free sweeps so callers can print it unconditionally.
    """
    points = sweep.fault_points()
    if not points:
        return None
    headers = ["parts", "msg", "status", "drops", "rtx", "dup",
               "abandoned", "stalls", "reason"]
    rows: List[List[str]] = []
    for p in points:
        o = p.result.fault_outcome
        rows.append([
            str(p.config.partitions),
            format_bytes(p.config.message_bytes),
            "ok" if o.delivered else "ABANDONED",
            str(o.drops), str(o.retransmits), str(o.duplicates),
            str(o.abandoned), str(o.stalls),
            o.reason or "-",
        ])
    return ascii_table(headers, rows, title=title or "fault outcomes")


def series_table(series: Dict[str, List[Tuple[int, float]]],
                 value_label: str,
                 fmt: str = "{:.2f}",
                 scale: float = 1.0,
                 title: Optional[str] = None) -> str:
    """Generic named-series table (used by the pattern benches).

    ``series`` maps a series name (e.g. ``"partitioned"``) to
    ``[(message_bytes, value), ...]``.
    """
    if not series:
        raise ConfigurationError("no series to print")
    sizes = sorted({m for pts in series.values() for m, _ in pts})
    headers = [f"series\\msg ({value_label})"] + [
        format_bytes(m) for m in sizes]
    rows: List[List[str]] = []
    for name, pts in series.items():
        cells = {m: v for m, v in pts}
        row = [name]
        for m in sizes:
            row.append(fmt.format(cells[m] * scale) if m in cells else "-")
        rows.append(row)
    return ascii_table(headers, rows, title=title)
