"""Terminal line plots for figure series.

The benches print tables; this module renders the same series as compact
ASCII charts (log-x for the message-size axis, optional log-y), so a user
can eyeball the rise-peak-decline of Figure 5 or the divergence of
Figure 9 straight from a terminal — no plotting stack required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .report import format_bytes

__all__ = ["ascii_plot"]

#: Glyphs assigned to series in insertion order.
_GLYPHS = "*o+x#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ConfigurationError(
                f"log scale requires positive values, got {value}")
        return math.log10(value)
    return value


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 64, height: int = 16,
               logx: bool = True, logy: bool = False,
               ylabel: str = "", title: Optional[str] = None) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Points are plotted into a ``width`` x ``height`` character grid; each
    series gets a glyph (see the legend line).  ``logx`` suits message-size
    axes; ``logy`` suits throughput spans.
    """
    if width < 8 or height < 4:
        raise ConfigurationError("plot needs width >= 8 and height >= 4")
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ConfigurationError("nothing to plot")
    xs = [_transform(x, logx) for pts in series.values() for x, _ in pts]
    ys = [_transform(y, logy) for pts in series.values() for _, y in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in pts:
            col = int(round((_transform(x, logx) - xmin) / xspan
                            * (width - 1)))
            row = int(round((_transform(y, logy) - ymin) / yspan
                            * (height - 1)))
            grid[height - 1 - row][col] = glyph

    raw_ymax = max(y for pts in series.values() for _, y in pts)
    raw_ymin = min(y for pts in series.values() for _, y in pts)
    raw_xmax = max(x for pts in series.values() for x, _ in pts)
    raw_xmin = min(x for pts in series.values() for x, _ in pts)

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{raw_ymax:.3g}"
    bottom_label = f"{raw_ymin:.3g}"
    pad = max(len(top_label), len(bottom_label), len(ylabel))
    for i, row_chars in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row_chars))
    lines.append(" " * pad + " +" + "-" * width)
    if raw_xmin == int(raw_xmin) and raw_xmax == int(raw_xmax) and logx:
        left, right = format_bytes(int(raw_xmin)), format_bytes(int(raw_xmax))
    else:
        left, right = f"{raw_xmin:.3g}", f"{raw_xmax:.3g}"
    axis = f"{left}{' ' * max(1, width - len(left) - len(right))}{right}"
    lines.append(" " * pad + "  " + axis)
    lines.append(" " * pad + "  legend: " + "  ".join(legend))
    return "\n".join(lines)
