"""Result persistence: save and reload sweep results as JSON.

Benchmark campaigns want to archive measurements, diff them across code
revisions, and feed external plotting — the role ``asv``-style result
files play for performance suites.  Timelines are stored losslessly, so a
reloaded result reproduces every derived metric exactly.

The config snapshot stores the *descriptive* fields (sizes, counts, noise,
cache, impl, seed); substrate objects (machine/network/cost presets) are
recorded by repr only — a reloaded result is for analysis, not for
re-running.

This JSON layer is the *archival* format.  Results crossing a process or
cache boundary travel as packed binary frames instead
(:mod:`repro.core.wire`); the dict shapes here remain the codec's
fallback, and :func:`result_from_dict` is what
:meth:`~repro.core.parallel.ResultCache.migrate` uses to read legacy v4
JSON cache records when upgrading them in place.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

from ..errors import ConfigurationError
from ..faults import FaultOutcome
from ..metrics import PartitionTimeline, PtpMetrics
from .runner import PtpResult, PtpSample
from .sweep import SweepResult

__all__ = ["sample_to_dict", "sample_from_dict",
           "result_to_dict", "result_from_dict", "sweep_to_dict",
           "sweep_from_dict", "save_sweep", "load_sweep",
           "FORMAT_VERSION"]

#: Bumped on any incompatible change to the JSON layout.
FORMAT_VERSION = 1


def _config_snapshot(config) -> Dict:
    snap = {
        "message_bytes": config.message_bytes,
        "partitions": config.partitions,
        "partitions_per_thread": config.partitions_per_thread,
        "compute_seconds": config.compute_seconds,
        "noise": config.noise.describe(),
        "cache": config.cache,
        "impl": config.impl,
        "iterations": config.iterations,
        "warmup": config.warmup,
        "seed": config.seed,
        "label": config.label(),
    }
    if config.faults is not None:
        snap["faults"] = config.faults.describe()
    return snap


def sample_to_dict(sample: PtpSample) -> Dict:
    """Serialize one measured iteration (the timeline is lossless).

    Only the raw timeline is stored; the four derived metrics are
    recomputed on load, so a round trip reproduces them bit-exactly.
    """
    return {
        "iteration": sample.iteration,
        "message_bytes": sample.timeline.message_bytes,
        "pready_times": list(sample.timeline.pready_times),
        "arrival_times": list(sample.timeline.arrival_times),
        "join_time": sample.timeline.join_time,
        "pt2pt_time": sample.timeline.pt2pt_time,
    }


def sample_from_dict(data: Dict) -> PtpSample:
    """Rebuild one iteration, recomputing its metrics from the timeline."""
    timeline = PartitionTimeline(
        message_bytes=data["message_bytes"],
        pready_times=data["pready_times"],
        arrival_times=data["arrival_times"],
        join_time=data["join_time"],
        pt2pt_time=data["pt2pt_time"],
    )
    return PtpSample(
        iteration=data["iteration"],
        timeline=timeline,
        metrics=PtpMetrics.from_timeline(timeline),
    )


def result_to_dict(result: PtpResult) -> Dict:
    """Serialize one configuration's result (timelines are lossless).

    The event-stream digest, the fault outcome, and non-default
    provenance (``source``/``trials``) ride along when present (additive
    fields — the format version is unchanged, and old records simply
    load with the defaults: ``event_digest=None``, ``fault_outcome=None``,
    one simulated trial).
    """
    out = {
        "config": _config_snapshot(result.config),
        "samples": [sample_to_dict(s) for s in result.samples],
    }
    if result.event_digest is not None:
        out["event_digest"] = result.event_digest
    if result.fault_outcome is not None:
        out["fault_outcome"] = result.fault_outcome.to_dict()
    if result.source != "des":
        out["source"] = result.source
    if result.trials != 1:
        out["trials"] = result.trials
    return out


def result_from_dict(data: Dict) -> PtpResult:
    """Rebuild a result; metrics are recomputed from the stored timelines.

    The returned result's ``config`` is the stored *snapshot dict* (the
    live substrate objects are not round-tripped).
    """
    try:
        samples_data = data["samples"]
        config = data["config"]
    except KeyError as exc:
        raise ConfigurationError(f"malformed result record: missing {exc}")
    result = PtpResult(config=config,
                       event_digest=data.get("event_digest"),
                       source=data.get("source", "des"),
                       trials=data.get("trials", 1))
    outcome = data.get("fault_outcome")
    if outcome is not None:
        result.fault_outcome = FaultOutcome.from_dict(outcome)
    for s in samples_data:
        result.samples.append(sample_from_dict(s))
    return result


def sweep_to_dict(sweep: SweepResult) -> Dict:
    """Serialize a whole sweep."""
    return {
        "format_version": FORMAT_VERSION,
        "points": [
            {
                "message_bytes": p.config.message_bytes,
                "partitions": p.config.partitions,
                "result": result_to_dict(p.result),
            }
            for p in sweep.points
        ],
    }


def sweep_from_dict(data: Dict) -> "LoadedSweep":
    """Rebuild a sweep into a :class:`LoadedSweep` (metrics recomputed)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format {version!r} "
            f"(this build reads {FORMAT_VERSION})")
    loaded = LoadedSweep()
    for p in data["points"]:
        loaded.points.append(LoadedPoint(
            message_bytes=p["message_bytes"],
            partitions=p["partitions"],
            result=result_from_dict(p["result"]),
        ))
    return loaded


class LoadedPoint:
    """One reloaded sweep cell (config is a snapshot, not live objects)."""

    def __init__(self, message_bytes: int, partitions: int,
                 result: PtpResult):
        self.message_bytes = message_bytes
        self.partitions = partitions
        self.result = result


class LoadedSweep:
    """A reloaded sweep: enough structure for tables and comparisons."""

    def __init__(self) -> None:
        self.points: List[LoadedPoint] = []

    def value(self, metric: str, message_bytes: int,
              partitions: int) -> float:
        """Pruned-mean metric value of one cell (as SweepResult.value)."""
        for p in self.points:
            if (p.message_bytes == message_bytes
                    and p.partitions == partitions):
                return getattr(p.result, metric).mean
        raise ConfigurationError(
            f"no stored point for m={message_bytes}, n={partitions}")


def save_sweep(sweep: SweepResult,
               path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a sweep to ``path`` as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(sweep_to_dict(sweep), indent=1))
    return path


def load_sweep(path: Union[str, pathlib.Path]) -> LoadedSweep:
    """Read a sweep previously written by :func:`save_sweep`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no result file at {path}")
    return sweep_from_dict(json.loads(path.read_text()))
