"""The paper's three injected-noise models (§3.3).

Each model maps a nominal per-thread compute amount to the per-thread
amounts actually simulated:

* :class:`SingleThreadNoise` — one thread is delayed by ``noise_percent`` of
  the compute amount; all others are unaffected (mimics a context switch on
  one core; the model used to evaluate Finepoints).
* :class:`UniformNoise` — every thread samples from
  ``U[comp, comp * (1 + noise_percent/100)]``.
* :class:`GaussianNoise` — every thread samples from
  ``N(comp, comp * noise_percent/100)``; tail samples are clipped at zero
  (the paper ignores tail cases as "sufficiently infrequent").

Models are stateless — randomness comes from the generator handed to
:meth:`NoiseModel.compute_times`, so trials can replay identical draws for
the partitioned and single-send phases (common random numbers).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["NoiseModel", "NoNoise", "SingleThreadNoise", "UniformNoise",
           "GaussianNoise", "ExponentialNoise", "noise_model_from_name"]


class NoiseModel(abc.ABC):
    """Base class: maps nominal compute to per-thread compute amounts."""

    #: Short name used in reports and benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Per-thread compute seconds for one trial.

        Parameters
        ----------
        rng:
            The trial's random stream (deterministic under the master seed).
        nthreads:
            Number of threads in the parallel region.
        compute_seconds:
            The nominal compute amount ``comp``.
        """

    def _check(self, nthreads: int, compute_seconds: float) -> None:
        if nthreads < 1:
            raise ConfigurationError(f"nthreads must be >= 1: {nthreads}")
        if compute_seconds < 0:
            raise ConfigurationError(
                f"negative compute amount: {compute_seconds}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return self.name


class NoNoise(NoiseModel):
    """Every thread computes exactly the nominal amount (0% noise)."""

    name = "none"

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Every thread gets exactly ``compute_seconds``."""
        self._check(nthreads, compute_seconds)
        return np.full(nthreads, compute_seconds, dtype=float)


class _PercentNoise(NoiseModel):
    """Base for models parameterized by a noise percentage."""

    def __init__(self, noise_percent: float):
        if noise_percent < 0:
            raise ConfigurationError(
                f"noise_percent must be >= 0: {noise_percent}")
        self.noise_percent = float(noise_percent)

    @property
    def fraction(self) -> float:
        """The noise amount as a fraction of the compute amount."""
        return self.noise_percent / 100.0

    def describe(self) -> str:
        """Name plus the configured noise percentage."""
        return f"{self.name}({self.noise_percent:g}%)"


class SingleThreadNoise(_PercentNoise):
    """Delay one randomly chosen thread by ``noise_percent`` of ``comp``.

    The paper's single-thread delay model: mimics one core taking a context
    switch while the rest of the team runs clean.
    """

    name = "single"

    def __init__(self, noise_percent: float, victim: Optional[int] = None):
        super().__init__(noise_percent)
        if victim is not None:
            # Catch a bad fixed victim at construction, not on the first
            # trial that happens to call compute_times.
            if not isinstance(victim, int) or isinstance(victim, bool):
                raise ConfigurationError(
                    f"victim thread index must be an int: {victim!r}")
            if victim < 0:
                raise ConfigurationError(
                    f"victim thread index must be >= 0: {victim}")
        #: Fix the delayed thread (None = choose uniformly per trial).
        self.victim = victim

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Delay one victim thread; everyone else runs clean."""
        self._check(nthreads, compute_seconds)
        times = np.full(nthreads, compute_seconds, dtype=float)
        victim = (self.victim if self.victim is not None
                  else int(rng.integers(nthreads)))
        if victim >= nthreads:
            # Team size is only known here, so the upper bound stays a
            # compute-time check even though sign/type are construction-time.
            raise ConfigurationError(
                f"victim thread {victim} outside team of {nthreads}")
        times[victim] += compute_seconds * self.fraction
        return times


class UniformNoise(_PercentNoise):
    """Every thread draws from ``U[comp, comp + comp * noise%]`` (§3.3)."""

    name = "uniform"

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Per-thread draws from ``U[comp, comp * (1 + noise%)]``."""
        self._check(nthreads, compute_seconds)
        hi = compute_seconds * (1.0 + self.fraction)
        return rng.uniform(compute_seconds, hi, size=nthreads)


class GaussianNoise(_PercentNoise):
    """Every thread draws from ``N(comp, comp * noise%)``, clipped at 0.

    Matches the Gaussian system-noise characterization of Mondragon et al.
    that the paper cites; the clip replaces the paper's "ignore the tails"
    assumption with a safe equivalent.
    """

    name = "gaussian"

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Per-thread draws from ``N(comp, comp * noise%)``, clipped."""
        self._check(nthreads, compute_seconds)
        sigma = compute_seconds * self.fraction
        draws = rng.normal(compute_seconds, sigma, size=nthreads)
        return np.clip(draws, 0.0, None)


class ExponentialNoise(_PercentNoise):
    """Every thread adds an exponential delay with mean ``comp * noise%``.

    An extension beyond the paper's three models: OS interference events
    (daemon wakeups, page-cache flushes) are classically heavy-tailed, and
    an exponential additive term is the standard first approximation
    (Ferreira et al.'s kernel-injection study the paper cites uses similar
    shapes).  Lets the suite probe tail-dominated regimes the bounded
    uniform model cannot express.
    """

    name = "exponential"

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Additive exponential delays with mean ``comp * noise%``."""
        self._check(nthreads, compute_seconds)
        scale = compute_seconds * self.fraction
        if scale == 0.0:
            return np.full(nthreads, compute_seconds, dtype=float)
        return compute_seconds + rng.exponential(scale, size=nthreads)


def noise_model_from_name(name: str, noise_percent: float = 0.0) -> NoiseModel:
    """Factory used by the CLI-style sweep configs.

    ``name`` is one of ``none``, ``single``, ``uniform``, ``gaussian``,
    ``exponential``.  Passing a nonzero ``noise_percent`` together with
    ``"none"`` is a contradiction — the percent would be silently
    discarded and the sweep would report clean numbers for a config that
    asked for noise — so it raises instead.
    """
    if name == "none" and noise_percent != 0:
        raise ConfigurationError(
            f"noise model 'none' cannot carry noise_percent="
            f"{noise_percent:g}; drop the percent or pick a noisy model")
    table = {
        "none": lambda: NoNoise(),
        "single": lambda: SingleThreadNoise(noise_percent),
        "uniform": lambda: UniformNoise(noise_percent),
        "gaussian": lambda: GaussianNoise(noise_percent),
        "exponential": lambda: ExponentialNoise(noise_percent),
    }
    try:
        return table[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown noise model {name!r}; choose from {sorted(table)}")
