"""Trace-driven noise (extension beyond the paper's three models).

Replays a recorded sequence of per-thread delays — e.g. from a production
system's interference log — instead of sampling a distribution.  The paper
lists evaluating ambient noise as future work; this model lets the suite do
it as soon as a trace exists, and gives tests a fully deterministic noise
source.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .models import NoiseModel

__all__ = ["TraceNoise"]


class TraceNoise(NoiseModel):
    """Replay recorded *additive* delays, cycling through the trace.

    Parameters
    ----------
    delays:
        A flat sequence of delay seconds.  Draw ``k`` consumes the next
        ``nthreads`` entries (wrapping around), so consecutive trials walk
        the trace.
    """

    name = "trace"

    def __init__(self, delays: Sequence[float]):
        arr = np.asarray(list(delays), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("trace noise needs at least one delay")
        if (arr < 0).any():
            raise ConfigurationError("trace delays must be non-negative")
        self.delays = arr
        self._cursor = 0

    def compute_times(self, rng: np.random.Generator, nthreads: int,
                      compute_seconds: float) -> np.ndarray:
        """Add the next ``nthreads`` recorded delays (cycling)."""
        self._check(nthreads, compute_seconds)
        idx = (self._cursor + np.arange(nthreads)) % self.delays.size
        self._cursor = int((self._cursor + nthreads) % self.delays.size)
        return compute_seconds + self.delays[idx]

    def reset(self) -> None:
        """Rewind the trace to its beginning."""
        self._cursor = 0

    def describe(self) -> str:
        """Name plus the trace length."""
        return f"trace({self.delays.size} samples)"
