"""Injected system-noise models (§3.3 of the paper, plus a trace extension)."""

from .models import (
    ExponentialNoise,
    GaussianNoise,
    NoNoise,
    NoiseModel,
    SingleThreadNoise,
    UniformNoise,
    noise_model_from_name,
)
from .trace_noise import TraceNoise

__all__ = [
    "ExponentialNoise",
    "GaussianNoise",
    "NoNoise",
    "NoiseModel",
    "SingleThreadNoise",
    "UniformNoise",
    "noise_model_from_name",
    "TraceNoise",
]
