"""Command-line interface: regenerate figures and query the advisor.

Usage::

    python -m repro list
    python -m repro fig4 [--full] [--jobs 4] [--cache-dir .repro-cache]
    python -m repro sweep --sizes 65536,1048576 --counts 1,8 --jobs 4 \\
        --cache-dir .repro-cache --metric overhead
    python -m repro cache info --cache-dir .repro-cache
    python -m repro metrics --message-bytes 1048576 --partitions 8 \\
        --compute-ms 10 --noise uniform --noise-percent 4
    python -m repro advisor --message-bytes 1048576 --compute-ms 10 \\
        --noise single --noise-percent 4
    python -m repro lint src/repro benchmarks examples
    python -m repro check path/to/program.py
    python -m repro faults --spec 'drop=0.05,deadline=30'
    python -m repro metrics --message-bytes 65536 --partitions 8 \\
        --faults 'drop=0.02,stall=0.5/0.05'
    python -m repro trace export --message-bytes 1048576 --partitions 8 \\
        --format chrome --kinds 'part.*,bench.*' -o trace.json
    python -m repro report --message-bytes 1048576 --partitions 8

Tables match the ``benchmarks/`` harness output; the CLI exists so the
suite is usable without pytest, the way the paper's artifact is driven
from a shell.  ``lint`` and ``check`` expose the
:mod:`repro.analysis` correctness analyzer (exit code 1 on findings).
``trace export`` and ``report`` observe one instrumented trial through
:mod:`repro.obs` sinks (exit code 2 on unknown ``--kinds`` patterns).
The point-to-point figures and ``sweep`` run on the parallel engine
(:mod:`repro.core.parallel`): ``--jobs`` fans grid cells out over worker
processes — by default one *kept* warm pool (:mod:`repro.core.pool`)
reused across every sweep the process runs (``--pool per-sweep`` opts
out) — and ``--cache-dir`` reuses every already-computed cell, with
results bit-identical to a serial, uncached run (see
``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from .core import (ANALYTIC_MODES, CACHE_SCHEMA_VERSION, METRIC_NAMES,
                   PtpBenchmarkConfig,
                   ResultCache, fault_table, fig4_overhead,
                   fig5_perceived_bandwidth, fig6_availability,
                   fig7_noise_models, fig8_early_bird, metric_table,
                   provenance_line, recommend_partitions, run_ptp_benchmark,
                   save_sweep, series_table, shared_pool, sweep_ptp)
from .core.report import ascii_table, format_bytes
from .faults import parse_fault_spec
from .metrics import AdaptiveTrialPlanner
from .noise import noise_model_from_name
from .patterns import (CommMode, Halo3DGrid, PatternConfig, Sweep3DGrid,
                       throughput_series)
from .proxy import SnapConfig, snap_projection

__all__ = ["main", "build_parser"]


def _engine_options(args) -> Dict:
    """The engine kwargs a ptp figure driver understands.

    ``jobs``/``cache`` as before, plus ``analytic`` dispatch, — when
    ``--ci-target`` is given — an :class:`AdaptiveTrialPlanner` for the
    nondeterministic cells, and the worker pool: ``--pool keep`` (the
    default) executes on the process-wide :func:`shared_pool`, whose
    warm workers survive from sweep to sweep; ``--pool per-sweep``
    restores the old spawn-per-sweep behaviour.  An invalid ``--jobs``
    (anything below 1) raises :class:`~repro.errors.ConfigurationError`
    instead of silently falling back to one worker.
    """
    cache_dir = getattr(args, "cache_dir", None)
    ci_target = getattr(args, "ci_target", None)
    planner = None
    if ci_target is not None:
        planner = AdaptiveTrialPlanner(
            ci_target=ci_target,
            min_trials=getattr(args, "ci_min_trials", 3),
            max_trials=getattr(args, "ci_max_trials", 20))
    jobs = getattr(args, "jobs", 1)
    if jobs is None:  # --jobs default when os.cpu_count() is unknown
        jobs = os.cpu_count() or 1
    pool = None
    if jobs > 1 and getattr(args, "pool", "keep") == "keep":
        pool = shared_pool(jobs)
    return {
        "jobs": jobs,
        "cache": ResultCache(cache_dir) if cache_dir else None,
        "analytic": getattr(args, "analytic", "off"),
        "planner": planner,
        "pool": pool,
    }


def _engine_footer(sweeps, cache: Optional[ResultCache]) -> str:
    """The sweep report's provenance line: cells, cache hits, jobs."""
    stats = [s.stats for s in sweeps if s.stats is not None]
    if not stats:
        return ""
    total = sum(s.total_cells for s in stats)
    executed = sum(s.executed for s in stats)
    trials = sum(s.trials for s in stats)
    analytic = sum(s.analytic for s in stats)
    hits = sum(s.cache_hits for s in stats)
    line = (f"sweep engine: {total} cells, {executed} executed "
            f"({trials} trials)")
    if analytic:
        line += f", {analytic} analytic"
    line += f", {hits} cache hits"
    if any(s.worker_cells for s in stats):
        warm = sum(s.warm_hits for s in stats)
        stolen = sum(s.stolen_cells for s in stats)
        line += f", {warm} warm, {stolen} stolen"
    line += f" (jobs={stats[0].jobs})"
    if cache is not None:
        line += f"; cache at {cache.root} now holds {len(cache)} entries"
    return "\n\n" + line


def _fig4(args) -> str:
    engine = _engine_options(args)
    panels = fig4_overhead(quick=not args.full, **engine)
    return "\n\n".join(
        metric_table(sweep, "overhead",
                     title=f"Fig 4 — Overhead (x), {cache} cache")
        for cache, sweep in panels.items()) + \
        _engine_footer(panels.values(), engine["cache"])


def _fig5(args) -> str:
    engine = _engine_options(args)
    panels = fig5_perceived_bandwidth(quick=not args.full, **engine)
    return "\n\n".join(
        metric_table(sweep, "perceived_bandwidth",
                     title=f"Fig 5 — Perceived bandwidth (GB/s), uniform "
                           f"{pct:g}% noise, {comp * 1e3:g}ms")
        for (pct, comp), sweep in panels.items()) + \
        _engine_footer(panels.values(), engine["cache"])


def _fig6(args) -> str:
    engine = _engine_options(args)
    panels = fig6_availability(quick=not args.full, **engine)
    return "\n\n".join(
        metric_table(sweep, "application_availability",
                     title=f"Fig 6 — Availability, single delay 4%, "
                           f"{comp * 1e3:g}ms")
        for comp, sweep in panels.items()) + \
        _engine_footer(panels.values(), engine["cache"])


def _fig7(args) -> str:
    engine = _engine_options(args)
    panels = fig7_noise_models(quick=not args.full, **engine)
    parts: List[str] = []
    sweeps: List = []
    for comp, by_model in panels.items():
        sizes = next(iter(by_model.values())).message_sizes
        rows = []
        for model, sweep in by_model.items():
            sweeps.append(sweep)
            series = dict(sweep.series("application_availability")[16])
            rows.append([model] + [f"{series[m]:.3f}" for m in sizes])
        parts.append(ascii_table(
            ["model"] + [format_bytes(m) for m in sizes], rows,
            title=f"Fig 7 — Availability by noise model, "
                  f"{comp * 1e3:g}ms"))
    return "\n\n".join(parts) + _engine_footer(sweeps, engine["cache"])


def _fig8(args) -> str:
    engine = _engine_options(args)
    panels = fig8_early_bird(quick=not args.full, **engine)
    return "\n\n".join(
        metric_table(sweep, "early_bird_fraction",
                     title=f"Fig 8 — Early-bird (%), uniform 4% noise, "
                           f"{comp * 1e3:g}ms")
        for comp, sweep in panels.items()) + \
        _engine_footer(panels.values(), engine["cache"])


def _sweep_fig(compute_seconds: float, full: bool, title: str) -> str:
    sizes = ((65536, 1 << 20, 4 << 20, 16 << 20) if not full
             else tuple(64 * 4 ** k for k in range(5, 10)))
    base = PatternConfig(mode=CommMode.SINGLE, threads=16,
                         message_bytes=sizes[0],
                         compute_seconds=compute_seconds,
                         steps=8 if full else 4,
                         iterations=5 if full else 2, warmup=1)
    series = throughput_series("sweep3d", base, sizes,
                               grid=Sweep3DGrid(3, 3))
    return series_table(series, value_label="GB/s", scale=1e-9,
                        title=title)


def _fig9(args) -> str:
    return _sweep_fig(0.010, args.full,
                      "Fig 9 — Sweep3D comm throughput, 10ms")


def _fig10(args) -> str:
    return _sweep_fig(0.100, args.full,
                      "Fig 10 — Sweep3D comm throughput, 100ms")


def _halo_fig(compute_seconds: float, full: bool, label: str) -> str:
    sizes = ((65536, 1 << 20, 4 << 20, 16 << 20) if not full
             else tuple(64 * 4 ** k for k in range(5, 10)))
    parts: List[str] = []
    for threads, caption in ((8, "8 threads (4 partitions/face)"),
                             (64, "64 threads oversubscribed "
                                  "(16 partitions/face)")):
        base = PatternConfig(mode=CommMode.SINGLE, threads=threads,
                             message_bytes=sizes[0],
                             compute_seconds=compute_seconds,
                             steps=4 if full else 2,
                             iterations=5 if full else 2, warmup=1)
        series = throughput_series("halo3d", base, sizes,
                                   grid=Halo3DGrid(2, 2, 2))
        parts.append(series_table(
            series, value_label="GB/s", scale=1e-9,
            title=f"{label} — Halo3D comm throughput, {caption}"))
    return "\n\n".join(parts)


def _fig11(args) -> str:
    return _halo_fig(0.010, args.full, "Fig 11")


def _fig12(args) -> str:
    return _halo_fig(0.100, args.full, "Fig 12")


def _fig13(args) -> str:
    counts = ((2, 4, 8, 16, 32, 64, 128, 256) if args.full
              else (2, 8, 32, 128, 256))
    proj = snap_projection(node_counts=counts,
                           base_config=SnapConfig(nodes=counts[0]))
    return proj.format()


FIGURES: Dict[str, Callable] = {
    "fig4": _fig4, "fig5": _fig5, "fig6": _fig6, "fig7": _fig7,
    "fig8": _fig8, "fig9": _fig9, "fig10": _fig10, "fig11": _fig11,
    "fig12": _fig12, "fig13": _fig13,
}

_FIGURE_BLURBS = {
    "fig4": "overhead vs message size, hot & cold cache",
    "fig5": "perceived bandwidth under uniform noise",
    "fig6": "application availability, single-thread delay",
    "fig7": "availability per noise model",
    "fig8": "% early-bird communication",
    "fig9": "Sweep3D throughput, 10 ms compute",
    "fig10": "Sweep3D throughput, 100 ms compute",
    "fig11": "Halo3D throughput, 10 ms compute",
    "fig12": "Halo3D throughput, 100 ms compute",
    "fig13": "SNAP projected speedup",
}


def _cmd_list(args) -> str:
    rows = [[name, blurb] for name, blurb in _FIGURE_BLURBS.items()]
    return ascii_table(["experiment", "reproduces"], rows,
                       title="available figure reproductions")


def _resolve_noise(name: str, percent: Optional[float]):
    """Build the noise model, defaulting the percent per model.

    ``--noise-percent`` defaults to ``None`` so ``--noise none`` (the
    default) resolves to a percent of 0 while noisy models default to the
    paper's 4%.  An *explicit* nonzero percent combined with ``none`` is
    rejected by :func:`~repro.noise.noise_model_from_name`.
    """
    if percent is None:
        percent = 0.0 if name == "none" else 4.0
    return noise_model_from_name(name, percent)


def _benchmark_config(args) -> PtpBenchmarkConfig:
    """One-cell benchmark config from the shared measurement flags."""
    noise = _resolve_noise(args.noise, args.noise_percent)
    faults = None
    spec = getattr(args, "faults", None)
    if spec:
        faults = parse_fault_spec(spec)
    return PtpBenchmarkConfig(
        message_bytes=args.message_bytes,
        partitions=args.partitions,
        compute_seconds=args.compute_ms / 1e3,
        noise=noise,
        cache=args.cache,
        impl=args.impl,
        iterations=args.iterations,
        seed=args.seed,
        faults=faults,
    )


def _cmd_metrics(args) -> str:
    result = run_ptp_benchmark(_benchmark_config(args))
    if result.fault_outcome is not None and not result.samples:
        return (f"{result.config.label()}\n"
                f"no measured samples: {result.fault_outcome.describe()}")
    rows = [
        ["overhead (eq.1)", f"{result.overhead.mean:.2f}x"],
        ["perceived bandwidth (eq.2)",
         f"{result.perceived_bandwidth.mean / 1e9:.2f} GB/s"],
        ["application availability (eq.3)",
         f"{result.application_availability.mean:.3f}"],
        ["early-bird communication (eq.4)",
         f"{result.early_bird_fraction.mean * 100:.1f}%"],
    ]
    table = ascii_table(["metric", "pruned mean"], rows,
                        title=result.config.label())
    if result.fault_outcome is not None:
        table += f"\n\nfault outcome: {result.fault_outcome.describe()}"
    return table


def _cmd_advisor(args) -> str:
    noise = _resolve_noise(args.noise, args.noise_percent)
    rec = recommend_partitions(
        message_bytes=args.message_bytes,
        compute_seconds=args.compute_ms / 1e3,
        noise=noise,
        objective=args.objective,
        base_config=PtpBenchmarkConfig(
            message_bytes=64, partitions=1,
            iterations=args.iterations, seed=args.seed),
    )
    lines = [rec.explain(), "", "candidate scores:"]
    for n, score in sorted(rec.scores.items()):
        marker = " <-- recommended" if n == rec.partitions else ""
        lines.append(f"  n={n:3d}: {score:8.3f}{marker}")
    return "\n".join(lines)


def _cmd_faults(args) -> str:
    """Show a parsed fault plan's contents, or the spec grammar."""
    if not args.spec:
        return parse_fault_spec.GRAMMAR.strip()
    plan = parse_fault_spec(args.spec)
    rows = [
        ["drop probability", f"{plan.drop_probability:g}"],
        ["degrade windows",
         "; ".join(f"[{w.start:g}s, {w.end:g}s) bw x{w.bandwidth_scale:g} "
                   f"lat x{w.latency_scale:g}"
                   for w in plan.degrade_windows) or "-"],
        ["NIC stall", (f"{plan.stall_duration:g}s every "
                       f"{plan.stall_period:g}s"
                       if plan.stall_period else "-")],
        ["rank slowdown",
         "; ".join(f"rank {r} x{f:g}" for r, f in plan.rank_slowdown)
         or "-"],
        ["fail-stop", (f"rank {plan.fail_stop.rank} at "
                       f"{plan.fail_stop.time:g}s"
                       if plan.fail_stop else "-")],
        ["deadline", f"{plan.deadline:g}s" if plan.deadline else "-"],
        ["retry: ack timeout", f"{plan.retry.ack_timeout:g}s"],
        ["retry: backoff factor", f"{plan.retry.backoff_factor:g}"],
        ["retry: max backoff", f"{plan.retry.max_backoff:g}s"],
        ["retry: max retries", str(plan.retry.max_retries)],
    ]
    return ascii_table(["knob", "value"], rows,
                       title=f"fault plan: {plan.describe()}")


def _parse_int_list(text: str, what: str) -> List[int]:
    from .errors import ConfigurationError
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ConfigurationError(f"{what} must be comma-separated ints, "
                                 f"got {text!r}")
    if not values:
        raise ConfigurationError(f"{what} must name at least one value")
    return values


def _cmd_sweep(args) -> str:
    """A figure-shaped grid sweep with full engine control."""
    noise = _resolve_noise(args.noise, args.noise_percent)
    sizes = _parse_int_list(args.sizes, "--sizes")
    counts = _parse_int_list(args.counts, "--counts")
    base = PtpBenchmarkConfig(
        message_bytes=max(sizes),
        partitions=1,
        compute_seconds=args.compute_ms / 1e3,
        noise=noise,
        cache=args.cache,
        impl=args.impl,
        iterations=args.iterations,
        seed=args.seed,
        faults=parse_fault_spec(args.faults) if args.faults else None,
    )
    engine = _engine_options(args)
    cache = engine["cache"]
    sweep = sweep_ptp(base, sizes, counts, jobs=engine["jobs"],
                      cache=cache, analytic=engine["analytic"],
                      planner=engine["planner"], pool=engine["pool"])
    metrics = METRIC_NAMES if args.metric == "all" else (args.metric,)
    parts = [metric_table(sweep, metric, title=f"sweep — {metric}")
             for metric in metrics]
    faults_summary = fault_table(sweep)
    if faults_summary is not None:
        parts.append(faults_summary)
    parts.append(f"sweep engine: {sweep.stats.describe()}")
    provenance = provenance_line(sweep)
    if provenance is not None:
        parts.append(provenance)
    if cache is not None:
        parts.append(cache.describe())
    if args.save:
        path = save_sweep(sweep, args.save)
        parts.append(f"saved to {path}")
    return "\n\n".join(parts)


def _cmd_cache(args) -> str:
    """Inspect, clear, or migrate a content-addressed cache directory."""
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        return f"cleared {removed} cached result(s) from {cache.root}"
    if args.action == "migrate":
        upgraded = cache.migrate()
        return (f"migrated {upgraded} legacy JSON entr(y/ies) to the "
                f"binary format; {len(cache)} entry(ies) now at "
                f"{cache.root}")
    stats = cache.stats()
    return (f"cache at {cache.root}: {stats['entries']} entry(ies) on "
            f"disk, schema v{CACHE_SCHEMA_VERSION}")


def _findings_json(findings) -> str:
    return json.dumps({
        "ok": not findings,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }, indent=2)


def _cmd_lint(args) -> int:
    from .analysis import format_findings, lint_paths
    from .analysis.findings import (load_baseline, new_findings, sarif_json,
                                    write_baseline)
    from .errors import ConfigurationError
    try:
        findings = lint_paths(args.paths, disabled=args.disable)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline)
        print(f"wrote baseline with {count} finding(s) to "
              f"{args.write_baseline}")
        return 0
    gating = findings
    if args.baseline:
        try:
            gating = new_findings(findings, load_baseline(args.baseline))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.format == "sarif":
        output = sarif_json(findings)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as stream:
                stream.write(output)
            print(f"wrote SARIF log with {len(findings)} result(s) to "
                  f"{args.output}")
        else:
            print(output, end="")
    elif args.format == "json":
        print(_findings_json(findings))
    elif findings:
        print(format_findings(findings))
        suffix = ""
        if args.baseline:
            suffix = f" ({len(gating)} new vs baseline)"
        print(f"{len(findings)} finding(s){suffix}")
    else:
        print("clean: no findings")
    return 1 if gating else 0


def _resolve_kinds(kinds_arg: str):
    """Parse a ``--kinds`` value into patterns; raises on unknown kinds."""
    from .obs import SCHEMA
    patterns = tuple(p.strip() for p in kinds_arg.split(",") if p.strip())
    if not patterns:
        patterns = ("*",)
    SCHEMA.resolve(patterns)
    return patterns


def _cmd_trace(args) -> int:
    from .core import run_ptp_trial
    from .errors import ConfigurationError
    from .obs import MemorySink, write_chrome_trace, write_jsonl
    try:
        patterns = _resolve_kinds(args.kinds)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mem = MemorySink()
    result, _ = run_ptp_trial(_benchmark_config(args),
                              sinks=[(mem, patterns)])
    writer = write_chrome_trace if args.format == "chrome" else write_jsonl
    if args.output:
        with open(args.output, "w") as stream:
            n = writer(mem, stream)
        print(f"wrote {n} {args.format} event(s) to {args.output} "
              f"(stream digest {result.event_digest[:12]}…)")
    else:
        writer(mem, sys.stdout)
    return 0


def _cmd_report(args) -> int:
    from .core import run_ptp_trial
    from .errors import ConfigurationError
    from .mpi.diagnostics import cluster_report, collect_diagnostics
    from .obs import CounterSink, MemorySink, write_chrome_trace
    try:
        patterns = _resolve_kinds(args.kinds)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counters = CounterSink()
    sinks = [(counters, patterns)]
    mem = None
    if args.format == "chrome":
        mem = MemorySink()
        sinks.append((mem, patterns))
    result, cluster = run_ptp_trial(_benchmark_config(args), sinks=sinks)
    if args.format == "chrome":
        write_chrome_trace(mem, sys.stdout)
        return 0
    if args.format == "json":
        diags = collect_diagnostics(cluster, counters=counters)
        print(json.dumps({
            "config": result.config.label(),
            "event_digest": result.event_digest,
            "fault_outcome": (result.fault_outcome.to_dict()
                              if result.fault_outcome is not None
                              else None),
            "event_counts": [
                {"kind": kind, "rank": rank, "count": n}
                for kind, rank, n in counters.rows()
            ],
            "ranks": [
                {"rank": d.rank,
                 "lock_acquisitions": d.lock_acquisitions,
                 "nic_messages": d.nic_messages,
                 "nic_bytes": d.nic_bytes,
                 "cache_hit_ratio": d.cache_hit_ratio,
                 "events_observed": d.events_observed}
                for d in diags
            ],
        }, indent=2))
        return 0
    print(cluster_report(cluster, counters=counters))
    if result.fault_outcome is not None:
        print(f"\nfault outcome: {result.fault_outcome.describe()}")
    print(f"\nevent stream digest: {result.event_digest}")
    return 0


def _cmd_check(args) -> int:
    from .analysis import run_checked
    from .analysis.checker import load_program
    from .errors import ConfigurationError
    try:
        loaded = load_program(args.program)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    nranks = args.nranks if args.nranks is not None else loaded["nranks"]
    report = run_checked(loaded["program"], nranks=nranks,
                         disabled=args.disable, **loaded["kwargs"])
    print(report.to_json() if args.format == "json" else report.format())
    return 0 if report.ok else 1


def _add_measurement_args(parser: argparse.ArgumentParser,
                          iterations: int) -> None:
    """Attach the one-cell measurement flags shared by single-run commands."""
    parser.add_argument("--message-bytes", type=int, required=True)
    parser.add_argument("--partitions", type=int, required=True)
    parser.add_argument("--compute-ms", type=float, default=10.0)
    parser.add_argument("--noise", default="none",
                        choices=["none", "single", "uniform", "gaussian",
                                 "exponential"])
    parser.add_argument("--noise-percent", type=float, default=None,
                        help="noise magnitude in percent (default: 0 for "
                             "'none', 4 for noisy models)")
    parser.add_argument("--cache", default="hot", choices=["hot", "cold"])
    parser.add_argument("--impl", default="mpipcl",
                        choices=["mpipcl", "native"])
    parser.add_argument("--iterations", type=int, default=iterations)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection plan, e.g. "
                             "'drop=0.05,deadline=30' "
                             "(see 'repro faults' for the grammar)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Attach the parallel-engine flags shared by sweep-backed commands."""
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count(), metavar="N",
        help="worker processes for grid cells (default: all cores); "
             "results are bit-identical to --jobs 1")
    parser.add_argument(
        "--pool", default="keep", choices=["keep", "per-sweep"],
        help="worker-pool lifetime: 'keep' (default) reuses one warm "
             "pool across every sweep this process runs; 'per-sweep' "
             "spawns and tears down workers for each sweep")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache: cells whose config is "
             "unchanged are reloaded instead of re-simulated")
    parser.add_argument(
        "--analytic", default="off", choices=list(ANALYTIC_MODES),
        help="closed-form fast path for deterministic cells: 'auto' "
             "answers eligible cells without simulating (within the "
             "documented tolerance), 'only' refuses ineligible cells")
    parser.add_argument(
        "--ci-target", type=float, default=None, metavar="REL",
        help="adaptive trials: stop each noisy/faulty cell once the "
             "pruned-mean CI half-width is within REL (e.g. 0.05) of "
             "the mean, instead of a fixed trial count")
    parser.add_argument(
        "--ci-min-trials", type=int, default=3, metavar="N",
        help="adaptive trials: lower bound per cell (default 3)")
    parser.add_argument(
        "--ci-max-trials", type=int, default=20, metavar="N",
        help="adaptive trials: upper bound per cell (default 20)")


def _cmd_serve(args) -> int:
    """Run the benchmark daemon in the foreground until interrupted.

    One process holds the warm pool and the shared cache; clients talk
    HTTP/JSON (see ``docs/service.md``).  The bound address is printed
    on stdout before serving — with ``--port 0`` that line is how a
    supervisor (or ``scripts/load_test.py --boot``) learns the port.
    """
    # Imported here: the service package is only needed by this command.
    from .service import SweepScheduler, SweepService

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    pool = shared_pool(jobs) if jobs > 1 else None
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    scheduler = SweepScheduler(
        pool=pool, cache=cache, jobs=jobs, analytic=args.analytic,
        quota=args.quota, batch_window=args.batch_window,
        max_batch=args.max_batch, dispatchers=args.dispatchers)
    service = SweepService(scheduler, host=args.host, port=args.port,
                           request_timeout=args.request_timeout,
                           verbose=args.verbose)
    host, port = service.address
    print(f"repro service: http://{host}:{port} "
          f"(jobs={jobs}, quota={args.quota}, "
          f"cache={'on' if cache is not None else 'off'})", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPI Partitioned micro-benchmark suite "
                    "(ICPP'22 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the figure reproductions")

    for name, blurb in _FIGURE_BLURBS.items():
        p = sub.add_parser(name, help=blurb)
        p.add_argument("--full", action="store_true",
                       help="run the paper's full grid (slow)")
        if name in ("fig4", "fig5", "fig6", "fig7", "fig8"):
            _add_engine_args(p)

    sw = sub.add_parser(
        "sweep", help="run a figure-shaped grid sweep (parallel engine)")
    sw.add_argument("--sizes", default="65536,1048576,4194304,16777216",
                    help="comma-separated message sizes in bytes")
    sw.add_argument("--counts", default="1,2,4,8,16,32",
                    help="comma-separated partition counts")
    sw.add_argument("--metric", default="all",
                    choices=["all"] + list(METRIC_NAMES))
    sw.add_argument("--compute-ms", type=float, default=10.0)
    sw.add_argument("--noise", default="none",
                    choices=["none", "single", "uniform", "gaussian",
                             "exponential"])
    sw.add_argument("--noise-percent", type=float, default=None,
                    help="noise magnitude in percent (default: 0 for "
                         "'none', 4 for noisy models)")
    sw.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault-injection plan applied to every cell "
                         "(see 'repro faults' for the grammar)")
    sw.add_argument("--cache", default="hot", choices=["hot", "cold"])
    sw.add_argument("--impl", default="mpipcl",
                    choices=["mpipcl", "native"])
    sw.add_argument("--iterations", type=int, default=3)
    sw.add_argument("--seed", type=int, default=0)
    sw.add_argument("--save", default=None, metavar="PATH",
                    help="also archive the sweep as JSON")
    _add_engine_args(sw)

    ca = sub.add_parser(
        "cache",
        help="inspect, clear, or migrate a result-cache directory")
    ca.add_argument("action", choices=["info", "clear", "migrate"])
    ca.add_argument("--cache-dir", required=True,
                    help="cache directory to act on")

    m = sub.add_parser("metrics",
                       help="measure one configuration's four metrics")
    _add_measurement_args(m, iterations=5)

    tr = sub.add_parser(
        "trace", help="capture an instrumented run's event stream")
    tr_sub = tr.add_subparsers(dest="action", required=True)
    te = tr_sub.add_parser(
        "export", help="run one configuration and export its events")
    _add_measurement_args(te, iterations=3)
    te.add_argument("--format", default="json",
                    choices=["json", "chrome"],
                    help="json: one JSON object per line; chrome: Chrome "
                         "trace-viewer / Perfetto file")
    te.add_argument("--kinds", default="*", metavar="PATTERNS",
                    help="comma-separated event-kind patterns, e.g. "
                         "'part.*,nic.*' (exit 2 on unknown kinds)")
    te.add_argument("--output", "-o", default=None, metavar="PATH",
                    help="write to PATH instead of stdout")

    rp = sub.add_parser(
        "report", help="per-rank diagnostics + event counters for one run")
    _add_measurement_args(rp, iterations=3)
    rp.add_argument("--format", default="text",
                    choices=["text", "json", "chrome"])
    rp.add_argument("--kinds", default="*", metavar="PATTERNS",
                    help="comma-separated event-kind patterns to count "
                         "(exit 2 on unknown kinds)")

    fa = sub.add_parser(
        "faults", help="inspect a fault-injection spec (or its grammar)")
    fa.add_argument("--spec", default=None, metavar="SPEC",
                    help="fault spec to parse and display; omit to print "
                         "the grammar")

    a = sub.add_parser("advisor", help="recommend a partition count")
    a.add_argument("--message-bytes", type=int, required=True)
    a.add_argument("--compute-ms", type=float, default=10.0)
    a.add_argument("--noise", default="single",
                   choices=["none", "single", "uniform", "gaussian",
                            "exponential"])
    a.add_argument("--noise-percent", type=float, default=None,
                   help="noise magnitude in percent (default: 0 for "
                        "'none', 4 for noisy models)")
    a.add_argument("--objective", default="balanced",
                   choices=["availability", "overhead", "balanced"])
    a.add_argument("--iterations", type=int, default=3)
    a.add_argument("--seed", type=int, default=0)

    sv = sub.add_parser(
        "serve",
        help="run the benchmark daemon (HTTP/JSON over the warm pool)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: loopback only)")
    sv.add_argument("--port", type=int, default=8642,
                    help="listen port; 0 binds an ephemeral port and "
                         "prints it")
    sv.add_argument(
        "--jobs", type=int, default=os.cpu_count(), metavar="N",
        help="worker processes behind the daemon (default: all cores)")
    sv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result cache: repeated and concurrent requests for "
             "one fingerprint execute once")
    sv.add_argument(
        "--analytic", default="off", choices=list(ANALYTIC_MODES),
        help="closed-form fast path for deterministic cells")
    sv.add_argument(
        "--quota", type=int, default=16, metavar="N",
        help="per-client in-flight request ceiling; excess requests "
             "are rejected with a 429 (default 16)")
    sv.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="how long a dispatcher waits for more requests before "
             "cutting a batch (default 0.005)")
    sv.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="requests per dispatched batch at most (default 64)")
    sv.add_argument(
        "--dispatchers", type=int, default=2, metavar="N",
        help="dispatcher threads feeding the engine (default 2)")
    sv.add_argument(
        "--request-timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-request wall-clock ceiling before a 504 (default 300)")
    sv.add_argument("--verbose", action="store_true",
                    help="log every HTTP request to stderr")

    lint = sub.add_parser(
        "lint", help="static determinism/sim-API linter (simlint)")
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"])
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="write SARIF output to FILE instead of stdout")
    lint.add_argument("--disable", action="append", default=[],
                      metavar="RULE", help="rule id to skip "
                      "(repeatable, e.g. --disable SIM103)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="exit non-zero only for findings absent from "
                           "this baseline file")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="record the current findings as the baseline "
                           "and exit 0")

    chk = sub.add_parser(
        "check", help="run a program under the dynamic checker")
    chk.add_argument("program",
                     help="python file defining program(ctx)")
    chk.add_argument("--nranks", type=int, default=None,
                     help="override the program's NRANKS")
    chk.add_argument("--format", default="text",
                     choices=["text", "json"])
    chk.add_argument("--disable", action="append", default=[],
                     metavar="RULE", help="rule id to skip "
                     "(repeatable, e.g. --disable FIN001)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        print(_cmd_list(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "cache":
        print(_cmd_cache(args))
    elif args.command == "metrics":
        print(_cmd_metrics(args))
    elif args.command == "advisor":
        print(_cmd_advisor(args))
    elif args.command == "faults":
        print(_cmd_faults(args))
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "check":
        return _cmd_check(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "report":
        return _cmd_report(args)
    else:
        print(FIGURES[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
