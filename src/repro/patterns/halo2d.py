"""Halo2D motif: the paper's 5-point halo exchange (§2.3, Figure 2b).

Ranks form a ``gx × gy`` grid (non-periodic); each rank exchanges one
boundary strip with up to four neighbours per step.  Threads form a row of
``t`` workers; each of the two vertical faces (north/south) splits into
``t`` partitions (one per thread), while the east/west faces are owned by
the first and last thread respectively — the classic 1D-within-2D
decomposition of stencil codes.

The paper uses this pattern for exposition and evaluates the 3D variant;
we implement both so the suite covers the exact figure the background
section draws, and so 2D stencil users can profile their shape directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..mpi import Cluster
from ..partitioned import partition_sizes
from .motif import CommMode, PatternConfig, PatternRunResult

__all__ = ["Halo2DGrid", "run_halo2d", "EDGES_2D", "opposite_edge"]

#: The four edges as (axis, direction): west, east, north, south.
EDGES_2D: Tuple[Tuple[int, int], ...] = ((0, -1), (0, +1), (1, -1), (1, +1))

_TAG_BASE = 60_000
_PTAG_BASE = 70_000


def opposite_edge(edge: int) -> int:
    """The neighbour-side edge matching ours."""
    return edge ^ 1


class Halo2DGrid:
    """Geometry of the 2D process grid."""

    def __init__(self, gx: int, gy: int):
        if min(gx, gy) < 1:
            raise ConfigurationError(f"grid must be >= 1x1: {gx}x{gy}")
        self.dims = (gx, gy)

    @property
    def nranks(self) -> int:
        """World size."""
        gx, gy = self.dims
        return gx * gy

    def coords(self, rank: int) -> Tuple[int, int]:
        """(x, y) of ``rank`` (x fastest)."""
        gx, _ = self.dims
        return rank % gx, rank // gx

    def rank_of(self, x: int, y: int) -> int:
        """Rank at (x, y)."""
        gx, _ = self.dims
        return y * gx + x

    def neighbor(self, rank: int, edge: int) -> Optional[int]:
        """Neighbour across ``edge`` (None at the domain boundary)."""
        x, y = self.coords(rank)
        axis, direction = EDGES_2D[edge]
        coord = [x, y]
        coord[axis] += direction
        gx, gy = self.dims
        if not (0 <= coord[0] < gx and 0 <= coord[1] < gy):
            return None
        return self.rank_of(coord[0], coord[1])

    def directed_edges(self) -> int:
        """Directed neighbour pairs."""
        gx, gy = self.dims
        return 2 * ((gx - 1) * gy + gx * (gy - 1))


def _edge_partitions(edge: int, tid: int, nthreads: int) -> Optional[int]:
    """Partition index thread ``tid`` owns on ``edge`` (None if not owner).

    North/south strips are split across all threads; the west strip is
    owned by thread 0 and the east strip by the last thread (the 1D thread
    row touches those edges only at its ends).
    """
    axis, direction = EDGES_2D[edge]
    if axis == 1:  # north/south: every thread owns one partition
        return tid
    if direction < 0:  # west
        return 0 if tid == 0 else None
    return 0 if tid == nthreads - 1 else None  # east


def _edge_partition_count(edge: int, nthreads: int) -> int:
    axis, _ = EDGES_2D[edge]
    return nthreads if axis == 1 else 1


def _step_tag(step: int, edge: int, part: int = 0) -> int:
    return _TAG_BASE + (step * 4 + edge) * 1024 + part


def _single_program(ctx, config: PatternConfig, grid: Halo2DGrid,
                    record: Dict):
    comm, main = ctx.comm, ctx.main
    m = config.message_bytes
    nbrs = [grid.neighbor(ctx.rank, e) for e in range(4)]
    rng = ctx.rng("halo2d-noise")
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            comp = config.noise.compute_times(rng, 1,
                                              config.compute_seconds)
            yield from main.compute(float(comp[0]))
            reqs = []
            for e, nb in enumerate(nbrs):
                if nb is None:
                    continue
                reqs.append((yield from comm.isend(
                    main, nb, _step_tag(s, e), m)))
                reqs.append((yield from comm.irecv(
                    main, nb, _step_tag(s, opposite_edge(e)), m)))
            if reqs:
                yield from comm.wait_all(main, reqs)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _multi_program(ctx, config: PatternConfig, grid: Halo2DGrid,
                   record: Dict):
    comm, main = ctx.comm, ctx.main
    n = config.threads
    strip_sizes = partition_sizes(config.message_bytes, n)
    m = config.message_bytes
    nbrs = [grid.neighbor(ctx.rank, e) for e in range(4)]
    rng = ctx.rng("halo2d-noise")
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            comp = config.noise.compute_times(rng, n,
                                              config.compute_seconds)

            def worker(tc, s=s, comp=comp):
                tid = tc.thread_id
                yield from tc.compute(float(comp[tid]))
                reqs = []
                for e, nb in enumerate(nbrs):
                    if nb is None:
                        continue
                    pidx = _edge_partitions(e, tid, n)
                    if pidx is None:
                        continue
                    axis, _ = EDGES_2D[e]
                    size = strip_sizes[tid] if axis == 1 else m
                    reqs.append((yield from comm.isend(
                        tc, nb, _step_tag(s, e, pidx + 1), size)))
                    reqs.append((yield from comm.irecv(
                        tc, nb, _step_tag(s, opposite_edge(e), pidx + 1),
                        size)))
                if reqs:
                    yield from comm.wait_all(tc, reqs)

            team = yield from ctx.fork(n, worker)
            yield from team.join()
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _partitioned_program(ctx, config: PatternConfig, grid: Halo2DGrid,
                         record: Dict):
    comm, main = ctx.comm, ctx.main
    n = config.threads
    m = config.message_bytes
    nbrs = [grid.neighbor(ctx.rank, e) for e in range(4)]
    rng = ctx.rng("halo2d-noise")
    sends, recvs = {}, {}
    for e, nb in enumerate(nbrs):
        if nb is None:
            continue
        parts = _edge_partition_count(e, n)
        sends[e] = yield from comm.psend_init(
            main, nb, _PTAG_BASE + e, m, parts, impl=config.impl)
        recvs[e] = yield from comm.precv_init(
            main, nb, _PTAG_BASE + opposite_edge(e), m,
            _edge_partition_count(opposite_edge(e), n), impl=config.impl)
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            for r in recvs.values():
                yield from r.start(main)
            for r in sends.values():
                yield from r.start(main)
            comp = config.noise.compute_times(rng, n,
                                              config.compute_seconds)

            def worker(tc, comp=comp):
                tid = tc.thread_id
                yield from tc.compute(float(comp[tid]))
                for e, ps in sends.items():
                    pidx = _edge_partitions(e, tid, n)
                    if pidx is not None:
                        yield from ps.pready(tc, pidx)

            team = yield from ctx.fork(n, worker)
            yield from team.join()
            for r in list(sends.values()) + list(recvs.values()):
                yield from r.wait(main)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def run_halo2d(config: PatternConfig,
               grid: Optional[Halo2DGrid] = None) -> PatternRunResult:
    """Run the 5-point Halo2D motif; see :func:`run_halo3d` for semantics."""
    grid = grid or Halo2DGrid(3, 3)
    cluster = Cluster(
        nranks=grid.nranks,
        spec=config.spec,
        inter_node=config.inter_node,
        intra_node=config.intra_node,
        costs=config.costs,
        mode=config.threading_mode,
        bind_policy=config.bind_policy,
        seed=config.seed,
    )
    record: Dict[int, Dict] = {}
    programs = {
        CommMode.SINGLE: _single_program,
        CommMode.MULTI: _multi_program,
        CommMode.PARTITIONED: _partitioned_program,
    }
    body = programs[config.mode]

    def program(ctx):
        yield from body(ctx, config, grid, record)

    cluster.run(program)
    bytes_per_iter = (config.steps * config.message_bytes
                      * grid.directed_edges())
    elapsed = [record[it]["t_end"] - record[it]["t_start"]
               for it in range(config.warmup, config.total_iterations)]
    compute_cp = config.steps * config.compute_seconds
    return PatternRunResult(config=config, nranks=grid.nranks,
                            bytes_per_iteration=bytes_per_iter,
                            compute_critical_path=compute_cp,
                            elapsed=elapsed)
