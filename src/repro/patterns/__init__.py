"""Communication-pattern motifs (Ember-style Sweep3D and Halo3D, §3.2)."""

from .halo2d import EDGES_2D, Halo2DGrid, opposite_edge, run_halo2d
from .halo3d import (FACES, Halo3DGrid, face_partition, opposite_face,
                     run_halo3d, thread_cube_side)
from .motif import CommMode, PatternConfig, PatternRunResult
from .runner import MOTIFS, run_motif, throughput_series
from .sweep3d import Sweep3DGrid, run_sweep3d

__all__ = [
    "EDGES_2D",
    "Halo2DGrid",
    "opposite_edge",
    "run_halo2d",
    "FACES",
    "Halo3DGrid",
    "face_partition",
    "opposite_face",
    "run_halo3d",
    "thread_cube_side",
    "CommMode",
    "PatternConfig",
    "PatternRunResult",
    "MOTIFS",
    "run_motif",
    "throughput_series",
    "Sweep3DGrid",
    "run_sweep3d",
]
