"""Sweep3D motif: a KBA wavefront over a 2D process grid (§2.2, §4.6).

The 3D domain is decomposed over a ``px × py`` process grid; KBA blocks
flow as wavefronts from the (0,0) corner: each rank receives its west and
north dependencies, computes the block, then forwards east and south.
``steps`` KBA blocks pipeline through the grid per iteration.

Three communication modes (see :class:`~repro.patterns.motif.CommMode`):
SINGLE sends each ``message_bytes`` boundary whole; MULTI slices it across
threads, each doing its own point-to-point under ``MPI_THREAD_MULTIPLE``;
PARTITIONED uses one persistent partitioned transfer per direction with one
partition per thread, restarted every block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..mpi import Cluster
from ..partitioned import partition_sizes
from .motif import CommMode, PatternConfig, PatternRunResult

__all__ = ["Sweep3DGrid", "run_sweep3d"]

#: Tag bases for the two flow directions (user tag space).
_TAG_EAST = 10_000
_TAG_SOUTH = 20_000
#: Partitioned transfers are matched once; one tag per direction suffices.
_PTAG_EAST = 30_000
_PTAG_SOUTH = 30_001


class Sweep3DGrid:
    """Geometry of the 2D process grid the sweep runs over."""

    def __init__(self, px: int, py: int):
        if px < 1 or py < 1:
            raise ConfigurationError(f"grid must be >= 1x1: {px}x{py}")
        self.px = px
        self.py = py

    @property
    def nranks(self) -> int:
        """World size."""
        return self.px * self.py

    def coords(self, rank: int) -> Tuple[int, int]:
        """(x, y) of ``rank`` (x fastest)."""
        return rank % self.px, rank // self.px

    def rank_of(self, x: int, y: int) -> int:
        """Rank at (x, y)."""
        return y * self.px + x

    def neighbors(self, rank: int) -> Dict[str, Optional[int]]:
        """The wavefront neighbours: west/north upstream, east/south down."""
        x, y = self.coords(rank)
        return {
            "west": self.rank_of(x - 1, y) if x > 0 else None,
            "east": self.rank_of(x + 1, y) if x < self.px - 1 else None,
            "north": self.rank_of(x, y - 1) if y > 0 else None,
            "south": self.rank_of(x, y + 1) if y < self.py - 1 else None,
        }

    def edge_count(self) -> int:
        """Directed communication edges per block (east + south links)."""
        return (self.px - 1) * self.py + self.px * (self.py - 1)


def _block_tag(base: int, block: int, thread: int, threads: int) -> int:
    return base + block * threads + thread


def _single_program(ctx, config: PatternConfig, grid: Sweep3DGrid,
                    record: Dict):
    comm, main = ctx.comm, ctx.main
    nb = grid.neighbors(ctx.rank)
    m = config.message_bytes
    rng = ctx.rng("sweep-noise")
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for b in range(config.steps):
            if nb["west"] is not None:
                yield from comm.recv(main, nb["west"],
                                     _block_tag(_TAG_EAST, b, 0, 1), m)
            if nb["north"] is not None:
                yield from comm.recv(main, nb["north"],
                                     _block_tag(_TAG_SOUTH, b, 0, 1), m)
            comp = config.noise.compute_times(rng, 1,
                                              config.compute_seconds)
            yield from main.compute(float(comp[0]))
            reqs = []
            if nb["east"] is not None:
                reqs.append((yield from comm.isend(
                    main, nb["east"], _block_tag(_TAG_EAST, b, 0, 1), m)))
            if nb["south"] is not None:
                reqs.append((yield from comm.isend(
                    main, nb["south"], _block_tag(_TAG_SOUTH, b, 0, 1), m)))
            if reqs:
                yield from comm.wait_all(main, reqs)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _multi_program(ctx, config: PatternConfig, grid: Sweep3DGrid,
                   record: Dict):
    """Fork-join multi-threaded point-to-point wavefront.

    Each thread receives its slice under ``MPI_THREAD_MULTIPLE``, then the
    team barriers before computing — the block's compute consumes the whole
    boundary, so the fork-join model cannot exploit partial arrivals.  That
    coarse synchronization (plus progress-lock contention from the blocked
    receivers) is what partitioned communication removes.
    """
    comm, main = ctx.comm, ctx.main
    nb = grid.neighbors(ctx.rank)
    n = config.threads
    slice_sizes = partition_sizes(config.message_bytes, n)
    rng = ctx.rng("sweep-noise")
    from ..threadsim import SimBarrier
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for b in range(config.steps):
            comp = config.noise.compute_times(rng, n,
                                              config.compute_seconds)
            tbar = SimBarrier(ctx.sim, n)

            def worker(tc, b=b, comp=comp, tbar=tbar):
                tid = tc.thread_id
                sz = slice_sizes[tid]
                if nb["west"] is not None:
                    req = yield from comm.irecv(
                        tc, nb["west"], _block_tag(_TAG_EAST, b, tid, n), sz)
                    yield from comm.wait(tc, req)
                if nb["north"] is not None:
                    req = yield from comm.irecv(
                        tc, nb["north"], _block_tag(_TAG_SOUTH, b, tid, n),
                        sz)
                    yield from comm.wait(tc, req)
                # The block needs the whole west/north boundary: wait for
                # every thread's slice before computing.
                yield from tbar.wait()
                yield from tc.compute(float(comp[tid]))
                reqs = []
                if nb["east"] is not None:
                    reqs.append((yield from comm.isend(
                        tc, nb["east"], _block_tag(_TAG_EAST, b, tid, n),
                        sz)))
                if nb["south"] is not None:
                    reqs.append((yield from comm.isend(
                        tc, nb["south"], _block_tag(_TAG_SOUTH, b, tid, n),
                        sz)))
                if reqs:
                    yield from comm.wait_all(tc, reqs)

            team = yield from ctx.fork(n, worker)
            yield from team.join()
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _partitioned_program(ctx, config: PatternConfig, grid: Sweep3DGrid,
                         record: Dict):
    """Double-buffered partitioned wavefront.

    Two persistent partitioned transfers per direction alternate across
    blocks (even/odd), so block ``b``'s transfers drain while block
    ``b+1`` computes — the buffer-reuse pipelining persistent partitioned
    communication is designed for.  Threads gate their compute on their
    *own* partition's ``MPI_Parrived`` (lock-free), giving thread-level
    wavefront pipelining: the sends of a staggered team keep the NIC busy
    during the compute window, which is where the paper's large
    partitioned-vs-single throughput gap comes from.
    """
    comm, main = ctx.comm, ctx.main
    nb = grid.neighbors(ctx.rank)
    n = config.threads
    m = config.message_bytes
    rng = ctx.rng("sweep-noise")
    sends: List[List] = [[], []]
    recvs: List[List] = [[], []]
    for phase in (0, 1):
        if nb["east"] is not None:
            sends[phase].append((yield from comm.psend_init(
                main, nb["east"], _PTAG_EAST + 2 * phase, m, n,
                impl=config.impl)))
        if nb["south"] is not None:
            sends[phase].append((yield from comm.psend_init(
                main, nb["south"], _PTAG_SOUTH + 2 * phase, m, n,
                impl=config.impl)))
        if nb["west"] is not None:
            recvs[phase].append((yield from comm.precv_init(
                main, nb["west"], _PTAG_EAST + 2 * phase, m, n,
                impl=config.impl)))
        if nb["north"] is not None:
            recvs[phase].append((yield from comm.precv_init(
                main, nb["north"], _PTAG_SOUTH + 2 * phase, m, n,
                impl=config.impl)))
    from ..sim import Event
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        # Pre-draw all sweeps' per-thread compute amounts (common random
        # numbers, same stream discipline as the fork-join modes).
        computes = [config.noise.compute_times(rng, n,
                                               config.compute_seconds)
                    for _ in range(config.steps)]
        # One parallel region for the whole iteration: threads persist
        # across sweeps, so the partition-arrival stagger carries over and
        # the NIC stays busy inside the compute window instead of being
        # re-synchronized away by a per-sweep join.
        armed = [Event(ctx.sim) for _ in range(config.steps)]
        # consumed[s] triggers when every thread has finished sweep s; the
        # buffer used by sweep s must not be restarted before then, or a
        # straggler thread would observe the *new* epoch's arrival events
        # (real double-buffered partitioned code needs the same sync
        # before MPI_Start re-arms a receive buffer).
        consumed = [Event(ctx.sim) for _ in range(config.steps)]
        done_counts = [0] * config.steps

        def worker(tc):
            tid = tc.thread_id
            for s in range(config.steps):
                if not armed[s].triggered:
                    yield armed[s]
                cur = s % 2
                # Gate on this thread's slice only (MPI_Parrived is a
                # lock-free flag poll, so no progress contention).
                for r in recvs[cur]:
                    ev = r.arrived_event(tid)
                    if not ev.triggered:
                        yield ev
                yield from tc.compute(float(computes[s][tid]))
                for r in sends[cur]:
                    yield from r.pready(tc, tid)
                done_counts[s] += 1
                if done_counts[s] == n:
                    consumed[s].succeed()

        team = yield from ctx.fork(n, worker)
        for s in range(config.steps):
            cur = s % 2
            if s >= 2:
                # Retire the epoch that used this buffer two sweeps ago —
                # and make sure every thread is past it.
                if not consumed[s - 2].triggered:
                    yield consumed[s - 2]
                for r in sends[cur] + recvs[cur]:
                    yield from r.wait(main)
            for r in recvs[cur]:
                yield from r.start(main)
            for r in sends[cur]:
                yield from r.start(main)
            armed[s].succeed()
        yield from team.join()
        for s in range(max(0, config.steps - 2), config.steps):
            for r in sends[s % 2] + recvs[s % 2]:
                yield from r.wait(main)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def run_sweep3d(config: PatternConfig,
                grid: Optional[Sweep3DGrid] = None) -> PatternRunResult:
    """Run the Sweep3D motif and return throughput per iteration.

    ``grid`` defaults to 3×3 ranks, one per node (paper-style placement).
    """
    grid = grid or Sweep3DGrid(3, 3)
    cluster = Cluster(
        nranks=grid.nranks,
        spec=config.spec,
        inter_node=config.inter_node,
        intra_node=config.intra_node,
        costs=config.costs,
        mode=config.threading_mode,
        bind_policy=config.bind_policy,
        seed=config.seed,
    )
    record: Dict[int, Dict] = {}
    programs = {
        CommMode.SINGLE: _single_program,
        CommMode.MULTI: _multi_program,
        CommMode.PARTITIONED: _partitioned_program,
    }
    body = programs[config.mode]

    def program(ctx):
        yield from body(ctx, config, grid, record)

    cluster.run(program)
    bytes_per_iter = (config.steps * config.message_bytes
                      * grid.edge_count())
    elapsed = [record[it]["t_end"] - record[it]["t_start"]
               for it in range(config.warmup, config.total_iterations)]
    # Wavefront compute critical path: the last corner finishes its last
    # block after (pipeline diameter + steps - 1) block-compute slots.
    slots = grid.px + grid.py - 2 + config.steps
    compute_cp = slots * config.compute_seconds
    return PatternRunResult(config=config, nranks=grid.nranks,
                            bytes_per_iteration=bytes_per_iter,
                            compute_critical_path=compute_cp,
                            elapsed=elapsed)
