"""Throughput sweeps over motifs × modes × message sizes (Figures 9–12)."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .halo2d import Halo2DGrid, run_halo2d
from .halo3d import Halo3DGrid, run_halo3d
from .motif import CommMode, PatternConfig, PatternRunResult
from .sweep3d import Sweep3DGrid, run_sweep3d

__all__ = ["run_motif", "throughput_series", "MOTIFS"]

#: Registered motifs: name -> (runner, default grid factory).
MOTIFS: Dict[str, Tuple[Callable, Callable]] = {
    "sweep3d": (run_sweep3d, lambda: Sweep3DGrid(3, 3)),
    "halo3d": (run_halo3d, lambda: Halo3DGrid(2, 2, 2)),
    "halo2d": (run_halo2d, lambda: Halo2DGrid(3, 3)),
}


def run_motif(motif: str, config: PatternConfig,
              grid=None) -> PatternRunResult:
    """Run one motif by name (``"sweep3d"`` or ``"halo3d"``)."""
    try:
        runner, default_grid = MOTIFS[motif]
    except KeyError:
        raise ConfigurationError(
            f"unknown motif {motif!r}; choose from {sorted(MOTIFS)}")
    return runner(config, grid if grid is not None else default_grid())


def throughput_series(motif: str,
                      base: PatternConfig,
                      message_sizes: Sequence[int],
                      modes: Sequence[CommMode] = tuple(CommMode),
                      grid=None,
                      ) -> Dict[str, List[Tuple[int, float]]]:
    """Throughput (bytes/s) per mode across message sizes.

    Returns ``{mode_name: [(message_bytes, mean_throughput), ...]}`` — the
    series layout of the paper's Figures 9–12.
    """
    if not message_sizes:
        raise ConfigurationError("need at least one message size")
    out: Dict[str, List[Tuple[int, float]]] = {}
    for mode in modes:
        pts: List[Tuple[int, float]] = []
        for m in message_sizes:
            config = base.with_overrides(mode=mode, message_bytes=m)
            result = run_motif(motif, config, grid=grid)
            pts.append((m, result.mean_throughput))
        out[mode.value] = pts
    return out
