"""Halo3D motif: a 7-point (6-neighbour) halo exchange in 3D (§2.3, §4.7).

Ranks form a ``gx × gy × gz`` grid (non-periodic).  Threads form a
``c × c × c`` cube inside each rank (the paper's 8 = 2³ and 64 = 4³
configurations); each face of the rank's subdomain is exchanged with the
corresponding neighbour and is split into ``c²`` partitions, one per thread
on that face (2×2 = 4 partitions for 8 threads, 4×4 = 16 for 64 threads).
Interior threads compute but own no face partition.

Per step and mode:

* SINGLE — compute, then six whole-face nonblocking exchanges.
* MULTI — threads compute, then each surface thread exchanges its own face
  chunks point-to-point under ``MPI_THREAD_MULTIPLE``.
* PARTITIONED — persistent partitioned transfers per face; surface threads
  ``pready`` their partitions as their compute finishes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..mpi import Cluster
from ..partitioned import partition_sizes
from .motif import CommMode, PatternConfig, PatternRunResult

__all__ = ["Halo3DGrid", "run_halo3d", "thread_cube_side", "face_partition",
           "FACES", "opposite_face"]

#: The six faces as (axis, direction) pairs, indexed 0..5.
FACES: Tuple[Tuple[int, int], ...] = (
    (0, -1), (0, +1), (1, -1), (1, +1), (2, -1), (2, +1))

#: Tag bases (user tag space).
_TAG_BASE = 40_000
_PTAG_BASE = 50_000


def opposite_face(face: int) -> int:
    """The neighbour-side face id matching our ``face``."""
    return face ^ 1


def thread_cube_side(threads: int) -> int:
    """Side length ``c`` with ``c³ == threads`` (the paper's requirement).

    Raises :class:`~repro.errors.ConfigurationError` for non-cubes, echoing
    the paper's note that Halo3D thread counts must be cubed numbers.
    """
    c = round(threads ** (1.0 / 3.0))
    for cand in (c - 1, c, c + 1):
        if cand >= 1 and cand ** 3 == threads:
            return cand
    raise ConfigurationError(
        f"halo3d thread count must be a cube (8, 27, 64, ...): {threads}")


def face_partition(face: int, tx: int, ty: int, tz: int,
                   c: int) -> Optional[int]:
    """Partition index thread (tx,ty,tz) owns on ``face`` (None if interior
    to that face)."""
    axis, direction = FACES[face]
    coord = (tx, ty, tz)[axis]
    boundary = 0 if direction < 0 else c - 1
    if coord != boundary:
        return None
    if axis == 0:
        return ty * c + tz
    if axis == 1:
        return tx * c + tz
    return tx * c + ty


class Halo3DGrid:
    """Geometry of the 3D process grid."""

    def __init__(self, gx: int, gy: int, gz: int):
        if min(gx, gy, gz) < 1:
            raise ConfigurationError(
                f"grid must be >= 1x1x1: {gx}x{gy}x{gz}")
        self.dims = (gx, gy, gz)

    @property
    def nranks(self) -> int:
        """World size."""
        gx, gy, gz = self.dims
        return gx * gy * gz

    def coords(self, rank: int) -> Tuple[int, int, int]:
        """(x, y, z) of ``rank`` (x fastest)."""
        gx, gy, _ = self.dims
        return rank % gx, (rank // gx) % gy, rank // (gx * gy)

    def rank_of(self, x: int, y: int, z: int) -> int:
        """Rank at (x, y, z)."""
        gx, gy, _ = self.dims
        return z * gx * gy + y * gx + x

    def neighbor(self, rank: int, face: int) -> Optional[int]:
        """Neighbour across ``face`` (None at the domain boundary)."""
        x, y, z = self.coords(rank)
        axis, direction = FACES[face]
        coord = [x, y, z]
        coord[axis] += direction
        if not (0 <= coord[axis] < self.dims[axis]):
            return None
        return self.rank_of(*coord)

    def directed_edges(self) -> int:
        """Directed neighbour pairs (each exchanges ``message_bytes``)."""
        gx, gy, gz = self.dims
        undirected = ((gx - 1) * gy * gz + gx * (gy - 1) * gz
                      + gx * gy * (gz - 1))
        return 2 * undirected


def _step_tag(step: int, face: int, part: int = 0) -> int:
    return _TAG_BASE + (step * 6 + face) * 1024 + part


def _single_program(ctx, config: PatternConfig, grid: Halo3DGrid,
                    record: Dict):
    comm, main = ctx.comm, ctx.main
    m = config.message_bytes
    nbrs = [grid.neighbor(ctx.rank, f) for f in range(6)]
    rng = ctx.rng("halo-noise")
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            comp = config.noise.compute_times(rng, 1,
                                              config.compute_seconds)
            yield from main.compute(float(comp[0]))
            reqs = []
            for f, nb in enumerate(nbrs):
                if nb is None:
                    continue
                reqs.append((yield from comm.isend(
                    main, nb, _step_tag(s, f), m)))
                reqs.append((yield from comm.irecv(
                    main, nb, _step_tag(s, opposite_face(f)), m)))
            if reqs:
                yield from comm.wait_all(main, reqs)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _multi_program(ctx, config: PatternConfig, grid: Halo3DGrid,
                   record: Dict):
    comm, main = ctx.comm, ctx.main
    c = thread_cube_side(config.threads)
    parts = c * c
    chunk_sizes = partition_sizes(config.message_bytes, parts)
    nbrs = [grid.neighbor(ctx.rank, f) for f in range(6)]
    rng = ctx.rng("halo-noise")
    n = config.threads
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            comp = config.noise.compute_times(rng, n,
                                              config.compute_seconds)

            def worker(tc, s=s, comp=comp):
                tid = tc.thread_id
                tx, ty, tz = (tid // (c * c), (tid // c) % c, tid % c)
                yield from tc.compute(float(comp[tid]))
                reqs = []
                for f, nb in enumerate(nbrs):
                    if nb is None:
                        continue
                    pidx = face_partition(f, tx, ty, tz, c)
                    if pidx is None:
                        continue
                    sz = chunk_sizes[pidx]
                    reqs.append((yield from comm.isend(
                        tc, nb, _step_tag(s, f, pidx + 1), sz)))
                    reqs.append((yield from comm.irecv(
                        tc, nb, _step_tag(s, opposite_face(f), pidx + 1),
                        sz)))
                if reqs:
                    yield from comm.wait_all(tc, reqs)

            team = yield from ctx.fork(n, worker)
            yield from team.join()
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def _partitioned_program(ctx, config: PatternConfig, grid: Halo3DGrid,
                         record: Dict):
    comm, main = ctx.comm, ctx.main
    c = thread_cube_side(config.threads)
    parts = c * c
    m = config.message_bytes
    nbrs = [grid.neighbor(ctx.rank, f) for f in range(6)]
    rng = ctx.rng("halo-noise")
    n = config.threads
    sends, recvs = {}, {}
    for f, nb in enumerate(nbrs):
        if nb is None:
            continue
        sends[f] = yield from comm.psend_init(
            main, nb, _PTAG_BASE + f, m, parts, impl=config.impl)
        recvs[f] = yield from comm.precv_init(
            main, nb, _PTAG_BASE + opposite_face(f), m, parts,
            impl=config.impl)
    for it in range(config.total_iterations):
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record.setdefault(it, {})["t_start"] = ctx.sim.now
        for s in range(config.steps):
            for r in recvs.values():
                yield from r.start(main)
            for r in sends.values():
                yield from r.start(main)
            comp = config.noise.compute_times(rng, n,
                                              config.compute_seconds)

            def worker(tc, comp=comp):
                tid = tc.thread_id
                tx, ty, tz = (tid // (c * c), (tid // c) % c, tid % c)
                yield from tc.compute(float(comp[tid]))
                for f, ps in sends.items():
                    pidx = face_partition(f, tx, ty, tz, c)
                    if pidx is not None:
                        yield from ps.pready(tc, pidx)

            team = yield from ctx.fork(n, worker)
            yield from team.join()
            for r in list(sends.values()) + list(recvs.values()):
                yield from r.wait(main)
        yield from comm.barrier(main)
        if ctx.rank == 0:
            record[it]["t_end"] = ctx.sim.now


def run_halo3d(config: PatternConfig,
               grid: Optional[Halo3DGrid] = None) -> PatternRunResult:
    """Run the Halo3D motif and return throughput per iteration.

    ``grid`` defaults to 2×2×2 ranks, one per node.
    """
    grid = grid or Halo3DGrid(2, 2, 2)
    if config.mode is not CommMode.SINGLE:
        thread_cube_side(config.threads)  # validate early
    cluster = Cluster(
        nranks=grid.nranks,
        spec=config.spec,
        inter_node=config.inter_node,
        intra_node=config.intra_node,
        costs=config.costs,
        mode=config.threading_mode,
        bind_policy=config.bind_policy,
        seed=config.seed,
    )
    record: Dict[int, Dict] = {}
    programs = {
        CommMode.SINGLE: _single_program,
        CommMode.MULTI: _multi_program,
        CommMode.PARTITIONED: _partitioned_program,
    }
    body = programs[config.mode]

    def program(ctx):
        yield from body(ctx, config, grid, record)

    cluster.run(program)
    bytes_per_iter = (config.steps * config.message_bytes
                      * grid.directed_edges())
    elapsed = [record[it]["t_end"] - record[it]["t_start"]
               for it in range(config.warmup, config.total_iterations)]
    # Halo steps are bulk-synchronous: one compute slot per step, scaled
    # for oversubscription (64 threads on 40 cores compute ~2x longer).
    from ..machine import bind_threads, scaled_compute_time
    binding = bind_threads(max(1, config.worker_threads), config.spec,
                           config.bind_policy)
    slot = max(scaled_compute_time(
        config.compute_seconds,
        binding.oversubscription_factor(t), config.spec)
        for t in range(binding.nthreads))
    compute_cp = config.steps * slot
    return PatternRunResult(config=config, nranks=grid.nranks,
                            bytes_per_iteration=bytes_per_iter,
                            compute_critical_path=compute_cp,
                            elapsed=elapsed)
