"""Shared machinery for the Ember-style communication-pattern motifs.

The paper adapts two motifs from SST/Ember (§3.2): Sweep3D (a KBA wavefront)
and Halo3D (a 7-point halo exchange), each in three communication modes:

* ``SINGLE`` — one thread per rank, whole-message point-to-point;
* ``MULTI`` — one thread per partition, each doing its own point-to-point
  under ``MPI_THREAD_MULTIPLE``;
* ``PARTITIONED`` — one thread per partition calling ``MPI_Pready`` on a
  persistent partitioned transfer.

Per the paper's §4.1 methodology: data is weak-scaled (every rank handles
``message_bytes`` per neighbor regardless of thread count) while compute is
strong-scaled (every thread computes the same nominal amount, so wall
compute time stays ~constant as threads grow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List

from ..errors import ConfigurationError
from ..machine import BindPolicy, MachineSpec, NIAGARA_NODE
from ..metrics import SampleSummary, summarize
from ..mpi import DEFAULT_COSTS, MPICosts, ThreadingMode
from ..network import INTRA_NODE, NIAGARA_EDR, NetworkParams
from ..noise import NoiseModel, SingleThreadNoise
from ..partitioned import IMPL_MPIPCL, IMPL_NATIVE

__all__ = ["CommMode", "PatternConfig", "PatternRunResult"]


class CommMode(enum.Enum):
    """Communication mode of a motif run."""

    SINGLE = "single"
    MULTI = "multi"
    PARTITIONED = "partitioned"


def _default_noise() -> NoiseModel:
    # The pattern figures all use the 4% single-thread delay model.
    return SingleThreadNoise(4.0)


@dataclass(frozen=True)
class PatternConfig:
    """One motif run's parameters.

    Attributes
    ----------
    mode:
        Communication mode (see :class:`CommMode`).
    threads:
        Threads per rank (= partitions per transfer in MULTI/PARTITIONED;
        ignored by SINGLE, which uses one).
    message_bytes:
        Bytes exchanged with each neighbour per step (weak-scaled).
    compute_seconds:
        Nominal per-thread compute per step (strong-scaled).
    noise:
        Injected-noise model applied to every compute phase.
    steps:
        Motif steps (wavefront diagonals / halo iterations) per iteration.
    iterations / warmup:
        Measured and discarded repetitions of the whole motif.
    impl:
        Partitioned implementation for PARTITIONED mode.
    """

    mode: CommMode
    threads: int = 4
    message_bytes: int = 1 << 20
    compute_seconds: float = 0.010
    noise: NoiseModel = field(default_factory=_default_noise)
    steps: int = 4
    iterations: int = 3
    warmup: int = 1
    seed: int = 0
    impl: str = IMPL_MPIPCL
    threading_mode: ThreadingMode = ThreadingMode.MULTIPLE
    bind_policy: BindPolicy = BindPolicy.COMPACT
    spec: MachineSpec = NIAGARA_NODE
    inter_node: NetworkParams = NIAGARA_EDR
    intra_node: NetworkParams = INTRA_NODE
    costs: MPICosts = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError(f"threads must be >= 1: {self.threads}")
        if self.message_bytes < max(1, self.threads):
            raise ConfigurationError(
                f"message_bytes {self.message_bytes} too small for "
                f"{self.threads} partitions")
        if self.compute_seconds < 0:
            raise ConfigurationError("compute_seconds must be >= 0")
        if self.steps < 1 or self.iterations < 1 or self.warmup < 0:
            raise ConfigurationError(
                "steps/iterations must be >= 1, warmup >= 0")
        if self.impl not in (IMPL_MPIPCL, IMPL_NATIVE):
            raise ConfigurationError(f"unknown impl {self.impl!r}")

    @property
    def worker_threads(self) -> int:
        """Actual team size for this mode (SINGLE runs one thread)."""
        return 1 if self.mode is CommMode.SINGLE else self.threads

    @property
    def total_iterations(self) -> int:
        """Warmup plus measured iterations."""
        return self.warmup + self.iterations

    def with_overrides(self, **kwargs) -> "PatternConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


@dataclass
class PatternRunResult:
    """Throughput measurements of one motif run.

    ``bytes_per_iteration`` counts every byte any rank handed to its NIC
    for motif traffic.  The headline number is *communication throughput*
    (the quantity the paper's Figures 9–12 plot): volume divided by the
    iteration's communication time — wall-clock span minus the motif's
    compute critical path, i.e. the time the pattern spends communicating
    or stalled on communication rather than computing.  Wall-clock
    throughput is also exposed for completeness.
    """

    config: PatternConfig
    nranks: int
    bytes_per_iteration: int
    #: Compute on the motif's critical path per iteration (supplied by the
    #: motif runner; e.g. pipeline-fill + steps for a wavefront).
    compute_critical_path: float = 0.0
    elapsed: List[float] = field(default_factory=list)

    def comm_times(self) -> List[float]:
        """Per-iteration communication time (never below 1 ns)."""
        if not self.elapsed:
            raise ConfigurationError("no measured iterations")
        return [max(e - self.compute_critical_path, 1e-9)
                for e in self.elapsed]

    @property
    def throughput(self) -> SampleSummary:
        """Communication throughput (bytes/second) across iterations."""
        return summarize([self.bytes_per_iteration / t
                          for t in self.comm_times()])

    @property
    def wall_throughput(self) -> SampleSummary:
        """Whole-iteration (compute included) bytes/second."""
        if not self.elapsed:
            raise ConfigurationError("no measured iterations")
        return summarize([self.bytes_per_iteration / e
                          for e in self.elapsed])

    @property
    def mean_throughput(self) -> float:
        """Convenience accessor for the headline number."""
        return self.throughput.mean
