#!/usr/bin/env python3
"""Halo-exchange application study (the paper's Figures 11–12 scenario).

A 7-point stencil code decomposed over a 2x2x2 rank grid exchanges faces
with its six neighbours every step.  This example compares the three
communication modes at the paper's two thread configurations — 8 threads
(4 partitions per face) and 64 oversubscribed threads (16 per face) — and
shows both communication and whole-iteration (wall) throughput.

Run:  python examples/halo_application.py
"""

from repro.core import ascii_table, format_bytes
from repro.patterns import (CommMode, Halo3DGrid, PatternConfig,
                            run_halo3d)

GRID = Halo3DGrid(2, 2, 2)
SIZES = (1 << 20, 16 << 20)


def study(threads: int, compute_seconds: float) -> str:
    rows = []
    for m in SIZES:
        for mode in CommMode:
            cfg = PatternConfig(mode=mode, threads=threads,
                                message_bytes=m,
                                compute_seconds=compute_seconds,
                                steps=2, iterations=2, warmup=1, seed=9)
            result = run_halo3d(cfg, GRID)
            rows.append([
                format_bytes(m),
                mode.value,
                f"{result.mean_throughput / 1e9:.2f}",
                f"{result.wall_throughput.mean / 1e9:.2f}",
            ])
    return ascii_table(
        ["face size", "mode", "comm GB/s", "wall GB/s"], rows,
        title=f"{threads} threads "
              f"({'oversubscribed, ' if threads > 40 else ''}"
              f"{compute_seconds * 1e3:g} ms compute)")


def main() -> None:
    print("Halo3D (7-point) exchange over a 2x2x2 rank grid, "
          "4% single-thread noise\n")
    print(study(threads=8, compute_seconds=0.010))
    print()
    print(study(threads=64, compute_seconds=0.010))
    print()
    print(study(threads=64, compute_seconds=0.100))
    print(
        "\nreading: with 4 partitions per face every mode performs about\n"
        "the same (the paper's Fig 11a); at 64 threads the modes separate\n"
        "and oversubscription costs wall throughput, less so at 100 ms\n"
        "compute (Fig 11b/12b).")


if __name__ == "__main__":
    main()
