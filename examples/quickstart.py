#!/usr/bin/env python3
"""Quickstart: measure one partitioned-communication configuration.

Runs the paper's Figure-3 procedure for a single parameter point — a 1 MiB
message split over 8 partitions/threads with 10 ms of noisy compute — and
prints all four §3.1 metrics, plus the raw timeline of one iteration so
you can see what the metrics are computed from.

Run:  python examples/quickstart.py
"""

from repro import PtpBenchmarkConfig, run_ptp_benchmark
from repro.core import format_bytes, format_seconds
from repro.noise import UniformNoise


def main() -> None:
    config = PtpBenchmarkConfig(
        message_bytes=1 << 20,        # 1 MiB total message
        partitions=8,                 # one thread per partition
        compute_seconds=0.010,        # 10 ms of work per thread
        noise=UniformNoise(4.0),      # the paper's 4% uniform noise
        iterations=5,
        seed=42,
    )
    print(f"configuration: {config.label()}\n")
    result = run_ptp_benchmark(config)

    print("metrics (pruned means over measured iterations):")
    print(f"  overhead (eq. 1):             "
          f"{result.overhead.mean:6.2f}x  "
          f"(min {result.overhead.minimum:.2f}, "
          f"max {result.overhead.maximum:.2f})")
    print(f"  perceived bandwidth (eq. 2):  "
          f"{result.perceived_bandwidth.mean / 1e9:6.2f} GB/s")
    print(f"  application availability (3): "
          f"{result.application_availability.mean:6.3f}")
    print(f"  early-bird communication (4): "
          f"{result.early_bird_fraction.mean * 100:6.1f}%")

    timeline = result.samples[0].timeline
    print("\nfirst measured iteration, relative to the parallel region:")
    print(f"  message: {format_bytes(timeline.message_bytes)} in "
          f"{timeline.partitions} partitions")
    print(f"  first MPI_Pready:   {format_seconds(timeline.first_pready)}")
    print(f"  last partition in:  {format_seconds(timeline.last_arrival)}")
    print(f"  equivalent join:    {format_seconds(timeline.join_time)}")
    print(f"  single send t_pt2pt:{format_seconds(timeline.pt2pt_time)}")
    print(f"  t_part:             {format_seconds(timeline.t_part)}")


if __name__ == "__main__":
    main()
