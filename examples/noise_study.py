#!/usr/bin/env python3
"""System-noise study: how noise type and amount change the picture.

The paper's §3.3 noise models injected at several intensities, evaluated
through availability and early-bird fraction — the experiment an
application team would run to decide whether their (noisy) production
environment favours partitioned communication.

Run:  python examples/noise_study.py
"""

from repro import PtpBenchmarkConfig, run_ptp_benchmark
from repro.core import ascii_table
from repro.noise import (GaussianNoise, NoNoise, SingleThreadNoise,
                         UniformNoise)

MESSAGE = 1 << 20
PARTITIONS = 16


def measure(noise):
    cfg = PtpBenchmarkConfig(message_bytes=MESSAGE, partitions=PARTITIONS,
                             compute_seconds=0.010, noise=noise,
                             iterations=5, warmup=1, seed=21)
    return run_ptp_benchmark(cfg)


def main() -> None:
    print(f"1 MiB message, {PARTITIONS} partitions, 10 ms compute\n")
    rows = []
    models = [NoNoise()]
    for pct in (1.0, 4.0, 10.0):
        models.extend([SingleThreadNoise(pct), UniformNoise(pct),
                       GaussianNoise(pct)])
    for noise in models:
        result = measure(noise)
        rows.append([
            noise.describe(),
            f"{result.application_availability.mean:.3f}",
            f"{result.early_bird_fraction.mean * 100:.1f}",
            f"{result.perceived_bandwidth.mean / 1e9:.1f}",
        ])
    print(ascii_table(
        ["noise model", "availability", "early-bird %", "perceived GB/s"],
        rows, title="noise sensitivity"))
    print(
        "\nreading: without noise there is nothing for early-bird\n"
        "transfers to exploit; as imbalance grows, partitioned\n"
        "communication hides more and more of the transfer inside the\n"
        "compute window — the paper's core argument for noisy systems.")


if __name__ == "__main__":
    main()
