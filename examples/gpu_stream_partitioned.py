#!/usr/bin/env python3
"""Device-triggered partitioned communication (the paper's §6.1 future work).

The paper closes by noting that upcoming MPI Partitioned proposals invoke
``MPI_Pready`` from accelerator compute kernels or task queues
(``sycl::queue`` / ``cudaStream_t``).  This example prototypes that on the
simulated substrate: each kernel on an in-order device stream computes one
partition and — on completion — fires a lock-free native ``pready``
straight from the device timeline, with no host thread in the loop.

It compares the device-triggered pipeline against the host-threaded
fork-join version of the same transfer.

Run:  python examples/gpu_stream_partitioned.py
"""

from repro.core import format_seconds
from repro.mpi import Cluster
from repro.partitioned import IMPL_NATIVE
from repro.threadsim import DeviceStream

MESSAGE = 8 << 20
PARTITIONS = 8
KERNEL_TIME = 2e-3  # per-partition kernel duration


def device_program(ctx):
    """Sender rank 0 drives a stream; receiver rank 1 just waits."""
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 5, MESSAGE, PARTITIONS,
                                        impl=IMPL_NATIVE)
        yield from ps.start(main)
        stream = DeviceStream(ctx)
        t0 = ctx.sim.now

        def trigger(i):
            def run():
                yield from ps.pready(stream.device_tc, i)
            return run

        for i in range(PARTITIONS):
            yield from stream.launch(main, KERNEL_TIME,
                                     name=f"compute_partition_{i}",
                                     on_complete=trigger(i))
        # The host is free here — overlap anything you like — then sync.
        yield from stream.synchronize(main)
        yield from ps.wait(main)
        return ctx.sim.now - t0
    pr = yield from comm.precv_init(main, 0, 5, MESSAGE, PARTITIONS,
                                    impl=IMPL_NATIVE)
    yield from pr.start(main)
    yield from pr.wait(main)
    return ctx.sim.now


def host_program(ctx):
    """The classic host-side version: fork threads, compute, pready."""
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 5, MESSAGE, PARTITIONS,
                                        impl=IMPL_NATIVE)
        yield from ps.start(main)
        t0 = ctx.sim.now

        def worker(tc):
            yield from tc.compute(KERNEL_TIME)
            yield from ps.pready(tc, tc.thread_id)

        team = yield from ctx.fork(PARTITIONS, worker)
        yield from team.join()
        yield from ps.wait(main)
        return ctx.sim.now - t0
    pr = yield from comm.precv_init(main, 0, 5, MESSAGE, PARTITIONS,
                                    impl=IMPL_NATIVE)
    yield from pr.start(main)
    yield from pr.wait(main)
    return ctx.sim.now


def main() -> None:
    device = Cluster(nranks=2, seed=1).run(device_program)[0]
    host = Cluster(nranks=2, seed=1).run(host_program)[0]
    print(f"{MESSAGE >> 20} MiB in {PARTITIONS} partitions, "
          f"{KERNEL_TIME * 1e3:g} ms per partition kernel\n")
    print(f"  device-triggered (in-order stream): {format_seconds(device)}")
    print(f"  host fork-join (parallel threads):  {format_seconds(host)}")
    print(
        "\nreading: the in-order stream serializes kernels, so its total\n"
        "compute is N x kernel time — but every partition ships the\n"
        "moment its kernel retires, so the transfer pipeline hides the\n"
        "wire time entirely. Host threads compute in parallel (shorter\n"
        "wall clock) but all partitions become ready at once and drain\n"
        "through the NIC after the join. The stream model is what the\n"
        "MPI 4.x device-triggered proposals target.")


if __name__ == "__main__":
    main()
