#!/usr/bin/env python3
"""SNAP porting study: is porting a transport code to partitioned worth it?

Reproduces the paper's §4.8 workflow end-to-end: run the SNAP-like proxy
at several node counts, profile it with the mpiP-style profiler, then
project the application speedup if its MPI send/receive time shrank by
the Sweep3D partitioned factor (15.1x in the paper).

Run:  python examples/snap_porting_study.py
"""

from repro.proxy import (PAPER_COMM_SPEEDUP, SnapConfig, run_snap,
                         snap_projection)


def main() -> None:
    # First, a close look at one scale: the raw mpiP-style report.
    result = run_snap(SnapConfig(nodes=32))
    print("mpiP-style profile of the SNAP proxy at 32 nodes:")
    print(result.report.format())
    print()

    # Then the full Figure-13 series.
    proj = snap_projection(node_counts=(2, 8, 32, 128, 256),
                           comm_speedup=PAPER_COMM_SPEEDUP,
                           base_config=SnapConfig(nodes=2))
    print(proj.format())
    print(
        "\nreading: at small node counts MPI is a sliver of SNAP's\n"
        "runtime, so porting buys little; by 128-256 nodes the sweep's\n"
        "communication dominates and the projected gain approaches 2x —\n"
        "the paper's argument for porting sweep codes at scale.")


if __name__ == "__main__":
    main()
