#!/usr/bin/env python3
"""Sweep3D application study: should a wavefront code adopt partitioned?

Drives the Ember-style Sweep3D motif (the pattern behind SNAP/PARTISN) in
its three communication modes across message sizes, the comparison behind
the paper's Figures 9–10, and reports where partitioned communication pays
off for a transport-sweep application.

Run:  python examples/sweep3d_application.py
"""

from repro.core import format_bytes, series_table
from repro.patterns import (CommMode, PatternConfig, Sweep3DGrid,
                            throughput_series)

GRID = Sweep3DGrid(3, 3)
SIZES = (65536, 1 << 20, 4 << 20, 16 << 20)


def main() -> None:
    print(f"Sweep3D wavefront over a {GRID.px}x{GRID.py} process grid, "
          f"16 threads per rank, 10 ms per block, 4% single-thread noise\n")
    base = PatternConfig(mode=CommMode.SINGLE, threads=16,
                         message_bytes=SIZES[0], compute_seconds=0.010,
                         steps=4, iterations=2, warmup=1, seed=5)
    series = throughput_series("sweep3d", base, SIZES, grid=GRID)
    print(series_table(series, value_label="GB/s", scale=1e-9,
                       title="communication throughput by mode"))

    single = dict(series["single"])
    multi = dict(series["multi"])
    part = dict(series["partitioned"])
    print("\nwhat this means for the application:")
    for m in SIZES:
        gain = part[m] / single[m]
        vs_multi = part[m] / multi[m]
        verdict = ("port to partitioned" if gain > 2 else
                   "marginal — profile first")
        print(f"  {format_bytes(m):>7}: partitioned is {gain:4.1f}x the "
              f"funneled single-send model ({vs_multi:4.1f}x "
              f"thread-multiple) -> {verdict}")


if __name__ == "__main__":
    main()
