#!/usr/bin/env python3
"""Partition-count advisor: the paper's developer guidance, as a tool.

Give the advisor your application's profile — how big the messages are,
how much each thread computes between them, what the noise looks like —
and it measures the candidate partition counts and recommends one,
explaining the trade-offs (§4.2's socket-spillover caveat included).

Run:  python examples/partition_advisor.py
"""

from repro import recommend_partitions
from repro.core import PtpBenchmarkConfig
from repro.noise import SingleThreadNoise, UniformNoise

#: Three application profiles to advise on: (name, bytes, compute, noise).
PROFILES = [
    ("latency-bound halo slice", 32 * 1024, 0.002, UniformNoise(4.0)),
    ("mid-size wavefront block", 1 << 20, 0.010, SingleThreadNoise(4.0)),
    ("bulk checkpoint shard", 16 << 20, 0.100, UniformNoise(4.0)),
]


def main() -> None:
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              iterations=3, seed=1)
    for name, nbytes, compute, noise in PROFILES:
        print("=" * 64)
        print(f"application profile: {name}")
        rec = recommend_partitions(
            message_bytes=nbytes,
            compute_seconds=compute,
            noise=noise,
            candidates=[1, 2, 4, 8, 16, 32],
            objective="balanced",
            base_config=base,
        )
        print(rec.explain())
        print("\nper-candidate detail:")
        for n, result in sorted(rec.results.items()):
            print(f"  n={n:3d}: overhead={result.overhead.mean:7.2f}x  "
                  f"availability={result.application_availability.mean:6.3f}  "
                  f"perceived bw="
                  f"{result.perceived_bandwidth.mean / 1e9:7.2f} GB/s  "
                  f"score={rec.scores[n]:.3f}")
        print()


if __name__ == "__main__":
    main()
