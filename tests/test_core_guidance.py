"""The partition-count advisor."""

import pytest

from repro.core import (OBJECTIVES, PtpBenchmarkConfig, Recommendation,
                        recommend_partitions)
from repro.errors import ConfigurationError
from repro.noise import SingleThreadNoise


@pytest.fixture(scope="module")
def quick_base():
    return PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=2e-3, iterations=2)


class TestRecommendation:
    def test_returns_candidate_with_results(self, quick_base):
        rec = recommend_partitions(
            message_bytes=1 << 20, compute_seconds=2e-3,
            noise=SingleThreadNoise(4.0), candidates=[1, 4, 8],
            base_config=quick_base)
        assert rec.partitions in (1, 4, 8)
        assert set(rec.scores) == {1, 4, 8}
        assert set(rec.results) == {1, 4, 8}
        assert rec.explain()

    def test_best_has_max_score(self, quick_base):
        rec = recommend_partitions(
            message_bytes=1 << 18, compute_seconds=2e-3,
            noise=SingleThreadNoise(4.0), candidates=[2, 8],
            objective="availability", base_config=quick_base)
        assert rec.scores[rec.partitions] == max(rec.scores.values())

    def test_overhead_objective_prefers_fewer_partitions_small_msgs(
            self, quick_base):
        rec = recommend_partitions(
            message_bytes=256, compute_seconds=2e-3,
            noise=SingleThreadNoise(4.0), candidates=[1, 16],
            objective="overhead", base_config=quick_base)
        # Small messages are latency-bound: splitting 16 ways costs ~16x.
        assert rec.partitions == 1

    def test_spillover_warning_in_rationale(self, quick_base):
        rec = recommend_partitions(
            message_bytes=1 << 20, compute_seconds=2e-3,
            noise=SingleThreadNoise(4.0), candidates=[32],
            base_config=quick_base)
        assert any("socket" in line for line in rec.rationale)

    def test_unknown_objective_rejected(self, quick_base):
        with pytest.raises(ConfigurationError):
            recommend_partitions(1024, 1e-3, SingleThreadNoise(4.0),
                                 objective="vibes",
                                 base_config=quick_base)

    def test_infeasible_message_rejected(self, quick_base):
        with pytest.raises(ConfigurationError):
            recommend_partitions(2, 1e-3, SingleThreadNoise(4.0),
                                 candidates=[4, 8],
                                 base_config=quick_base)

    def test_default_candidates_are_powers_of_two(self, quick_base):
        rec = recommend_partitions(
            message_bytes=1 << 16, compute_seconds=1e-3,
            noise=SingleThreadNoise(4.0), base_config=quick_base)
        assert all(n & (n - 1) == 0 for n in rec.scores)
        assert max(rec.scores) <= quick_base.spec.cores_per_node

    def test_objectives_constant(self):
        assert set(OBJECTIVES) == {"availability", "overhead", "balanced"}
