"""Scientific regression tests: the paper's qualitative figure shapes.

Each test asserts a *shape* claim from the evaluation section (§4) — who
wins, which direction trends point, where knees fall.  These run on
reduced grids so the suite stays fast, but the claims they check are
exactly the ones EXPERIMENTS.md records.
"""

import pytest

from repro.core import (COLD, HOT, PtpBenchmarkConfig, run_ptp_benchmark)
from repro.noise import (GaussianNoise, NoNoise, SingleThreadNoise,
                         UniformNoise)
from repro.patterns import (CommMode, Halo3DGrid, PatternConfig,
                            Sweep3DGrid, run_halo3d, run_sweep3d)


def _overhead(m, n, cache=HOT, **kw):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n,
                             compute_seconds=0.002, cache=cache,
                             iterations=3, warmup=1, **kw)
    return run_ptp_benchmark(cfg).overhead.mean


class TestFig4OverheadShapes:
    def test_one_partition_is_near_unity(self):
        """§4.2: 1 partition ranges 1.6x (small) down to ~1x (large)."""
        small = _overhead(64, 1)
        large = _overhead(16 << 20, 1)
        assert 1.0 <= small < 2.0
        assert large == pytest.approx(1.0, abs=0.1)
        assert small > large

    def test_overhead_grows_with_partitions_for_small_messages(self):
        values = [_overhead(256, n) for n in (1, 4, 16)]
        assert values[0] < values[1] < values[2]
        assert values[2] > 5.0  # strongly latency-bound

    def test_large_messages_split_almost_free(self):
        """§4.2: for large messages there is little cost (~1x)."""
        assert _overhead(16 << 20, 16) == pytest.approx(1.0, abs=0.25)

    def test_socket_spillover_spike_at_32_partitions(self):
        """§4.2: a significant jump (tens of x) when threads spill to the
        second socket."""
        at16 = _overhead(256, 16)
        at32 = _overhead(256, 32)
        assert at32 > 2.5 * at16
        assert at32 > 25.0

    def test_spillover_spike_vanishes_without_socket_penalties(self):
        """The ablation: zero the inter-socket lock/injection penalties and
        the 32-partition spike collapses toward a linear trend."""
        from repro.machine import NIAGARA_NODE
        from repro.mpi import DEFAULT_COSTS
        baseline = _overhead(256, 32)
        ablated = _overhead(
            256, 32,
            spec=NIAGARA_NODE.with_overrides(inter_socket_penalty=0.0),
            costs=DEFAULT_COSTS.with_overrides(lock_remote_penalty=0.0))
        assert ablated < baseline / 2

    def test_cold_cache_overhead_not_above_hot(self):
        """§4.2: the DRAM cost amortizes, pulling the ratio down."""
        for m, n in ((4096, 8), (16384, 16)):
            assert _overhead(m, n, cache=COLD) <= \
                _overhead(m, n, cache=HOT) * 1.05


def _pbw(m, n, noise, comp):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n,
                             compute_seconds=comp, noise=noise,
                             iterations=3, warmup=1)
    return run_ptp_benchmark(cfg).perceived_bandwidth.mean


class TestFig5PerceivedBandwidthShapes:
    def test_noise_free_curve_is_monotone_bandwidth_curve(self):
        """§4.3: 0% noise gives a traditional bandwidth curve."""
        values = [_pbw(m, 2, NoNoise(), 0.002)
                  for m in (4096, 1 << 17, 1 << 22)]
        assert values[0] < values[1] < values[2]

    def test_rise_peak_decline_under_noise(self):
        """§4.3: perceived bandwidth peaks then sharply declines."""
        noise = UniformNoise(4.0)
        small = _pbw(1 << 14, 16, noise, 0.010)
        peak = _pbw(1 << 20, 16, noise, 0.010)
        large = _pbw(16 << 20, 16, noise, 0.010)
        assert peak > small
        assert peak > large

    def test_peak_exceeds_physical_link_bandwidth(self):
        """Early-bird transfers push perceived bandwidth past the wire."""
        peak = _pbw(1 << 20, 16, UniformNoise(4.0), 0.010)
        assert peak > 11.0e9  # the simulated link is ~11 GB/s

    def test_more_partitions_raise_the_peak(self):
        noise = UniformNoise(4.0)
        assert _pbw(1 << 20, 16, noise, 0.010) > \
            _pbw(1 << 20, 2, noise, 0.010)

    def test_16_to_32_declines_at_10ms_but_not_100ms(self):
        """§4.3: spillover hurts at 10 ms; 100 ms hides it."""
        noise = UniformNoise(4.0)
        m = 1 << 20
        assert _pbw(m, 32, noise, 0.010) < _pbw(m, 16, noise, 0.010)
        assert _pbw(m, 32, noise, 0.100) >= \
            _pbw(m, 16, noise, 0.100) * 0.95


def _avail(m, n, noise, comp=0.010):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n,
                             compute_seconds=comp, noise=noise,
                             iterations=5, warmup=1)
    return run_ptp_benchmark(cfg).application_availability.mean


class TestFig6And7AvailabilityShapes:
    def test_more_partitions_help_small_messages(self):
        """§4.4: more partitions free more CPU time for small messages."""
        noise = SingleThreadNoise(4.0)
        assert _avail(256, 16, noise) > _avail(256, 2, noise)

    def test_16_beats_32_for_small_messages(self):
        """§4.4: thread spillover makes 16 partitions beat 32."""
        noise = SingleThreadNoise(4.0)
        assert _avail(256, 16, noise) > _avail(256, 32, noise)

    def test_availability_drops_for_huge_messages(self):
        """§4.4: availability falls off past ~4 MB."""
        noise = SingleThreadNoise(4.0)
        assert _avail(16 << 20, 16, noise) < _avail(1 << 20, 16, noise)

    def test_100ms_shifts_dropoff_right(self):
        """§4.4: more compute delays where availability collapses."""
        noise = SingleThreadNoise(4.0)
        m = 16 << 20
        assert _avail(m, 16, noise, comp=0.100) > \
            _avail(m, 16, noise, comp=0.010)

    def test_single_delay_model_gives_best_availability(self):
        """§4.4/Fig 7: the single-delay model lets all other threads run,
        so it upper-bounds the distribution-based models."""
        m, n = 4 << 20, 16
        single = _avail(m, n, SingleThreadNoise(4.0))
        uniform = _avail(m, n, UniformNoise(4.0))
        gaussian = _avail(m, n, GaussianNoise(4.0))
        assert single >= uniform - 0.02
        assert single >= gaussian - 0.02


def _eb(m, n, comp):
    cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n,
                             compute_seconds=comp,
                             noise=UniformNoise(4.0),
                             iterations=5, warmup=1)
    return run_ptp_benchmark(cfg).early_bird_fraction.mean


class TestFig8EarlyBirdShapes:
    def test_small_messages_mostly_early_bird(self):
        """§4.5: small/medium messages transfer before the join."""
        assert _eb(4096, 8, 0.010) > 0.9

    def test_early_bird_declines_for_large_messages_at_10ms(self):
        """§4.5: 10 ms compute is too small a window past ~2 MB."""
        assert _eb(16 << 20, 8, 0.010) < 0.5
        assert _eb(4096, 8, 0.010) > _eb(16 << 20, 8, 0.010)

    def test_100ms_keeps_large_messages_early_bird(self):
        assert _eb(16 << 20, 8, 0.100) > 0.8

    def test_8_vs_32_minimal_difference_at_100ms(self):
        """§4.5: at 100 ms there is minimal difference between 8 and 32."""
        assert abs(_eb(1 << 20, 8, 0.100) - _eb(1 << 20, 32, 0.100)) < 0.1

    def test_two_partitions_still_effective(self):
        """§4.5: even two partitions use early-bird effectively."""
        assert _eb(4096, 2, 0.010) > 0.8


PATTERN_KW = dict(threads=16, compute_seconds=0.010, steps=4, iterations=2,
                  warmup=1)


def _sweep_thpt(mode, m, **overrides):
    kw = dict(PATTERN_KW)
    kw.update(overrides)
    cfg = PatternConfig(mode=mode, message_bytes=m, **kw)
    return run_sweep3d(cfg, Sweep3DGrid(3, 3)).mean_throughput


class TestFig9And10SweepShapes:
    def test_partitioned_dominates_at_large_messages(self):
        """§4.6: the partitioned-vs-single gap grows large (>=5x here,
        15.1x on the paper's hardware)."""
        m = 16 << 20
        part = _sweep_thpt(CommMode.PARTITIONED, m)
        single = _sweep_thpt(CommMode.SINGLE, m)
        assert part > 5 * single

    def test_divergence_grows_with_message_size(self):
        ratios = []
        for m in (1 << 20, 16 << 20):
            ratios.append(_sweep_thpt(CommMode.PARTITIONED, m)
                          / _sweep_thpt(CommMode.SINGLE, m))
        assert ratios[1] > ratios[0]

    def test_multi_threaded_falls_below_single_at_10ms(self):
        """§4.6: at 10 ms compute, MULTIPLE drops below single-threaded."""
        m = 1 << 20
        assert _sweep_thpt(CommMode.MULTI, m) < \
            _sweep_thpt(CommMode.SINGLE, m)

    def test_100ms_lowers_throughput(self):
        """§4.6: larger compute drops communication throughput."""
        m = 4 << 20
        assert _sweep_thpt(CommMode.PARTITIONED, m, compute_seconds=0.100) \
            < _sweep_thpt(CommMode.PARTITIONED, m, compute_seconds=0.010)


class TestFig11And12HaloShapes:
    def _halo(self, mode, threads, m, comp=0.010):
        cfg = PatternConfig(mode=mode, threads=threads, message_bytes=m,
                            compute_seconds=comp, steps=2, iterations=2,
                            warmup=1)
        return run_halo3d(cfg, Halo3DGrid(2, 2, 2))

    def test_four_partitions_modes_are_close(self):
        """§4.7: with 8 threads / 4 partitions per face, all modes are
        hard to distinguish."""
        m = 1 << 20
        values = [self._halo(mode, 8, m).mean_throughput
                  for mode in CommMode]
        assert max(values) < 1.6 * min(values)

    def test_64_threads_multi_close_to_partitioned_at_16mib(self):
        """§4.7: at 64 threads and large messages, multi-threaded
        point-to-point lands close to partitioned (the figure's 16 MiB
        regime); at smaller sizes our contention model separates them
        more than the paper's MPIPCL-on-pt2pt measurement did — a
        documented deviation."""
        m = 16 << 20
        multi = self._halo(CommMode.MULTI, 64, m).mean_throughput
        part = self._halo(CommMode.PARTITIONED, 64, m).mean_throughput
        assert multi < part  # partitioned still ahead...
        assert part < 2.0 * multi  # ...but close, as the paper reports

    def test_oversubscription_costs_wall_throughput(self):
        """§4.7: 64 threads on 40 cores pay an oversubscription penalty in
        whole-iteration (wall) throughput vs the 8-thread run."""
        m = 4 << 20
        wall_8 = self._halo(CommMode.PARTITIONED, 8, m).wall_throughput
        wall_64 = self._halo(CommMode.PARTITIONED, 64, m).wall_throughput
        assert wall_64.mean < wall_8.mean
        # The drop is tens of percent, in the 42.6%-at-10ms regime the
        # paper reports (we accept a broad band).
        drop = 1.0 - wall_64.mean / wall_8.mean
        assert 0.2 < drop < 0.7
