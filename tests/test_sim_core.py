"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import (ConfigurationError, DeadlockError,
                          SimulationError)
from repro.sim import (AllOf, AnyOf, Event, Interrupt, Process,
                       Timeout)


class TestEvent:
    def test_fresh_event_is_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_failed_event_with_no_waiter_raises_at_step(self, sim):
        sim.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_does_not_raise(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()  # no exception

    def test_callbacks_run_at_processing(self, sim):
        seen = []
        ev = sim.event()
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("payload")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["payload"]
        assert ev.processed


class TestTimeout:
    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_zero_delay_fires_now(self, sim):
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0

    def test_timeout_carries_value(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="tick")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["tick"]


class TestProcess:
    def test_processes_resume_in_time_order(self, sim):
        log = []

        def proc(name, delay):
            yield sim.timeout(delay)
            log.append((sim.now, name))

        sim.process(proc("late", 2.0))
        sim.process(proc("early", 1.0))
        sim.run()
        assert log == [(1.0, "early"), (2.0, "late")]

    def test_same_time_ties_break_by_insertion(self, sim):
        log = []

        def proc(name):
            yield sim.timeout(1.0)
            log.append(name)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_exception_propagates_to_waiter(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        def waiter():
            with pytest.raises(RuntimeError, match="inner"):
                yield sim.process(failing())
            return "handled"

        w = sim.process(waiter())
        sim.run()
        assert w.value == "handled"

    def test_unhandled_process_failure_raises_from_run(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(failing())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_yield_non_event_raises_inside_process(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)

    def test_waiting_on_already_processed_event(self, sim):
        ev = sim.event().succeed("early")
        sim.run()
        got = []

        def proc():
            value = yield ev
            got.append((sim.now, value))

        sim.process(proc())
        sim.run()
        assert got == [(0.0, "early")]

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_wakes_process_with_cause(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                log.append((sim.now, exc.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(3.0)
            p.interrupt("wakeup")

        sim.process(interrupter())
        sim.run()
        assert log == [(3.0, "wakeup")]

    def test_interrupt_dead_process_raises(self, sim):
        def quick():
            yield sim.timeout(1.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_everything(self, sim):
        def waiter():
            yield AllOf(sim, [sim.timeout(1.0), sim.timeout(5.0)])
            return sim.now

        p = sim.process(waiter())
        sim.run()
        assert p.value == 5.0

    def test_any_of_fires_on_first(self, sim):
        def waiter():
            yield AnyOf(sim, [sim.timeout(1.0), sim.timeout(5.0)])
            return sim.now

        p = sim.process(waiter())
        sim.run()
        assert p.value == 1.0

    def test_empty_all_of_triggers_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered

    def test_all_of_fails_fast(self, sim):
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("nope"))

        def waiter():
            with pytest.raises(ValueError):
                yield AllOf(sim, [bad, sim.timeout(100.0)])
            return sim.now

        sim.process(failer())
        w = sim.process(waiter())
        sim.run()
        assert w.value == 1.0


class TestRun:
    def test_run_until_stops_mid_simulation(self, sim):
        sim.timeout(10.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_in_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_deadlock_detection(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        sim.process(stuck())
        with pytest.raises(DeadlockError):
            sim.run(until=100.0, detect_deadlock=True)

    def test_deadlock_detection_requires_until(self, sim):
        # With until=None an empty queue is the normal way runs end, so
        # "queue drained" cannot be distinguished from a deadlock; the
        # kernel rejects the combination instead of silently ignoring it.
        with pytest.raises(ConfigurationError):
            sim.run(detect_deadlock=True)

    def test_run_until_complete_returns_value(self, sim):
        def proc():
            yield sim.timeout(2.0)
            return "finished"

        p = sim.process(proc())
        assert sim.run_until_complete(p) == "finished"

    def test_run_until_complete_detects_deadlock(self, sim):
        def stuck():
            yield sim.event()

        p = sim.process(stuck())
        with pytest.raises(DeadlockError):
            sim.run_until_complete(p)

    def test_events_processed_counter(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestNonFiniteDelays:
    def test_timeout_nan_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(float("nan"))

    def test_timeout_inf_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(float("inf"))

    def test_sleep_nan_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.sleep(float("nan"))

    def test_sleep_inf_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.sleep(float("inf"))

    def test_rejected_delay_schedules_nothing(self, sim):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(SimulationError):
                sim.timeout(bad)
        sim.run()
        assert sim.events_processed == 0
        assert sim.now == 0.0


class TestSleepRecycling:
    def test_sleep_event_is_recycled(self, sim):
        seen = []

        def proc():
            for delay in (1.0, 2.0, 3.0):
                ev = sim.sleep(delay)
                seen.append(ev)
                yield ev

        sim.process(proc())
        sim.run()
        # A processed sleep goes back on the free list once its waiter has
        # resumed: the second sleep is requested mid-dispatch (before the
        # first is recycled) and allocates fresh, the third reuses the
        # first.
        assert seen[2] is seen[0]
        assert seen[1] is not seen[0]
        assert sim.now == 6.0

    def test_sleep_zero_goes_through_ring(self, sim):
        order = []

        def a():
            yield sim.sleep(0.0)
            order.append("a")

        def b():
            yield sim.sleep(0.0)
            order.append("b")

        sim.process(a())
        sim.process(b())
        sim.run()
        assert order == ["a", "b"]
        assert sim.now == 0.0

    def test_sleep_matches_timeout_semantics(self, sim):
        times = []

        def proc():
            yield sim.sleep(1.5)
            times.append(sim.now)
            yield sim.timeout(1.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [1.5, 3.0]


class TestInterruptDetach:
    def test_interrupt_on_heavily_subscribed_event(self, sim):
        """Interrupting one of many waiters must not disturb the rest.

        The interrupted process's callback stays in the event's waiter
        list (O(1) detach) and is neutralized by the stale-wakeup guard
        when the event eventually fires.
        """
        gate = sim.event()
        woke, interrupted = [], []

        def waiter(i):
            try:
                yield gate
                woke.append(i)
            except Interrupt:
                interrupted.append(i)
                yield sim.timeout(5.0)

        procs = [sim.process(waiter(i)) for i in range(20)]

        def controller():
            yield sim.timeout(1.0)
            procs[7].interrupt("out")
            gate.succeed()

        sim.process(controller())
        sim.run()
        assert interrupted == [7]
        assert sorted(woke) == [i for i in range(20) if i != 7]

    def test_interrupt_sole_waiter_clears_callback(self, sim):
        gate = sim.event()

        def waiter():
            try:
                yield gate
            except Interrupt:
                yield sim.timeout(1.0)

        p = sim.process(waiter())

        def controller():
            yield sim.timeout(1.0)
            p.interrupt()

        sim.process(controller())
        sim.run()
        # The interrupted process never wakes on the gate: firing it
        # later must find no stale waiter to resume.
        gate.succeed()
        sim.run()
        assert sim.now == 2.0


class TestImmediateRing:
    def test_heap_event_at_now_beats_newer_ring_event(self, sim):
        """A heaped event landing exactly at the current instant still
        dispatches before ring entries created later (older seq wins)."""
        order = []

        def early():
            yield sim.timeout(1.0)
            order.append("heaped")

        def late():
            yield sim.timeout(1.0 - 2 ** -53)  # resumes just before t=1
            ev = sim.event()
            ev.succeed()  # ring entry with a newer seq than the timeout
            yield ev
            order.append("ring")

        sim.process(early())
        sim.process(late())
        sim.run()
        assert sim.now == 1.0

    def test_zero_delay_any_of(self, sim):
        results = []

        def proc():
            first = yield sim.any_of([sim.timeout(0.0, "a"),
                                      sim.event()])
            results.append((sim.now, sorted(first.values())))

        sim.process(proc())
        sim.run()
        assert results == [(0.0, ["a"])]

    def test_zero_delay_all_of(self, sim):
        results = []

        def proc():
            vals = yield sim.all_of([sim.timeout(0.0, "a"),
                                     sim.timeout(0.0, "b")])
            results.append((sim.now, sorted(ev.value for ev in vals)))

        sim.process(proc())
        sim.run()
        assert results == [(0.0, ["a", "b"])]

    def test_zero_delay_interrupt(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt as exc:
                log.append((sim.now, exc.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(0.0)
            p.interrupt("now")

        sim.process(interrupter())
        sim.run()
        assert log == [(0.0, "now")]

    def test_many_same_time_timeouts_preserve_order(self, sim):
        order = []

        def waiter(i):
            yield sim.timeout(1.0)
            order.append(i)

        for i in range(50):
            sim.process(waiter(i))
        sim.run()
        assert order == list(range(50))
