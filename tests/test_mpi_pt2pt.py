"""Integration tests for point-to-point semantics on the simulated runtime."""

import pytest

from repro.errors import DeadlockError, MPIError, TruncationError
from repro.mpi import ANY_SOURCE, ANY_TAG, Cluster, waitall
from repro.network import NIAGARA_EDR


def _run(program, nranks=2, **kwargs):
    cluster = Cluster(nranks=nranks, **kwargs)
    return cluster, cluster.run(program)


class TestBlockingSendRecv:
    def test_eager_payload_delivery(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 7, 64, payload="hi")
            else:
                status = yield from ctx.comm.recv(ctx.main, 0, 7, 64)
                return (status.payload, status.source, status.tag,
                        status.nbytes)

        _, results = _run(program)
        assert results[1] == ("hi", 0, 7, 64)

    def test_rendezvous_payload_delivery(self):
        big = NIAGARA_EDR.eager_threshold * 4

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 3, big, payload="big")
            else:
                status = yield from ctx.comm.recv(ctx.main, 0, 3, big)
                return status.payload

        _, results = _run(program)
        assert results[1] == "big"

    def test_rendezvous_takes_longer_than_eager(self):
        times = {}

        def make_program(nbytes, key):
            def program(ctx):
                if ctx.rank == 0:
                    yield from ctx.comm.send(ctx.main, 1, 1, nbytes)
                else:
                    yield from ctx.comm.recv(ctx.main, 0, 1, nbytes)
                    times[key] = ctx.sim.now
            return program

        _run(make_program(1024, "eager"))
        _run(make_program(1 << 20, "rendezvous"))
        assert times["rendezvous"] > times["eager"]

    def test_larger_messages_take_longer(self):
        def timed(nbytes):
            done = {}

            def program(ctx):
                if ctx.rank == 0:
                    yield from ctx.comm.send(ctx.main, 1, 1, nbytes)
                else:
                    yield from ctx.comm.recv(ctx.main, 0, 1, nbytes)
                    done["t"] = ctx.sim.now

            _run(program)
            return done["t"]

        assert timed(4 << 20) > timed(1 << 20) > timed(1 << 10)


class TestNonBlocking:
    def test_isend_irecv_waitall(self):
        def program(ctx):
            reqs = []
            if ctx.rank == 0:
                for tag in range(4):
                    reqs.append((yield from ctx.comm.isend(
                        ctx.main, 1, tag, 256, payload=tag)))
                yield waitall(ctx.sim, reqs)
                return None
            for tag in range(4):
                reqs.append((yield from ctx.comm.irecv(
                    ctx.main, 0, tag, 256)))
            yield waitall(ctx.sim, reqs)
            return [r.status.payload for r in reqs]

        _, results = _run(program)
        assert results[1] == [0, 1, 2, 3]

    def test_test_polls_without_blocking(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
            else:
                req = yield from ctx.comm.irecv(ctx.main, 0, 1, 64)
                polled_early = req.test()
                yield req.wait()
                return (polled_early, req.test())

        _, results = _run(program)
        early, late = results[1]
        assert late is True

    def test_non_overtaking_same_envelope(self):
        """Messages with equal envelopes arrive in send order (MPI 3.5)."""
        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.comm.send(ctx.main, 1, 9, 64, payload=i)
            else:
                got = []
                for _ in range(5):
                    status = yield from ctx.comm.recv(ctx.main, 0, 9, 64)
                    got.append(status.payload)
                return got

        _, results = _run(program)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_unexpected_message_path(self):
        """Send completes before the receive is posted; matching still works."""
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 4, 128, payload="u")
            else:
                yield ctx.sim.timeout(1e-3)  # let the message land first
                status = yield from ctx.comm.recv(ctx.main, 0, 4, 128)
                return status.payload

        _, results = _run(program)
        assert results[1] == "u"

    def test_unexpected_rendezvous_path(self):
        big = 1 << 20

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 4, big, payload="R")
            else:
                yield ctx.sim.timeout(1e-3)
                status = yield from ctx.comm.recv(ctx.main, 0, 4, big)
                return status.payload

        _, results = _run(program)
        assert results[1] == "R"


class TestWildcards:
    def test_any_source(self):
        def program(ctx):
            if ctx.rank == 2:
                statuses = []
                for _ in range(2):
                    s = yield from ctx.comm.recv(ctx.main, ANY_SOURCE, 5,
                                                 64)
                    statuses.append(s.source)
                return sorted(statuses)
            yield from ctx.comm.send(ctx.main, 2, 5, 64)

        _, results = _run(program, nranks=3)
        assert results[2] == [0, 1]

    def test_any_tag(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 42, 64, payload="t")
            else:
                status = yield from ctx.comm.recv(ctx.main, 0, ANY_TAG, 64)
                return status.tag

        _, results = _run(program)
        assert results[1] == 42


class TestErrors:
    def test_truncation_raises(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 1024)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        with pytest.raises(TruncationError):
            _run(program)

    def test_bad_peer_rank_raises(self):
        def program(ctx):
            yield from ctx.comm.send(ctx.main, 5, 1, 64)

        with pytest.raises(MPIError):
            _run(program)

    def test_unmatched_recv_deadlocks(self):
        def program(ctx):
            if ctx.rank == 1:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        with pytest.raises(DeadlockError) as err:
            _run(program)
        assert "rank1" in str(err.value)

    def test_mismatched_tags_deadlock(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 1 << 20)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 2, 1 << 20)

        with pytest.raises(DeadlockError):
            _run(program)


class TestSendrecvAndIntraNode:
    def test_sendrecv_ring(self):
        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            status = yield from ctx.comm.sendrecv(
                ctx.main, right, 1, 64, left, 1, 64, payload=ctx.rank)
            return status.payload

        _, results = _run(program, nranks=4)
        assert results == [3, 0, 1, 2]

    def test_intra_node_faster_than_inter_node(self):
        from repro.network import Placement
        times = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 4096)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 4096)
                times[ctx.cluster.fabric.placement.nnodes] = ctx.sim.now

        _run(program)  # one rank per node
        _run(program, placement=Placement.block(2, ranks_per_node=2))
        assert times[1] < times[2]


class TestDeterminism:
    def test_identical_runs_produce_identical_times(self):
        def run_once():
            times = {}

            def program(ctx):
                if ctx.rank == 0:
                    for i in range(3):
                        yield from ctx.comm.send(ctx.main, 1, i, 1 << 16)
                else:
                    for i in range(3):
                        yield from ctx.comm.recv(ctx.main, 0, i, 1 << 16)
                    times["end"] = ctx.sim.now

            _run(program, seed=11)
            return times["end"]

        assert run_once() == run_once()
