"""Cluster driver: configuration validation, run semantics, placement."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.machine import NIAGARA_NODE
from repro.mpi import Cluster, DEFAULT_COSTS
from repro.network import NIAGARA_EDR, Placement


class TestConstruction:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nranks=0)

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nranks=1,
                    spec=NIAGARA_NODE.with_overrides(cores_per_socket=0))

    def test_bad_network_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nranks=1,
                    inter_node=NIAGARA_EDR.with_overrides(bandwidth=-1))

    def test_bad_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nranks=1,
                    costs=DEFAULT_COSTS.with_overrides(lock_hold=-1.0))

    def test_placement_size_must_match(self):
        with pytest.raises(ConfigurationError, match="placement"):
            Cluster(nranks=4, placement=Placement.one_per_node(2))

    def test_contexts_expose_rank_identity(self):
        cluster = Cluster(nranks=3)
        assert [c.rank for c in cluster.contexts] == [0, 1, 2]
        assert all(c.size == 3 for c in cluster.contexts)
        assert all(c.comm.comm_id == 0 for c in cluster.contexts)

    def test_main_thread_on_nic_socket(self):
        cluster = Cluster(nranks=1)
        assert not NIAGARA_NODE.is_remote_to_nic(
            cluster.contexts[0].main.core)


class TestRun:
    def test_results_in_rank_order(self):
        def program(ctx):
            yield ctx.sim.timeout(1e-6 * (ctx.size - ctx.rank))
            return ctx.rank * 10

        assert Cluster(nranks=4).run(program) == [0, 10, 20, 30]

    def test_run_on_subset_of_ranks(self):
        def program(ctx):
            yield ctx.sim.timeout(1e-6)
            return ctx.rank

        cluster = Cluster(nranks=4)
        assert cluster.run(program, ranks=[1, 3]) == [1, 3]

    def test_until_cuts_off_and_reports_stuck(self):
        def program(ctx):
            yield ctx.sim.timeout(10.0)

        with pytest.raises(DeadlockError, match="rank0"):
            Cluster(nranks=1).run(program, until=1.0)

    def test_program_exception_propagates(self):
        def program(ctx):
            yield ctx.sim.timeout(1e-6)
            if ctx.rank == 1:
                raise RuntimeError("rank 1 exploded")

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            Cluster(nranks=2).run(program)

    def test_now_advances(self):
        cluster = Cluster(nranks=1)

        def program(ctx):
            yield ctx.sim.timeout(5e-3)

        cluster.run(program)
        assert cluster.now == pytest.approx(5e-3)

    def test_sequential_runs_share_the_clock(self):
        cluster = Cluster(nranks=2)

        def ping(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        cluster.run(ping)
        t1 = cluster.now
        cluster.run(ping)
        assert cluster.now > t1


class TestRankContextHelpers:
    def test_rng_streams_differ_per_rank(self):
        cluster = Cluster(nranks=2)
        a = cluster.contexts[0].rng("x").uniform(size=4)
        b = cluster.contexts[1].rng("x").uniform(size=4)
        assert not (a == b).all()

    def test_elapse(self):
        cluster = Cluster(nranks=1)

        def program(ctx):
            yield from ctx.elapse(2e-3)
            return ctx.sim.now

        assert cluster.run(program) == [pytest.approx(2e-3)]

    def test_invalidate_cache_charges_time(self):
        cluster = Cluster(nranks=1)

        def program(ctx):
            t0 = ctx.sim.now
            yield from ctx.invalidate_cache()
            return ctx.sim.now - t0

        (cost,) = cluster.run(program)
        expected = 2 * NIAGARA_NODE.llc_bytes / NIAGARA_NODE.memory_bandwidth
        assert cost == pytest.approx(expected)

    def test_event_bus_shared_across_ranks(self):
        cluster = Cluster(nranks=2)
        mem = cluster.obs.record("send.complete", "recv.complete")

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        cluster.run(program)
        assert mem.filter("send.complete")
        assert mem.filter("recv.complete")


class TestSeedReproducibility:
    def test_same_seed_bitwise_identical(self):
        def build_and_run(seed):
            from repro.noise import UniformNoise
            cluster = Cluster(nranks=1, seed=seed)

            def program(ctx):
                rng = ctx.rng("noise")
                draws = UniformNoise(10.0).compute_times(rng, 8, 1e-3)
                for d in draws:
                    yield ctx.sim.timeout(float(d))
                return ctx.sim.now

            return cluster.run(program)[0]

        assert build_and_run(5) == build_and_run(5)
        assert build_and_run(5) != build_and_run(6)
