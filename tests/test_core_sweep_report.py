"""Sweeps, report tables, and the per-figure drivers."""

import pytest

from repro.core import (METRIC_NAMES, PtpBenchmarkConfig, SweepResult,
                        ascii_table, fig7_noise_models, format_bytes,
                        format_seconds, metric_table, series_table,
                        sweep_ptp)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def small_sweep():
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=1e-4, iterations=2)
    return sweep_ptp(base, message_sizes=[1024, 65536],
                     partition_counts=[1, 4])


class TestSweep:
    def test_grid_coverage(self, small_sweep):
        assert small_sweep.message_sizes == [1024, 65536]
        assert small_sweep.partition_counts == [1, 4]
        assert len(small_sweep.points) == 4

    def test_series_layout(self, small_sweep):
        series = small_sweep.series("overhead")
        assert set(series) == {1, 4}
        assert [m for m, _ in series[1]] == [1024, 65536]

    def test_value_lookup(self, small_sweep):
        v = small_sweep.value("overhead", 1024, 4)
        assert v > 0

    def test_missing_point_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.point(123, 1)

    def test_unknown_metric_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.series("latency")

    def test_infeasible_cells_skipped(self):
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                                  compute_seconds=1e-4, iterations=1)
        sweep = sweep_ptp(base, message_sizes=[2, 1024],
                          partition_counts=[4])
        assert len(sweep.points) == 1  # 2-byte message can't be split in 4

    def test_empty_grid_rejected(self):
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1)
        with pytest.raises(ConfigurationError):
            sweep_ptp(base, [], [1])

    def test_progress_callback_called(self):
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                                  compute_seconds=1e-4, iterations=1)
        seen = []
        sweep_ptp(base, [1024], [1, 2], progress=seen.append)
        assert len(seen) == 2


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(64) == "64B"
        assert format_bytes(4096) == "4KiB"
        assert format_bytes(16 * 1024 * 1024) == "16MiB"
        assert format_bytes(1536) == "1.5KiB"
        with pytest.raises(ConfigurationError):
            format_bytes(-1)

    def test_format_seconds(self):
        assert format_seconds(1.5e-6) == "1.50us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(1.25) == "1.250s"
        with pytest.raises(ConfigurationError):
            format_seconds(-1.0)

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bbb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # fixed width

    def test_ascii_table_validates(self):
        with pytest.raises(ConfigurationError):
            ascii_table([], [])
        with pytest.raises(ConfigurationError):
            ascii_table(["a"], [["1", "2"]])

    def test_metric_table_contains_all_cells(self, small_sweep):
        text = metric_table(small_sweep, "overhead")
        assert "1KiB" in text and "64KiB" in text
        assert text.count("\n") >= 3

    def test_metric_table_unknown_metric(self, small_sweep):
        with pytest.raises(ConfigurationError):
            metric_table(small_sweep, "nope")

    def test_series_table(self):
        text = series_table(
            {"partitioned": [(1024, 5e9)], "single": [(1024, 1e9)]},
            value_label="GB/s", scale=1e-9)
        assert "partitioned" in text and "single" in text
        assert "5.00" in text and "1.00" in text

    def test_series_table_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_table({}, "x")


class TestFigureDrivers:
    def test_fig7_structure(self):
        panels = fig7_noise_models(
            quick=True, sizes=[4096], partitions=4)
        assert set(panels) == {0.010, 0.100}
        for comp, by_model in panels.items():
            assert set(by_model) == {"single", "uniform", "gaussian"}
            for sweep in by_model.values():
                assert isinstance(sweep, SweepResult)
                assert sweep.partition_counts == [4]

    def test_metric_names_cover_the_four_paper_metrics(self):
        assert set(METRIC_NAMES) == {
            "overhead", "perceived_bandwidth",
            "application_availability", "early_bird_fraction"}
