"""Threading-mode semantics: FUNNELED/SERIALIZED checks, MULTIPLE locking."""

import pytest

from repro.errors import ThreadingModeError
from repro.mpi import Cluster, ThreadingMode


def _run(program, mode, nranks=2, **kwargs):
    cluster = Cluster(nranks=nranks, mode=mode, **kwargs)
    return cluster, cluster.run(program)


class TestFunneled:
    def test_main_thread_calls_allowed(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)
            return "ok"

        _, results = _run(program, ThreadingMode.FUNNELED)
        assert results == ["ok", "ok"]

    def test_worker_thread_call_raises(self):
        def program(ctx):
            if ctx.rank == 0:
                def worker(tc):
                    yield from ctx.comm.send(tc, 1, 1, 64)

                team = yield from ctx.fork(2, worker)
                yield from team.join()
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        with pytest.raises(ThreadingModeError, match="FUNNELED"):
            _run(program, ThreadingMode.FUNNELED)


class TestSerialized:
    def test_sequential_thread_calls_allowed(self):
        def program(ctx):
            if ctx.rank == 0:
                def worker(tc):
                    # Stagger so the calls never overlap.
                    yield ctx.sim.timeout(tc.thread_id * 1e-3)
                    yield from ctx.comm.send(tc, 1, tc.thread_id, 64)

                team = yield from ctx.fork(2, worker)
                yield from team.join()
            else:
                for tag in range(2):
                    yield from ctx.comm.recv(ctx.main, 0, tag, 64)
            return "ok"

        _, results = _run(program, ThreadingMode.SERIALIZED)
        assert results == ["ok", "ok"]

    def test_concurrent_calls_raise(self):
        def program(ctx):
            if ctx.rank == 0:
                def worker(tc):
                    yield from ctx.comm.send(tc, 1, tc.thread_id, 1 << 20)

                team = yield from ctx.fork(2, worker)
                yield from team.join()
            else:
                for tag in range(2):
                    yield from ctx.comm.recv(ctx.main, 0, tag, 1 << 20)

        with pytest.raises(ThreadingModeError, match="concurrent"):
            _run(program, ThreadingMode.SERIALIZED)


class TestMultiple:
    def test_concurrent_calls_serialize_on_library_lock(self):
        def program(ctx):
            if ctx.rank == 0:
                def worker(tc):
                    yield from ctx.comm.send(tc, 1, tc.thread_id, 64)

                team = yield from ctx.fork(4, worker)
                yield from team.join()
            else:
                for tag in range(4):
                    yield from ctx.comm.recv(ctx.main, 0, tag, 64)

        cluster, _ = _run(program, ThreadingMode.MULTIPLE)
        stats = cluster.procs[0].lock.stats
        assert stats.acquisitions >= 4
        assert stats.contended_acquisitions >= 1
        assert stats.total_wait_time > 0

    def test_lock_uncontended_for_single_thread(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
            else:
                yield from ctx.comm.recv(ctx.main, 0, 1, 64)

        cluster, _ = _run(program, ThreadingMode.MULTIPLE)
        assert cluster.procs[0].lock.stats.contended_acquisitions == 0

    def test_spillover_thread_pays_remote_lock_penalty(self):
        """A thread bound past socket 0 holds the lock longer, so an
        identical two-thread send pair takes longer when one spills."""
        def make_program(nthreads):
            done = {}

            def program(ctx):
                if ctx.rank == 0:
                    def worker(tc):
                        yield from ctx.comm.send(tc, 1, tc.thread_id, 64)

                    team = yield from ctx.fork(nthreads, worker)
                    yield from team.join()
                    done["t"] = ctx.sim.now
                else:
                    for tag in range(nthreads):
                        yield from ctx.comm.recv(ctx.main, 0, tag, 64)

            return program, done

        prog20, t20 = make_program(20)
        _run(prog20, ThreadingMode.MULTIPLE)
        prog24, t24 = make_program(24)
        _run(prog24, ThreadingMode.MULTIPLE)
        # 4 extra sends, each costing at least the remote penalty more
        # than a proportional scaling would.
        per_thread_20 = t20["t"] / 20
        assert t24["t"] > per_thread_20 * 24
