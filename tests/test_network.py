"""Unit tests for the network model: params, fabric, NIC serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.network import (Fabric, INTRA_NODE, NIAGARA_EDR, NIC,
                           NetworkParams, Placement, Transmission,
                           validate_params)


class TestNetworkParams:
    def test_wire_time_includes_headers(self):
        p = NetworkParams(bandwidth=1e9, mtu=1000, header_bytes=100)
        # 2500 bytes -> 3 packets -> 300 header bytes on the wire
        assert p.wire_time(2500) == pytest.approx((2500 + 300) / 1e9)

    def test_wire_time_clamps_tiny_messages(self):
        p = NIAGARA_EDR
        assert p.wire_time(0) == p.wire_time(p.min_message_bytes)

    def test_wire_time_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            NIAGARA_EDR.wire_time(-1)

    def test_path_latency_adds_hops(self):
        p = NIAGARA_EDR
        assert p.path_latency(2) == pytest.approx(
            p.latency + 2 * p.switch_hop_latency)

    def test_eager_threshold(self):
        p = NIAGARA_EDR
        assert p.is_eager(p.eager_threshold)
        assert not p.is_eager(p.eager_threshold + 1)

    def test_validate_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            validate_params(NIAGARA_EDR.with_overrides(bandwidth=0))
        with pytest.raises(ConfigurationError):
            validate_params(NIAGARA_EDR.with_overrides(mtu=0))
        with pytest.raises(ConfigurationError):
            validate_params(NIAGARA_EDR.with_overrides(latency=-1))

    def test_with_overrides(self):
        alt = NIAGARA_EDR.with_overrides(eager_threshold=0)
        assert not alt.is_eager(1)
        assert NIAGARA_EDR.is_eager(1)

    def test_invalid_params_rejected_at_construction(self):
        # Validation runs in __post_init__, so a bad override can never
        # produce a live (but nonsensical) params object.
        with pytest.raises(ConfigurationError):
            NIAGARA_EDR.with_overrides(bandwidth=0)
        with pytest.raises(ConfigurationError):
            NetworkParams(bandwidth=1e9, mtu=0)
        with pytest.raises(ConfigurationError):
            NetworkParams(bandwidth=1e9, latency=-1)


class TestPlacement:
    def test_one_per_node(self):
        p = Placement.one_per_node(4)
        assert p.nodes_of_rank == (0, 1, 2, 3)
        assert p.nnodes == 4

    def test_block_placement(self):
        p = Placement.block(4, ranks_per_node=2)
        assert p.nodes_of_rank == (0, 0, 1, 1)
        assert p.colocated(0, 1)
        assert not p.colocated(1, 2)

    def test_round_robin(self):
        p = Placement.round_robin(5, nnodes=2)
        assert p.nodes_of_rank == (0, 1, 0, 1, 0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            Placement.block(0, 1)
        with pytest.raises(ConfigurationError):
            Placement.round_robin(4, 0)


class TestFabric:
    def test_inter_node_path(self):
        fabric = Fabric(Placement.one_per_node(2))
        assert fabric.params_between(0, 1) is NIAGARA_EDR
        assert fabric.hops_between(0, 1) == 1

    def test_intra_node_path(self):
        fabric = Fabric(Placement.block(2, ranks_per_node=2))
        assert fabric.params_between(0, 1) is INTRA_NODE
        assert fabric.hops_between(0, 1) == 0

    def test_delivery_latency_orders(self):
        inter = Fabric(Placement.one_per_node(2)).delivery_latency(0, 1)
        intra = Fabric(Placement.block(2, 2)).delivery_latency(0, 1)
        assert intra < inter


class TestNIC:
    def _tx(self, dst, nbytes, wire, latency, payload):
        return Transmission(dst_rank=dst, nbytes=nbytes, wire_time=wire,
                            latency=latency, payload=payload, gap=0.0)

    def test_single_delivery(self, sim):
        delivered = []
        nic = NIC(sim, 0, lambda dst, p: delivered.append((sim.now, dst, p)))
        nic.enqueue(self._tx(1, 100, wire=2.0, latency=1.0, payload="m"))
        sim.run()
        assert delivered == [(3.0, 1, "m")]
        assert nic.stats.messages == 1
        assert nic.stats.bytes == 100

    def test_serialization_of_back_to_back_messages(self, sim):
        delivered = []
        nic = NIC(sim, 0, lambda dst, p: delivered.append(sim.now))
        for _ in range(3):
            nic.enqueue(self._tx(1, 10, wire=1.0, latency=0.5, payload="x"))
        sim.run()
        # injections at 1, 2, 3; deliveries 0.5 later
        assert delivered == [1.5, 2.5, 3.5]

    def test_injection_gap_is_charged(self, sim):
        delivered = []
        nic = NIC(sim, 0, lambda dst, p: delivered.append(sim.now))
        tx = self._tx(1, 10, wire=1.0, latency=0.0, payload="x")
        tx.gap = 0.5
        nic.enqueue(tx)
        sim.run()
        assert delivered == [1.5]

    def test_injected_event_fires_before_delivery(self, sim):
        injected = []
        nic = NIC(sim, 0, lambda dst, p: None)
        tx = nic.enqueue(self._tx(1, 10, wire=1.0, latency=5.0, payload="x"))
        tx.injected.callbacks.append(lambda ev: injected.append(ev.value))
        sim.run()
        assert injected == [1.0]

    def test_busy_time_accounting(self, sim):
        nic = NIC(sim, 0, lambda dst, p: None)
        nic.enqueue(self._tx(1, 10, wire=2.0, latency=0.0, payload="x"))
        nic.enqueue(self._tx(1, 10, wire=3.0, latency=0.0, payload="y"))
        sim.run()
        assert nic.stats.busy_time == pytest.approx(5.0)
        assert nic.stats.max_queue >= 1
