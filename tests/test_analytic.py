"""The analytic fast path: closed-form evaluator, prune planner,
adaptive trial planner, and the engine dispatch that ties them together.

The cross-validation tests are the contract behind ``ANALYTIC_RTOL``:
every analytic-eligible cell of the paper grid (plus the eager/rendezvous
boundary, the native implementation, cold caches, and multi-partition
threads) must match the DES to round-off.  CI runs this file as its own
step so a model/simulator divergence fails loudly with the drift table.
"""

import math

import pytest

from repro.analytic import (ANALYTIC_RTOL, PrunePlan, analytic_supported,
                            evaluate_analytic, evaluate_timeline, plan_prune)
from repro.core import (COLD, PAPER_MESSAGE_SIZES, PAPER_PARTITION_COUNTS,
                        PtpBenchmarkConfig, ResultCache, gate_sweeps,
                        plan_cells, run_cells, run_ptp_benchmark, sweep_ptp)
from repro.core.runner import EXECUTIONS
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.machine import MachineSpec
from repro.metrics import (AdaptiveTrialPlanner, DEFAULT_PLANNER_METRICS,
                           ci_halfwidth)
from repro.mpi import ThreadingMode
from repro.noise import UniformNoise
from repro.partitioned import IMPL_NATIVE


def _cfg(**overrides):
    defaults = dict(message_bytes=1 << 16, partitions=4,
                    compute_seconds=5e-4, iterations=2, warmup=1)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


def _assert_timeline_matches(config):
    """Analytic timeline == DES timeline, field by field, to round-off."""
    des = run_ptp_benchmark(config).samples[-1].timeline
    ana = evaluate_timeline(config)

    def close(a, b):
        return math.isclose(a, b, rel_tol=ANALYTIC_RTOL, abs_tol=1e-15)

    assert close(ana.join_time, des.join_time), config
    assert close(ana.pt2pt_time, des.pt2pt_time), config
    for got, want in zip(ana.pready_times, des.pready_times):
        assert close(got, want), config
    for got, want in zip(ana.arrival_times, des.arrival_times):
        assert close(got, want), config


# ---------------------------------------------------------------------------
# Cross-validation against the DES
# ---------------------------------------------------------------------------

class TestCrossValidation:
    def test_full_paper_grid(self):
        """Every analytic-eligible cell of Figures 4-6's grid matches."""
        cells = [
            _cfg(message_bytes=m, partitions=n)
            for n in PAPER_PARTITION_COUNTS
            for m in PAPER_MESSAGE_SIZES
            if m >= n
        ]
        plan = plan_prune(cells)
        # Under the Niagara calibration only eager partitions (<= 16 KiB)
        # are timed copies, so the whole grid's hot working sets fit the
        # LLC and every cell is analytic-eligible.
        assert not plan.des_cells
        assert len(plan.analytic_cells) == len(cells)
        for config in plan.analytic_cells:
            _assert_timeline_matches(config)

    @pytest.mark.parametrize("message_bytes", [65536, 65537, 65539, 65540])
    def test_eager_threshold_partition_boundary(self, message_bytes):
        """Partition sizes straddling the 16 KiB eager threshold exactly.

        With 4 partitions, 65536 B splits into 4 x 16384 (every partition
        eager, inclusive boundary), 65537-65539 mix 16385-byte rendezvous
        partitions with eager ones, and 65540 is all-rendezvous.
        """
        _assert_timeline_matches(_cfg(message_bytes=message_bytes))

    @pytest.mark.parametrize("message_bytes", [16384, 16388])
    def test_eager_threshold_message_boundary(self, message_bytes):
        """The single-send phase's own eager/rendezvous switch."""
        _assert_timeline_matches(
            _cfg(message_bytes=message_bytes, partitions=1))

    def test_native_implementation(self):
        _assert_timeline_matches(_cfg(impl=IMPL_NATIVE))
        _assert_timeline_matches(
            _cfg(impl=IMPL_NATIVE, message_bytes=1 << 22, partitions=32))

    def test_cold_cache(self):
        _assert_timeline_matches(_cfg(cache=COLD, warmup=0))

    def test_partitions_per_thread(self):
        _assert_timeline_matches(
            _cfg(partitions=8, partitions_per_thread=4))

    def test_oversubscribed_threads(self):
        spec_cores = _cfg().spec.cores_per_node
        _assert_timeline_matches(
            _cfg(message_bytes=1 << 17, partitions=2 * spec_cores))

    def test_gate_sweeps_on_metrics(self):
        """The CI gate: analytic sweep vs DES sweep via ``gate_sweeps``."""
        base = _cfg()
        sizes = [1024, 65536, 1 << 20]
        counts = [1, 4]
        des = sweep_ptp(base, sizes, counts, analytic="off")
        ana = sweep_ptp(base, sizes, counts, analytic="only")
        for metric in DEFAULT_PLANNER_METRICS:
            gate_sweeps(des, ana, metric, tolerance=ANALYTIC_RTOL,
                        mode="relative")
        # The early-bird fraction is a ratio of counts; the two engines
        # must agree on the counts themselves.
        for point in des.points:
            twin = ana.point(point.config.message_bytes,
                             point.config.partitions)
            a = point.result.samples[-1].metrics.early_bird_fraction
            b = twin.result.samples[-1].metrics.early_bird_fraction
            assert a == pytest.approx(b, abs=1e-9)


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------

class TestEligibility:
    def test_clean_cell_is_eligible(self):
        assert analytic_supported(_cfg()) is None

    def test_noise_disqualifies(self):
        reason = analytic_supported(_cfg(noise=UniformNoise(4.0)))
        assert reason is not None and "noise" in reason

    def test_zero_percent_noise_is_deterministic(self):
        assert analytic_supported(_cfg(noise=UniformNoise(0.0))) is None

    def test_faults_disqualify(self):
        reason = analytic_supported(
            _cfg(faults=FaultPlan(drop_probability=0.1)))
        assert reason is not None and "fault" in reason

    def test_non_multiple_threading_disqualifies(self):
        reason = analytic_supported(
            _cfg(partitions=1, mode=ThreadingMode.FUNNELED))
        assert reason is not None and "MULTIPLE" in reason

    def test_hot_cache_needs_warmup(self):
        reason = analytic_supported(_cfg(warmup=0))
        assert reason is not None and "warmup" in reason

    def test_cold_cache_needs_no_warmup(self):
        assert analytic_supported(_cfg(cache=COLD, warmup=0)) is None

    def test_llc_overflow_disqualifies_hot(self):
        # Shrink the LLC until the four 16 KiB eager bounce copies of a
        # 64 KiB message no longer fit together: eviction order starts
        # deciding hit/miss, so the closed form refuses the cell.
        small = MachineSpec(llc_bytes=32 * 1024)
        reason = analytic_supported(_cfg(spec=small))
        assert reason is not None and "LLC" in reason
        # Cold caches miss every copy by construction, so the footprint
        # rule does not apply.
        assert analytic_supported(
            _cfg(spec=small, cache=COLD, warmup=0)) is None

    def test_evaluate_analytic_rejects_ineligible(self):
        with pytest.raises(ConfigurationError, match="not analytic-eligible"):
            evaluate_analytic(_cfg(noise=UniformNoise(4.0)))

    def test_analytic_result_shape(self):
        result = evaluate_analytic(_cfg(iterations=3))
        assert result.source == "analytic"
        assert result.trials == 0
        assert result.event_digest is None
        assert len(result.samples) == 3
        assert [s.iteration for s in result.samples] == [0, 1, 2]
        # One frozen timeline shared across iterations, not recomputed.
        assert result.samples[0].timeline is result.samples[1].timeline


# ---------------------------------------------------------------------------
# The prune planner
# ---------------------------------------------------------------------------

class TestPrunePlan:
    def test_mixed_grid_split(self):
        cells = [_cfg(), _cfg(noise=UniformNoise(4.0)),
                 _cfg(faults=FaultPlan(drop_probability=0.1))]
        plan = plan_prune(cells)
        assert isinstance(plan, PrunePlan)
        assert len(plan.analytic_cells) == 1
        assert len(plan.des_cells) == 2
        assert plan.decisions[0].analytic
        assert not plan.decisions[1].analytic

    def test_describe_lists_reasons(self):
        plan = plan_prune([_cfg(), _cfg(noise=UniformNoise(4.0))])
        line = plan.describe()
        assert "1 analytic" in line and "1 simulated" in line
        assert "noise" in line


# ---------------------------------------------------------------------------
# Engine dispatch
# ---------------------------------------------------------------------------

class TestDispatch:
    SIZES = [1024, 65536]
    COUNTS = [1, 4]

    def test_auto_answers_without_a_simulator(self):
        cells = plan_cells(_cfg(), self.SIZES, self.COUNTS)
        EXECUTIONS.reset()
        results, stats = run_cells(cells, jobs=1, analytic="auto")
        assert EXECUTIONS.value == 0
        assert stats.analytic == 4
        assert stats.executed == 0
        assert all(r.source == "analytic" for r in results)
        assert "4 analytic" in stats.describe()

    def test_auto_falls_back_to_des_for_noisy_cells(self):
        base = _cfg(noise=UniformNoise(4.0))
        cells = plan_cells(base, self.SIZES, self.COUNTS)
        EXECUTIONS.reset()
        results, stats = run_cells(cells, jobs=1, analytic="auto")
        assert EXECUTIONS.value == 4
        assert stats.analytic == 0
        assert all(r.source == "des" for r in results)

    def test_only_raises_on_ineligible(self):
        cells = plan_cells(_cfg(noise=UniformNoise(4.0)),
                           self.SIZES, self.COUNTS)
        with pytest.raises(ConfigurationError, match="noise"):
            run_cells(cells, jobs=1, analytic="only")

    def test_invalid_mode_rejected(self):
        cells = plan_cells(_cfg(), self.SIZES, self.COUNTS)
        with pytest.raises(ConfigurationError):
            run_cells(cells, jobs=1, analytic="everything")

    def test_analytic_results_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = plan_cells(_cfg(), self.SIZES, self.COUNTS)
        _, stats = run_cells(cells, jobs=1, cache=cache, analytic="auto")
        assert stats.analytic == 4
        # Closed-form answers cost microseconds; caching them would just
        # spend disk and risk staleness if the model is retuned.
        assert len(cache) == 0

    def test_analytic_matches_des_sweep(self):
        """``analytic="auto"`` changes the engine, never the answers."""
        base = _cfg()
        des = sweep_ptp(base, self.SIZES, self.COUNTS, analytic="off")
        ana = sweep_ptp(base, self.SIZES, self.COUNTS, analytic="auto")
        gate_sweeps(des, ana, "overhead", tolerance=ANALYTIC_RTOL)


# ---------------------------------------------------------------------------
# ci_halfwidth
# ---------------------------------------------------------------------------

class TestCiHalfwidth:
    def test_fewer_than_two_samples_is_unbounded(self):
        assert ci_halfwidth([]) == float("inf")
        assert ci_halfwidth([1.0]) == float("inf")

    def test_constant_samples_have_zero_width(self):
        assert ci_halfwidth([2.0, 2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # std([1, 3], ddof=1) = sqrt(2); hw = z * sqrt(2) / sqrt(2) = z.
        assert ci_halfwidth([1.0, 3.0], confidence_z=1.96,
                            trim_fraction=0.0) == pytest.approx(1.96)

    def test_width_shrinks_with_samples(self):
        narrow = ci_halfwidth([1.0, 1.1] * 20)
        wide = ci_halfwidth([1.0, 1.1, 1.05, 0.95])
        assert narrow < wide

    def test_invalid_z_rejected(self):
        with pytest.raises(ConfigurationError):
            ci_halfwidth([1.0, 2.0], confidence_z=0.0)


# ---------------------------------------------------------------------------
# The adaptive trial planner
# ---------------------------------------------------------------------------

class TestAdaptivePlanner:
    def _noisy(self, **overrides):
        defaults = dict(message_bytes=1024, partitions=2,
                        compute_seconds=1e-4, iterations=2, warmup=0,
                        noise=UniformNoise(8.0), seed=11)
        defaults.update(overrides)
        return PtpBenchmarkConfig(**defaults)

    def test_deterministic_cell_short_circuits(self):
        planner = AdaptiveTrialPlanner()
        EXECUTIONS.reset()
        result = planner.run_cell(_cfg())
        assert EXECUTIONS.value == 1
        assert result.trials == 1

    def test_bounds_respected(self):
        # An impossibly tight target pins the count at max_trials; a
        # loose one stops at min_trials.
        tight = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                     max_trials=4, batch=1)
        # Availability can straddle zero, where a relative target never
        # converges; judge the loose planner on overhead alone.
        loose = AdaptiveTrialPlanner(ci_target=100.0, min_trials=2,
                                     max_trials=4, batch=1,
                                     metrics=("overhead",))
        assert tight.run_cell(self._noisy()).trials == 4
        assert loose.run_cell(self._noisy()).trials == 2

    def test_deterministic_replay(self):
        """Same configuration => same trial count, samples, and digest."""
        planner = AdaptiveTrialPlanner(min_trials=2, max_trials=5)
        a = planner.run_cell(self._noisy())
        b = planner.run_cell(self._noisy())
        assert a.trials == b.trials
        assert a.event_digest is not None
        assert a.event_digest == b.event_digest
        assert [s.timeline for s in a.samples] == \
            [s.timeline for s in b.samples]

    def test_merged_result_renumbers_iterations(self):
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        result = planner.run_cell(self._noisy())
        assert result.trials == 3
        assert len(result.samples) == 3 * 2  # trials x iterations
        assert [s.iteration for s in result.samples] == list(range(6))

    def test_trials_decorrelated(self):
        """Trial reseeding must actually change the noise stream."""
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=2)
        result = planner.run_cell(self._noisy())
        t0, t1 = result.samples[1].timeline, result.samples[3].timeline
        assert t0.join_time != t1.join_time

    def test_cache_salt_distinguishes_settings(self):
        salts = {AdaptiveTrialPlanner().cache_salt(),
                 AdaptiveTrialPlanner(ci_target=0.01).cache_salt(),
                 AdaptiveTrialPlanner(max_trials=30).cache_salt(),
                 AdaptiveTrialPlanner(metrics=("overhead",)).cache_salt()}
        assert len(salts) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTrialPlanner(ci_target=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTrialPlanner(min_trials=0)
        with pytest.raises(ConfigurationError):
            AdaptiveTrialPlanner(min_trials=5, max_trials=4)
        with pytest.raises(ConfigurationError):
            AdaptiveTrialPlanner(batch=0)
        with pytest.raises(ConfigurationError):
            AdaptiveTrialPlanner(metrics=())

    def test_planner_results_cacheable_and_salted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        planner = AdaptiveTrialPlanner(min_trials=2, max_trials=3)
        base = self._noisy()
        cells = plan_cells(base, [1024], [2])
        first, stats1 = run_cells(cells, jobs=1, cache=cache,
                                  planner=planner)
        assert stats1.executed == 1
        assert stats1.trials == first[0].trials >= 2
        second, stats2 = run_cells(cells, jobs=1, cache=cache,
                                   planner=planner)
        assert stats2.cache_hits == 1
        assert second[0].event_digest == first[0].event_digest
        assert second[0].trials == first[0].trials
        # An unplanned run of the same cell must not alias the planner
        # entry (different trial counts, different samples).
        plain, stats3 = run_cells(cells, jobs=1, cache=cache)
        assert stats3.cache_hits == 0
        assert plain[0].trials == 1
