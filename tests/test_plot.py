"""ASCII plot rendering."""

import pytest

from repro.core import ascii_plot
from repro.errors import ConfigurationError


SERIES = {
    "a": [(64, 1.0), (1024, 5.0), (65536, 20.0)],
    "b": [(64, 2.0), (1024, 8.0), (65536, 3.0)],
}


class TestAsciiPlot:
    def test_contains_glyphs_and_legend(self):
        text = ascii_plot(SERIES, title="demo")
        assert text.startswith("demo")
        assert "*" in text and "o" in text
        assert "legend: *=a  o=b" in text

    def test_axis_labels(self):
        text = ascii_plot(SERIES, ylabel="GB/s")
        assert "GB/s" in text
        assert "64B" in text and "64KiB" in text  # log-x byte labels
        assert "20" in text  # y max
        assert "1" in text   # y min

    def test_dimensions(self):
        text = ascii_plot(SERIES, width=40, height=10)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 10
        assert all(len(l.split("|", 1)[1]) == 40 for l in plot_rows)

    def test_extremes_hit_the_border_rows(self):
        text = ascii_plot({"a": [(1, 0.0), (10, 10.0)]}, logx=False,
                          height=8)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        assert "*" in rows[0]      # max value on top row
        assert "*" in rows[-1]     # min value on bottom row

    def test_log_y(self):
        text = ascii_plot({"a": [(1, 1.0), (2, 1000.0)]}, logx=False,
                          logy=True)
        assert "1e+03" in text or "1000" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_plot({"a": [(1, 5.0), (100, 5.0)]})
        assert "*" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": []})
        with pytest.raises(ConfigurationError):
            ascii_plot(SERIES, width=4)
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": [(0, 1.0)]}, logx=True)  # log of zero
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": [(1, -1.0)]}, logy=True)

    def test_many_series_cycle_glyphs(self):
        series = {f"s{i}": [(1, float(i)), (2, float(i + 1))]
                  for i in range(10)}
        text = ascii_plot(series, logx=False)
        assert "legend" in text
