"""The flow-sensitive protocol verifier (simcheck): SIM110–SIM115.

Covers the CFG/abstract-interpretation pass end to end: one violating and
one clean fixture per rule (including the early-bird loop split that must
stay clean), fixpoint termination on a pathological nested-loop CFG,
per-rule suppression comments, finding ordering/dedup, the SARIF 2.1.0
exporter, and the baseline write/compare round trip.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_source
from repro.analysis.findings import (BASELINE_VERSION, Finding,
                                     finding_fingerprint, load_baseline,
                                     new_findings, sort_findings, to_sarif,
                                     write_baseline)
from repro.analysis.lint import UNKNOWN_SUPPRESSION_RULE
from repro.analysis.protocol import FLOW_RULE_IDS
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: flow fixture -> (the one rule it must trigger, its severity).
FLOW_CASES = [
    ("flow_sim110.py", "SIM110", "error"),
    ("flow_sim111.py", "SIM111", "warning"),
    ("flow_sim112.py", "SIM112", "error"),
    ("flow_sim113.py", "SIM113", "error"),
    ("flow_sim114.py", "SIM114", "warning"),
    ("flow_sim115.py", "SIM115", "error"),
]

CLEAN_FIXTURES = [f"flow_sim{n}_clean.py" for n in range(110, 116)]


class TestFlowFixtures:
    @pytest.mark.parametrize("fixture,rule,severity", FLOW_CASES)
    def test_rule_fires_exactly_once(self, fixture, rule, severity):
        findings = lint_file(FIXTURES / fixture)
        assert [(f.rule, f.severity) for f in findings] == [(rule, severity)]

    @pytest.mark.parametrize("fixture,rule,severity", FLOW_CASES)
    def test_rule_is_load_bearing(self, fixture, rule, severity):
        # Disabling the rule silences its fixture entirely: the finding
        # really comes from that rule, not from a sibling pass.
        assert lint_file(FIXTURES / fixture, disabled=[rule]) == []

    @pytest.mark.parametrize("fixture", CLEAN_FIXTURES)
    def test_clean_variant_has_no_findings(self, fixture):
        assert lint_file(FIXTURES / fixture) == []

    def test_early_bird_loop_split_stays_clean(self):
        # The paper's early-bird idiom: two range() loops splitting
        # [0, PARTITIONS) between them.  Coverage must compose.
        source = (FIXTURES / "flow_sim111_clean.py").read_text()
        assert "early-bird" in source
        assert lint_source(source, "early_bird.py") == []

    @pytest.mark.parametrize("fixture,rule,severity", FLOW_CASES)
    def test_findings_carry_fix_hint(self, fixture, rule, severity):
        (finding,) = lint_file(FIXTURES / fixture)
        assert finding.fix_hint


class TestFixpointTermination:
    def _pathological(self, depth: int) -> str:
        # `depth` nested while loops, each with a data-dependent branch
        # mutating the counter both ways — the worst case for interval
        # propagation.  Widening must force convergence.
        lines = ["def program(ctx, comm, tc, n):",
                 "    ps = yield from comm.psend_init(tc, 1, 5, 4096, 64)",
                 "    yield from ps.start(tc)",
                 "    i = 0"]
        pad = "    "
        for d in range(depth):
            lines.append(f"{pad}while i < n + {d}:")
            pad += "    "
            lines.append(f"{pad}i += 1")
            lines.append(f"{pad}if i > {d + 3}:")
            lines.append(f"{pad}    i += 2")
            lines.append(f"{pad}else:")
            lines.append(f"{pad}    i -= 1")
        lines.append(f"{pad}yield from ps.pready(tc, 0)")
        lines.append("    yield from ps.wait(tc)")
        return "\n".join(lines) + "\n"

    def test_nested_loop_cfg_terminates(self):
        # Non-termination shows up as the pytest-level timeout; reaching
        # the assert at all is the property under test.
        findings = lint_source(self._pathological(10), "pathological.py")
        assert isinstance(findings, list)

    def test_constant_pready_in_repeating_loop_flagged(self):
        # ... and the analysis is still precise enough at depth to see
        # the constant-index pready repeating without an epoch reset.
        findings = lint_source(self._pathological(4), "pathological.py")
        assert "SIM112" in {f.rule for f in findings}


class TestSuppression:
    VIOLATION = FIXTURES / "flow_sim112.py"

    def test_per_rule_disable_comment(self):
        source = self.VIOLATION.read_text().replace(
            "# second ready: the violation", "# simlint: disable=SIM112")
        assert lint_source(source, "suppressed.py") == []

    def test_per_rule_disable_leaves_other_rules(self):
        # Suppressing an unrelated rule on the line changes nothing.
        source = self.VIOLATION.read_text().replace(
            "# second ready: the violation", "# simlint: disable=SIM110")
        assert [f.rule for f in lint_source(source, "s.py")] == ["SIM112"]

    def test_multi_rule_disable_comment(self):
        source = self.VIOLATION.read_text().replace(
            "# second ready: the violation",
            "# simlint: disable=SIM103,SIM112")
        assert lint_source(source, "s.py") == []

    def test_unknown_rule_id_warns(self):
        findings = lint_source("x = 1  # simlint: disable=SIM999\n", "u.py")
        assert [f.rule for f in findings] == [UNKNOWN_SUPPRESSION_RULE]
        assert findings[0].severity == "warning"
        assert "SIM999" in findings[0].message

    def test_blanket_skip_still_works(self):
        source = self.VIOLATION.read_text().replace(
            "# second ready: the violation", "# simlint: skip")
        assert lint_source(source, "s.py") == []


class TestOrderingAndDedup:
    def test_sorted_by_location_then_rule(self):
        a = Finding(rule="SIM112", message="m", file="b.py", line=3)
        b = Finding(rule="SIM110", message="m", file="b.py", line=3)
        c = Finding(rule="SIM115", message="m", file="a.py", line=9)
        d = Finding(rule="SIM110", message="m", file="b.py", line=1)
        assert sort_findings([a, b, c, d]) == [c, d, b, a]

    def test_exact_duplicates_dropped(self):
        f = Finding(rule="SIM110", message="m", file="x.py", line=1)
        assert sort_findings([f, f, f]) == [f]

    def test_lint_output_is_sorted(self):
        findings = lint_file(FIXTURES / "flow_sim110.py")
        assert findings == sort_findings(findings)


class TestSarifExport:
    # The structural subset of the SARIF 2.1.0 schema this exporter
    # must satisfy (the full OASIS schema is not vendored).
    SUBSET_SCHEMA = {
        "type": "object",
        "required": ["$schema", "version", "runs"],
        "properties": {
            "version": {"const": "2.1.0"},
            "runs": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["tool", "results"],
                    "properties": {
                        "tool": {
                            "type": "object",
                            "required": ["driver"],
                            "properties": {"driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                            }},
                        },
                        "results": {
                            "type": "array",
                            "items": {
                                "type": "object",
                                "required": ["ruleId", "level", "message"],
                                "properties": {
                                    "level": {"enum": ["error", "warning",
                                                       "note", "none"]},
                                    "message": {
                                        "type": "object",
                                        "required": ["text"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    }

    def _log(self):
        return to_sarif(lint_file(FIXTURES / "flow_sim110.py"))

    def test_schema_valid(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._log(), self.SUBSET_SCHEMA)

    def test_result_location_is_one_based(self):
        (result,) = self._log()["runs"][0]["results"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region.get("startColumn", 1) >= 1

    def test_flow_rules_in_tool_metadata(self):
        ids = {r["id"] for r in
               self._log()["runs"][0]["tool"]["driver"]["rules"]}
        assert FLOW_RULE_IDS <= ids

    def test_severity_maps_to_level(self):
        log = to_sarif(lint_file(FIXTURES / "flow_sim111.py"))
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "warning"


class TestBaseline:
    def test_round_trip_same_tree_exits_clean(self, tmp_path):
        findings = lint_file(FIXTURES / "flow_sim112.py")
        path = tmp_path / "baseline.json"
        assert write_baseline(findings, path) == len(findings) == 1
        assert new_findings(findings, load_baseline(path)) == []

    def test_new_violation_not_grandfathered(self, tmp_path):
        findings = lint_file(FIXTURES / "flow_sim112.py")
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        extra = lint_file(FIXTURES / "flow_sim110.py")
        fresh = new_findings(findings + extra, load_baseline(path))
        assert [f.rule for f in fresh] == ["SIM110"]

    def test_fingerprint_tolerates_line_moves(self):
        a = Finding(rule="SIM112", message="m", file="x.py", line=10)
        b = Finding(rule="SIM112", message="m", file="x.py", line=99)
        assert finding_fingerprint(a) == finding_fingerprint(b)

    def test_repeat_count_budget(self, tmp_path):
        f = Finding(rule="SIM112", message="m", file="x.py", line=1)
        g = Finding(rule="SIM112", message="m", file="x.py", line=2)
        path = tmp_path / "baseline.json"
        write_baseline([f], path)
        # One occurrence grandfathered; a second identical fingerprint
        # is new.
        assert new_findings([f, g], load_baseline(path)) == [g]

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_baseline(tmp_path / "absent.json")

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION + 1, "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCli:
    def test_sarif_format(self, capsys):
        code = main(["lint", str(FIXTURES / "flow_sim110.py"),
                     "--format", "sarif"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "SIM110"

    def test_sarif_output_file(self, capsys, tmp_path):
        out = tmp_path / "lint.sarif"
        code = main(["lint", str(FIXTURES / "flow_sim110_clean.py"),
                     "--format", "sarif", "--output", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["runs"][0]["results"] == []

    def test_baseline_round_trip(self, capsys, tmp_path):
        target = str(FIXTURES / "flow_sim112.py")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", target,
                     "--write-baseline", str(baseline)]) == 0
        # The same tree against its own fresh baseline gates green ...
        assert main(["lint", target, "--baseline", str(baseline)]) == 0
        # ... and a tree with a new violation gates red.
        assert main(["lint", target, str(FIXTURES / "flow_sim110.py"),
                     "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_config_error(self, capsys, tmp_path):
        code = main(["lint", str(FIXTURES / "flow_sim110_clean.py"),
                     "--baseline", str(tmp_path / "absent.json")])
        assert code == 2

    def test_flow_rule_disable_flag(self, capsys):
        code = main(["lint", str(FIXTURES / "flow_sim112.py"),
                     "--disable", "SIM112"])
        assert code == 0
