"""Partitioned point-to-point: lifecycle, epochs, semantics, errors."""

import pytest

from repro.errors import MPIError, PartitionError, RequestStateError
from repro.mpi import Cluster, ANY_TAG
from repro.partitioned import (IMPL_MPIPCL, IMPL_NATIVE, partition_sizes)


def _run(program, nranks=2, **kwargs):
    cluster = Cluster(nranks=nranks, **kwargs)
    return cluster, cluster.run(program)


class TestPartitionSizes:
    def test_even_split(self):
        assert partition_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_over_leading_partitions(self):
        assert partition_sizes(10, 3) == [4, 3, 3]
        assert sum(partition_sizes(10, 3)) == 10

    def test_one_partition(self):
        assert partition_sizes(7, 1) == [7]

    def test_too_many_partitions_rejected(self):
        with pytest.raises(PartitionError):
            partition_sizes(3, 4)

    def test_bad_counts_rejected(self):
        with pytest.raises(PartitionError):
            partition_sizes(10, 0)
        with pytest.raises(PartitionError):
            partition_sizes(-1, 1)


def _basic_transfer(impl, nbytes=1 << 16, partitions=4, epochs=1):
    """One sender/receiver pair pushing `epochs` epochs of data."""
    def program(ctx):
        comm, main = ctx.comm, ctx.main
        if ctx.rank == 0:
            ps = yield from comm.psend_init(main, 1, 5, nbytes, partitions,
                                            impl=impl)
            for _ in range(epochs):
                yield from ps.start(main)

                def worker(tc):
                    yield from tc.compute(1e-4)
                    yield from ps.pready(tc, tc.thread_id)

                team = yield from ctx.fork(partitions, worker)
                yield from team.join()
                yield from ps.wait(main)
            return ps.epoch
        pr = yield from comm.precv_init(main, 0, 5, nbytes, partitions,
                                        impl=impl)
        arrivals = []
        for _ in range(epochs):
            yield from pr.start(main)
            yield from pr.wait(main)
            arrivals.append(pr.arrived_count)
        return arrivals

    return program


class TestLifecycle:
    @pytest.mark.parametrize("impl", [IMPL_MPIPCL, IMPL_NATIVE])
    def test_single_epoch_transfer(self, impl):
        _, results = _run(_basic_transfer(impl))
        assert results[0] == 1
        assert results[1] == [4]

    @pytest.mark.parametrize("impl", [IMPL_MPIPCL, IMPL_NATIVE])
    def test_buffer_reuse_across_epochs(self, impl):
        _, results = _run(_basic_transfer(impl, epochs=3))
        assert results[0] == 3
        assert results[1] == [4, 4, 4]

    def test_single_partition_degenerates_to_persistent(self):
        _, results = _run(_basic_transfer(IMPL_MPIPCL, partitions=1))
        assert results[1] == [1]

    def test_large_rendezvous_partitions(self):
        _, results = _run(_basic_transfer(IMPL_MPIPCL, nbytes=4 << 20,
                                          partitions=4))
        assert results[1] == [4]

    def test_parrived_polling(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.pready(main, 0)
                yield ctx.sim.timeout(1e-3)
                yield from ps.pready(main, 1)
                yield from ps.wait(main)
                return None
            pr = yield from comm.precv_init(main, 0, 5, 4096, 2)
            yield from pr.start(main)
            yield ctx.sim.timeout(5e-4)
            early = yield from pr.parrived(main, 0)
            late = yield from pr.parrived(main, 1)
            yield from pr.wait(main)
            final = yield from pr.parrived(main, 1)
            return (early, late, final)

        _, results = _run(program)
        early, late, final = results[1]
        assert early is True      # sent immediately, arrived within 0.5 ms
        assert late is False      # not yet pready at 0.5 ms
        assert final is True

    def test_pready_range(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 4)
                yield from ps.start(main)
                yield from ps.pready_range(main, 0, 3)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 4)
                yield from pr.start(main)
                yield from pr.wait(main)
                return pr.arrived_count

        _, results = _run(program)
        assert results[1] == 4

    def test_out_of_order_pready(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 4)
                yield from ps.start(main)
                for i in (2, 0, 3, 1):
                    yield from ps.pready(main, i)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 4)
                yield from pr.start(main)
                yield from pr.wait(main)
                return [pr.arrived_event(i).triggered for i in range(4)]

        _, results = _run(program)
        assert results[1] == [True] * 4

    def test_sender_races_ahead_of_receiver_start(self):
        """Partitions arriving before the receiver's start are buffered."""
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.pready(main, 0)
                yield from ps.pready(main, 1)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 2)
                yield ctx.sim.timeout(2e-3)  # start long after arrival
                yield from pr.start(main)
                yield from pr.wait(main)
                return pr.arrived_count

        _, results = _run(program)
        assert results[1] == 2


class TestBindingValidation:
    def _init_pair(self, send_kwargs, recv_kwargs):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, **send_kwargs)
                yield from ps.start(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, **recv_kwargs)
                yield from pr.start(main)

        return program

    def test_partition_count_mismatch_raises(self):
        program = self._init_pair(dict(nbytes=4096, partitions=4),
                                  dict(nbytes=4096, partitions=8))
        with pytest.raises(PartitionError, match="count mismatch"):
            _run(program)

    def test_size_mismatch_raises(self):
        program = self._init_pair(dict(nbytes=4096, partitions=4),
                                  dict(nbytes=8192, partitions=4))
        with pytest.raises(PartitionError, match="size mismatch"):
            _run(program)

    def test_impl_mismatch_raises(self):
        program = self._init_pair(
            dict(nbytes=4096, partitions=4, impl=IMPL_MPIPCL),
            dict(nbytes=4096, partitions=4, impl=IMPL_NATIVE))
        with pytest.raises(PartitionError, match="implementation"):
            _run(program)

    def test_wildcard_tag_rejected(self):
        def program(ctx):
            yield from ctx.comm.psend_init(ctx.main, 1, ANY_TAG, 4096, 4)

        with pytest.raises(MPIError, match="wildcard"):
            _run(program)

    def test_unknown_impl_rejected(self):
        def program(ctx):
            yield from ctx.comm.psend_init(ctx.main, 1, 5, 4096, 4,
                                           impl="bogus")

        with pytest.raises(PartitionError, match="unknown implementation"):
            _run(program)


class TestStateErrors:
    def test_pready_before_start_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.pready(main, 0)
            else:
                yield from comm.precv_init(main, 0, 5, 4096, 2)

        with pytest.raises(RequestStateError, match="start"):
            _run(program)

    def test_double_pready_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.pready(main, 0)
                yield from ps.pready(main, 0)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 2)
                yield from pr.start(main)

        with pytest.raises(RequestStateError, match="twice"):
            _run(program)

    def test_out_of_range_partition_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.pready(main, 7)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 2)
                yield from pr.start(main)

        with pytest.raises(PartitionError, match="out of range"):
            _run(program)

    def test_start_while_active_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.start(main)
            else:
                yield from comm.precv_init(main, 0, 5, 4096, 2)

        with pytest.raises(RequestStateError, match="active"):
            _run(program)

    def test_wait_before_start_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.wait(main)
            else:
                yield from comm.precv_init(main, 0, 5, 4096, 2)

        with pytest.raises(RequestStateError, match="wait"):
            _run(program)


class TestImplementationDifferences:
    def test_native_completes_faster_than_mpipcl(self):
        times = {}

        def make(impl):
            def program(ctx):
                comm, main = ctx.comm, ctx.main
                if ctx.rank == 0:
                    ps = yield from comm.psend_init(main, 1, 5, 1 << 16, 8,
                                                    impl=impl)
                    yield from ps.start(main)

                    def worker(tc):
                        yield from ps.pready(tc, tc.thread_id)

                    team = yield from ctx.fork(8, worker)
                    yield from team.join()
                    yield from ps.wait(main)
                else:
                    pr = yield from comm.precv_init(main, 0, 5, 1 << 16, 8,
                                                    impl=impl)
                    yield from pr.start(main)
                    yield from pr.wait(main)
                    times[impl] = ctx.sim.now

            return program

        _run(make(IMPL_MPIPCL))
        _run(make(IMPL_NATIVE))
        assert times[IMPL_NATIVE] < times[IMPL_MPIPCL]

    def test_obs_events_emitted(self):
        cluster = Cluster(nranks=2)
        mem = cluster.obs.record("part.pready", "part.arrived")
        cluster.run(_basic_transfer(IMPL_MPIPCL))
        assert len(mem.filter("part.pready")) == 4
        assert len(mem.filter("part.arrived")) == 4
        assert mem.first("part.pready").time <= \
            mem.first("part.arrived").time
