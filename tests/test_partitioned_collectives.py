"""Partitioned-broadcast preview: tree construction and pipelining."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi import Cluster
from repro.partitioned import PartitionedBroadcast, binomial_children


class TestBinomialTree:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 13, 16])
    @pytest.mark.parametrize("root", [0, 1])
    def test_tree_is_a_spanning_tree(self, size, root):
        if root >= size:
            pytest.skip("root outside world")
        reached = {root}
        parents = {}
        for r in range(size):
            parent, children = binomial_children(r, root, size)
            for c in children:
                assert c not in parents, "two parents for one rank"
                parents[c] = r
                reached.add(c)
        assert reached == set(range(size))
        # parent pointers agree with children lists
        for r in range(size):
            parent, _ = binomial_children(r, root, size)
            if r == root:
                assert parent is None
            else:
                assert parents[r] == parent

    def test_root_has_no_parent(self):
        parent, children = binomial_children(3, 3, 8)
        assert parent is None
        assert len(children) == 3  # log2(8) children for the root

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            binomial_children(0, 9, 4)
        with pytest.raises(ConfigurationError):
            binomial_children(9, 0, 4)


def _bcast_program(nbytes, partitions, epochs=1, root=0):
    def program(ctx):
        comm, main = ctx.comm, ctx.main
        pb = PartitionedBroadcast(ctx, root=root, nbytes=nbytes,
                                  partitions=partitions)
        yield from pb.init(main)
        finish = []
        for _ in range(epochs):
            yield from pb.start(main)
            if ctx.rank == root:
                def worker(tc):
                    yield from tc.compute(1e-4)
                    yield from pb.pready(tc, tc.thread_id)

                team = yield from ctx.fork(partitions, worker)
                yield from team.join()
            yield from pb.wait(main)
            finish.append(ctx.sim.now)
        return finish

    return program


class TestPartitionedBroadcast:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 5, 8])
    def test_all_ranks_complete(self, nranks):
        results = Cluster(nranks=nranks).run(
            _bcast_program(1 << 16, 4))
        assert all(len(r) == 1 for r in results)

    def test_multiple_epochs(self):
        results = Cluster(nranks=4).run(
            _bcast_program(1 << 16, 4, epochs=3))
        for finishes in results:
            assert finishes == sorted(finishes)
            assert len(finishes) == 3

    def test_nonzero_root(self):
        results = Cluster(nranks=6).run(
            _bcast_program(1 << 16, 4, root=2))
        assert all(r for r in results)

    def test_init_twice_raises(self):
        def program(ctx):
            pb = PartitionedBroadcast(ctx, 0, 1 << 12, 2)
            yield from pb.init(ctx.main)
            yield from pb.init(ctx.main)

        with pytest.raises(ConfigurationError, match="twice"):
            Cluster(nranks=1).run(program)

    def test_nonroot_pready_rejected(self):
        def program(ctx):
            pb = PartitionedBroadcast(ctx, 0, 1 << 12, 2)
            yield from pb.init(ctx.main)
            yield from pb.start(ctx.main)
            if ctx.rank == 1:
                yield from pb.pready(ctx.main, 0)
            else:
                def worker(tc):
                    yield from pb.pready(tc, tc.thread_id)

                team = yield from ctx.fork(2, worker)
                yield from team.join()
            yield from pb.wait(ctx.main)

        with pytest.raises(ConfigurationError, match="root"):
            Cluster(nranks=2).run(program)

    def test_pipelining_beats_whole_message_tree(self):
        """The point of the preview: when the root *produces* partitions
        incrementally (the partitioned model's premise), streaming them
        down the tree beats producing everything and then running the
        classic binomial bcast."""
        nbytes, partitions, nranks = 8 << 20, 8, 8
        produce = 5e-4  # seconds to produce one partition, sequentially

        def pipelined(ctx):
            pb = PartitionedBroadcast(ctx, 0, nbytes, partitions)
            yield from pb.init(ctx.main)
            yield from pb.start(ctx.main)
            if ctx.rank == 0:
                for i in range(partitions):
                    yield from ctx.main.compute(produce)
                    yield from pb.pready(ctx.main, i)
            yield from pb.wait(ctx.main)
            return ctx.sim.now

        def classic(ctx):
            if ctx.rank == 0:
                for _ in range(partitions):
                    yield from ctx.main.compute(produce)
            payload = "x" if ctx.rank == 0 else None
            yield from ctx.comm.bcast(ctx.main, 0, nbytes, payload)
            return ctx.sim.now

        partitioned_t = max(Cluster(nranks=nranks).run(pipelined))
        classic_t = max(Cluster(nranks=nranks).run(classic))
        assert partitioned_t < classic_t

    def test_leaf_arrival_events_usable(self):
        def program(ctx):
            pb = PartitionedBroadcast(ctx, 0, 1 << 14, 4)
            yield from pb.init(ctx.main)
            yield from pb.start(ctx.main)
            if ctx.rank == 0:
                def worker(tc):
                    yield from pb.pready(tc, tc.thread_id)

                team = yield from ctx.fork(4, worker)
                yield from team.join()
                yield from pb.wait(ctx.main)
                return None
            ev = pb.arrived_event(0)
            if not ev.triggered:
                yield ev
            first = ctx.sim.now
            yield from pb.wait(ctx.main)
            return ctx.sim.now >= first

        results = Cluster(nranks=4).run(program)
        assert all(r is True for r in results[1:])

    def test_root_has_no_arrival_events(self):
        def program(ctx):
            pb = PartitionedBroadcast(ctx, 0, 1 << 12, 2)
            yield from pb.init(ctx.main)
            if ctx.rank == 0:
                pb.arrived_event(0)
            yield ctx.sim.timeout(0)

        with pytest.raises(ConfigurationError, match="root"):
            Cluster(nranks=1).run(program)
