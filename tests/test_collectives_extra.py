"""reduce/gather/scatter collectives plus waitany/testany helpers."""

import pytest

from repro.errors import MPIError, RequestStateError
from repro.mpi import Cluster, waitany
from repro.mpi import testany as check_any


def _run(program, nranks, **kwargs):
    return Cluster(nranks=nranks, **kwargs).run(program)


class TestReduce:
    @pytest.mark.parametrize("nranks,root", [(2, 0), (4, 2), (5, 0),
                                             (7, 3), (8, 7)])
    def test_sum_at_root_only(self, nranks, root):
        def program(ctx):
            value = yield from ctx.comm.reduce(ctx.main, root, 64,
                                               value=float(ctx.rank))
            return value

        results = _run(program, nranks)
        for rank, value in enumerate(results):
            if rank == root:
                assert value == float(sum(range(nranks)))
            else:
                assert value is None

    def test_custom_op(self):
        def program(ctx):
            value = yield from ctx.comm.reduce(ctx.main, 0, 64,
                                               value=ctx.rank, op=max)
            return value

        assert _run(program, 5)[0] == 4

    def test_single_rank(self):
        def program(ctx):
            value = yield from ctx.comm.reduce(ctx.main, 0, 64, value=9.0)
            return value

        assert _run(program, 1) == [9.0]

    def test_bad_root(self):
        def program(ctx):
            yield from ctx.comm.reduce(ctx.main, 5, 64)

        with pytest.raises(MPIError):
            _run(program, 2)


class TestGather:
    @pytest.mark.parametrize("nranks,root", [(2, 1), (4, 0), (5, 4)])
    def test_everything_arrives_at_root(self, nranks, root):
        def program(ctx):
            out = yield from ctx.comm.gather(ctx.main, root, 64,
                                             value=ctx.rank * 2)
            return out

        results = _run(program, nranks)
        assert results[root] == [r * 2 for r in range(nranks)]
        for rank, out in enumerate(results):
            if rank != root:
                assert out is None


class TestScatter:
    @pytest.mark.parametrize("nranks,root", [(2, 0), (4, 3), (5, 2)])
    def test_each_rank_gets_its_share(self, nranks, root):
        def program(ctx):
            values = ([f"item{r}" for r in range(ctx.size)]
                      if ctx.rank == root else None)
            share = yield from ctx.comm.scatter(ctx.main, root, 64,
                                                values=values)
            return share

        results = _run(program, nranks)
        assert results == [f"item{r}" for r in range(nranks)]

    def test_root_without_values_raises(self):
        def program(ctx):
            yield from ctx.comm.scatter(ctx.main, 0, 64, values=None)

        with pytest.raises(MPIError):
            _run(program, 2)


class TestWaitAnyTestAny:
    def test_waitany_returns_on_first_completion(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.sim.timeout(1e-3)
                yield from ctx.comm.send(ctx.main, 1, 1, 64)   # fast tag 1
                yield ctx.sim.timeout(5e-3)
                yield from ctx.comm.send(ctx.main, 1, 0, 64)   # slow tag 0
            else:
                slow = yield from ctx.comm.irecv(ctx.main, 0, 0, 64)
                fast = yield from ctx.comm.irecv(ctx.main, 0, 1, 64)
                yield waitany(ctx.sim, [slow, fast])
                first = check_any([slow, fast])
                yield slow.wait()
                return first

        results = _run(program, 2)
        assert results[1] == 1  # the fast request completed first

    def test_testany_none_when_pending(self):
        def program(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.irecv(ctx.main, 1, 0, 64)
                before = check_any([req])
                yield from ctx.comm.send(ctx.main, 1, 1, 64)
                yield req.wait()
                return (before, check_any([req]))
            yield from ctx.comm.recv(ctx.main, 0, 1, 64)
            yield from ctx.comm.send(ctx.main, 0, 0, 64)

        results = _run(program, 2)
        assert results[0] == (None, 0)

    def test_waitany_empty_rejected(self, sim):
        with pytest.raises(RequestStateError):
            waitany(sim, [])


class TestPreadyList:
    def test_pready_list_delivers_all(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 4)
                yield from ps.start(main)
                yield from ps.pready_list(main, [3, 1, 0, 2])
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 4)
                yield from pr.start(main)
                yield from pr.wait(main)
                return pr.arrived_count

        assert _run(program, 2)[1] == 4

    def test_duplicates_rejected(self):
        from repro.errors import PartitionError

        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 4)
                yield from ps.start(main)
                yield from ps.pready_list(main, [0, 0])
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 4)
                yield from pr.start(main)

        with pytest.raises(PartitionError, match="duplicate"):
            _run(program, 2)
