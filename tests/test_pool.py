"""The persistent worker pool: warm reuse, stealing, crash recovery."""

import time

import pytest

from repro.core import (METRIC_NAMES, PtpBenchmarkConfig, WorkerPool,
                        plan_cells, run_cells, run_ptp_benchmark, sweep_ptp)
from repro.core.pool import (PoolRunStats, PoolTaskError, result_from_shipped,
                             shared_pool, ship_result, shutdown_shared_pool)
from repro.errors import ConfigurationError
from repro.metrics import AdaptiveTrialPlanner
from repro.noise import UniformNoise

SIZES = [1024, 65536]
COUNTS = [1, 4]


def _base(**overrides):
    defaults = dict(message_bytes=64, partitions=1,
                    compute_seconds=1e-4, iterations=2)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


def _digests(results):
    return [r.event_digest for r in results]


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


# ---------------------------------------------------------------------------
# Validation and worker clamping
# ---------------------------------------------------------------------------

class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
        with pytest.raises(ConfigurationError):
            shared_pool(-1)

    def test_lazy_spawn_clamps_to_work(self):
        # A 64-worker pool asked to run 4 cells must start 4 processes,
        # not 64.
        big = WorkerPool(64)
        try:
            cells = plan_cells(_base(seed=2), SIZES, COUNTS)
            results, _ = run_cells(cells, jobs=64, pool=big)
            assert len(results) == 4
            assert big.started_workers <= 4
        finally:
            big.shutdown()

    def test_transient_pool_clamped_too(self):
        cells = plan_cells(_base(seed=2), SIZES, COUNTS)
        _, stats = run_cells(cells, jobs=64)
        assert len(stats.worker_cells) <= len(cells)

    def test_closed_pool_rejects_sessions(self, pool):
        pool.shutdown()
        with pytest.raises(ConfigurationError):
            pool.session()

    def test_run_key_length_mismatch_rejected(self, pool):
        with pytest.raises(ConfigurationError):
            list(pool.run([_base()], keys=["a", "b"]))


# ---------------------------------------------------------------------------
# Warm reuse: the tentpole invariant
# ---------------------------------------------------------------------------

class TestWarmReuse:
    def test_two_warm_sweeps_byte_identical_to_two_cold_serial_runs(
            self, pool):
        base = _base(noise=UniformNoise(4.0), seed=11)
        cold1 = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        cold2 = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        warm1 = sweep_ptp(base, SIZES, COUNTS, jobs=2, pool=pool)
        warm2 = sweep_ptp(base, SIZES, COUNTS, jobs=2, pool=pool)
        for cold, warm in ((cold1, warm1), (cold2, warm2)):
            for metric in METRIC_NAMES:
                assert cold.series(metric) == warm.series(metric)
            for m in SIZES:
                for n in COUNTS:
                    c = cold.point(m, n).result
                    w = warm.point(m, n).result
                    assert c.event_digest is not None
                    assert c.event_digest == w.event_digest
                    assert [s.timeline for s in c.samples] == \
                        [s.timeline for s in w.samples]
                    assert [s.metrics for s in c.samples] == \
                        [s.metrics for s in w.samples]

    def test_second_sweep_reuses_warm_workers(self, pool):
        cells = plan_cells(_base(seed=4), SIZES, COUNTS)
        _, first = run_cells(cells, jobs=2, pool=pool)
        _, second = run_cells(cells, jobs=2, pool=pool)
        assert first.warm_hits == 0      # cold pool: every worker booted
        assert second.warm_hits == len(cells)
        assert pool.stats.tasks == 2 * len(cells)

    def test_planner_trials_on_pool_match_serial(self, pool):
        base = _base(noise=UniformNoise(4.0), seed=11)
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        cells = plan_cells(base, SIZES, COUNTS)
        serial, s_stats = run_cells(cells, jobs=1, planner=planner)
        pooled, p_stats = run_cells(cells, jobs=2, planner=planner,
                                    pool=pool)
        assert _digests(serial) == _digests(pooled)
        assert [r.trials for r in serial] == [r.trials for r in pooled]
        assert p_stats.trials == s_stats.trials
        # Trial decomposition: the pool saw one task per trial, not one
        # per cell.
        assert sum(p_stats.worker_cells.values()) == s_stats.trials

    def test_shared_pool_is_process_wide_and_grows(self):
        shutdown_shared_pool()
        try:
            a = shared_pool(2)
            assert shared_pool(2) is a
            assert shared_pool(4) is a       # ceiling raised in place
            assert a.max_workers == 4
        finally:
            shutdown_shared_pool()
        b = shared_pool(2)
        try:
            assert b is not a                # fresh pool after shutdown
        finally:
            shutdown_shared_pool()


# ---------------------------------------------------------------------------
# Work stealing under a skewed grid
# ---------------------------------------------------------------------------

class TestWorkStealing:
    def test_skewed_grid_steals_and_stays_deterministic(self, pool):
        # One expensive cell submitted first, cheap cells behind it: the
        # second worker drains its own queue and must steal the heavy
        # worker's backlog instead of idling.
        heavy = _base(message_bytes=1 << 20, partitions=32, iterations=6,
                      noise=UniformNoise(4.0), seed=9)
        light = [_base(message_bytes=256, partitions=1, iterations=1,
                       noise=UniformNoise(4.0), seed=9 + i)
                 for i in range(5)]
        cells = [heavy] + light
        serial, _ = run_cells(cells, jobs=1)
        pooled, stats = run_cells(cells, jobs=2, pool=pool)
        assert _digests(pooled) == _digests(serial)
        assert stats.stolen_cells >= 1
        assert pool.stats.stolen_tasks == stats.stolen_cells

    def test_describe_surfaces_pool_counters(self, pool):
        cells = plan_cells(_base(seed=6), SIZES, COUNTS)
        _, stats = run_cells(cells, jobs=2, pool=pool)
        line = stats.describe()
        assert "warm" in line and "stolen" in line
        assert "w0:" in line            # per-worker spread
        # Serial runs keep the pre-pool provenance line.
        _, serial_stats = run_cells(cells, jobs=1)
        assert "warm" not in serial_stats.describe()


# ---------------------------------------------------------------------------
# Crash recovery: degrade, never hang
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_dead_worker_is_detected_and_work_rescued(self, pool):
        cells = plan_cells(_base(seed=8), SIZES, COUNTS)
        run_cells(cells, jobs=2, pool=pool)           # boot both workers
        victim = min(pool._workers)                   # lowest id gets
        pool._workers[victim].process.kill()          # the next dispatch
        pool._workers[victim].process.join()
        serial, _ = run_cells(cells, jobs=1)
        rescued, stats = run_cells(cells, jobs=2, pool=pool)
        assert _digests(rescued) == _digests(serial)
        assert pool.stats.crashed_workers >= 1
        assert victim not in pool._workers

    def test_no_spawnable_workers_degrades_inline(self):
        # With the worker ceiling forced to zero the manager must run
        # every task itself rather than hang waiting for processes that
        # can never exist.
        p = WorkerPool(1)
        try:
            p.max_workers = 0
            cells = plan_cells(_base(seed=8), [1024], COUNTS)
            serial, _ = run_cells(cells, jobs=1)
            inline, stats = run_cells(cells, jobs=2, pool=p)
            assert _digests(inline) == _digests(serial)
            assert stats.worker_cells == {-1: len(cells)}
        finally:
            p.shutdown()

    def test_worker_exception_raises_structured_error(self, pool):
        with pytest.raises(PoolTaskError, match="boom-key"):
            list(pool.run(["not-a-config"], keys=["boom-key"]))
        # The pool survives a failed run: the next session's epoch
        # ignores any stale leftovers and fresh work still completes.
        config = plan_cells(_base(seed=8), [1024], [1])[0]
        (key, shipped), = pool.run([config])
        assert result_from_shipped(config, shipped).event_digest == \
            run_ptp_benchmark(config).event_digest


# ---------------------------------------------------------------------------
# The wire format and run accounting
# ---------------------------------------------------------------------------

class TestShippedRoundTrip:
    def test_ship_then_unship_is_lossless(self):
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [4])[0]
        fresh = run_ptp_benchmark(config)
        back = result_from_shipped(config, ship_result(fresh))
        assert back.event_digest == fresh.event_digest
        assert back.trials == fresh.trials
        assert [s.timeline for s in back.samples] == \
            [s.timeline for s in fresh.samples]
        assert [s.metrics for s in back.samples] == \
            [s.metrics for s in fresh.samples]


class TestPoolRunStats:
    def test_absorb_accumulates_everything(self):
        total = PoolRunStats()
        total.absorb(PoolRunStats(tasks=3, warm_tasks=1, stolen_tasks=1,
                                  booted_workers=2, crashed_workers=1,
                                  inline_tasks=1, worker_tasks={0: 2, 1: 1}))
        total.absorb(PoolRunStats(tasks=2, worker_tasks={1: 2}))
        assert total.tasks == 5
        assert total.warm_tasks == 1
        assert total.stolen_tasks == 1
        assert total.booted_workers == 2
        assert total.crashed_workers == 1
        assert total.inline_tasks == 1
        assert total.worker_tasks == {0: 2, 1: 3}

    def test_pool_emits_lifecycle_events(self, pool):
        from repro.obs import MemorySink
        sink = MemorySink()
        pool.obs.attach(sink, ["pool.*"])
        cells = plan_cells(_base(seed=3), [1024], COUNTS)
        run_cells(cells, jobs=2, pool=pool)
        kinds = {rec.kind.name for rec in sink.records}
        assert "pool.worker_boot" in kinds
        assert "pool.dispatch" in kinds
        assert "pool.dispatch_batch" in kinds
        assert "pool.result" in kinds
        assert "pool.result_batch" in kinds
        assert "pool.drain" in kinds


# ---------------------------------------------------------------------------
# Batched dispatch
# ---------------------------------------------------------------------------

class TestBatchedDispatch:
    def test_warm_pool_batches_and_matches_serial(self, pool):
        # The first run observes per-task cost; the second runs with a
        # calibrated chunk size.  Digests must match serial either way.
        cells = plan_cells(_base(seed=13, noise=UniformNoise(4.0)),
                           SIZES, COUNTS)
        serial, _ = run_cells(cells, jobs=1)
        cold, _ = run_cells(cells, jobs=2, pool=pool)
        warm, _ = run_cells(cells, jobs=2, pool=pool)
        assert _digests(cold) == _digests(serial)
        assert _digests(warm) == _digests(serial)
        assert pool._task_cost is not None  # the EMA is being fed

    def test_chunk_size_tracks_observed_cost(self):
        p = WorkerPool(2, max_chunk=32)
        try:
            assert p._chunk_size() == 1          # cold: per-task dispatch
            p._observe_cost(1e-4)                # cheap tasks -> big chunks
            assert p._chunk_size() == 32
            p._observe_cost(10.0)                # expensive -> per-task
            assert p._chunk_size() == 1
        finally:
            p.shutdown()

    def test_max_chunk_one_restores_per_task_dispatch(self):
        p = WorkerPool(2, max_chunk=1)
        try:
            p._observe_cost(1e-6)
            assert p._chunk_size() == 1
            cells = plan_cells(_base(seed=13), [1024], COUNTS)
            serial, _ = run_cells(cells, jobs=1)
            per_task, _ = run_cells(cells, jobs=2, pool=p)
            assert _digests(per_task) == _digests(serial)
        finally:
            p.shutdown()

    def test_invalid_max_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(2, max_chunk=0)


# ---------------------------------------------------------------------------
# Deferred inline fallback (regression: eager execution at submit time)
# ---------------------------------------------------------------------------

class TestDeferredInlineFallback:
    def test_inline_fallback_defers_execution_to_drain(self):
        from repro.core.runner import EXECUTIONS
        p = WorkerPool(1)
        try:
            p.max_workers = 0  # no worker can ever spawn
            config = plan_cells(_base(seed=8), [1024], [1])[0]
            session = p.session()
            EXECUTIONS.reset()
            session.submit("cell", config)
            # submit() must only *queue* the task; a crash-degraded
            # manager does no simulation work until the drain loop runs.
            assert EXECUTIONS.value == 0
            drained = dict(session.results())
            assert EXECUTIONS.value == 1
            assert session.stats.inline_tasks == 1
            assert result_from_shipped(config, drained["cell"]) \
                .event_digest == run_ptp_benchmark(config).event_digest
        finally:
            p.shutdown()


# ---------------------------------------------------------------------------
# Shutdown hygiene: queue draining and fd release
# ---------------------------------------------------------------------------

class TestShutdownHygiene:
    def test_shutdown_closes_every_queue_end(self):
        """shutdown() must close task pipes and wind down the result queue.

        Regression: shutdown() used to leave every worker's SimpleQueue
        pipe fds open and cancel the result queue's feeder thread with
        live buffers — a per-pool fd/thread leak once a long-running
        service starts and stops pools repeatedly.
        """
        p = WorkerPool(2)
        cells = plan_cells(_base(seed=31), [1024, 65536], [1, 4])
        run_cells(cells, jobs=2, pool=p)
        workers = list(p._workers.values())
        assert workers, "the sweep should have spawned workers"
        drained = p.shutdown()
        assert isinstance(drained, int)     # the drained-message count
        for worker in workers:
            assert worker.tasks._reader.closed
            assert worker.tasks._writer.closed
        assert p._results._closed
        assert p.shutdown() == 0            # idempotent, still an int

    def test_shutdown_on_fresh_pool_drains_nothing(self):
        p = WorkerPool(1)
        assert p.shutdown() == 0

    def test_shutdown_under_inflight_sweep_leaves_no_stale_claims(
            self, tmp_path):
        """A pool shut down mid-sweep must not strand cache claims.

        The sweep degrades to inline execution and still publishes every
        result, so the shared cache ends with zero in-flight claims and
        a full result set.
        """
        import threading

        from repro.core import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cells = plan_cells(_base(seed=32), [1024, 65536], [1, 4])
        p = WorkerPool(2)
        outcome = {}

        def sweep():
            outcome["run"] = run_cells(cells, jobs=2, cache=cache, pool=p)

        runner = threading.Thread(target=sweep)
        runner.start()
        # Shut the pool down as soon as the sweep holds its claims.
        deadline = time.monotonic() + 60.0
        while not cache._inflight and runner.is_alive():
            assert time.monotonic() < deadline, "sweep never claimed"
            time.sleep(0.001)
        p.shutdown()
        runner.join(timeout=120.0)
        assert not runner.is_alive(), "sweep never completed"

        results, stats = outcome["run"]
        assert len(results) == len(cells)
        assert all(r.event_digest is not None for r in results)
        assert cache.stats()["inflight"] == 0
        # Every cell's result is really in the shared store.
        for config in cells:
            assert cache.get(config) is not None

    def test_killed_worker_leader_still_wakes_joiners(self, tmp_path):
        """A leader whose worker dies must still publish to its joiners.

        Crash recovery reruns the cell inline, so the put() happens and
        a concurrent sweep's joiner wakes exactly once — with the
        result, not a timeout.
        """
        import threading

        from repro.core import ResultCache, config_fingerprint

        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(seed=33), [65536], [4])[0]
        fingerprint = config_fingerprint(config)
        p = WorkerPool(1)
        outcome = {}
        wakes = []

        def joiner():
            deadline = time.monotonic() + 60.0
            while fingerprint not in cache._inflight:
                assert time.monotonic() < deadline, "leader never claimed"
                time.sleep(0.001)
            flight = cache.claim(fingerprint)
            assert flight is not None
            # Kill the leader's worker while we're registered on the
            # flight; recovery must still publish a result to us.
            for worker in list(p._workers.values()):
                worker.process.kill()
            wakes.append(cache.join(flight, config, timeout=120.0))

        watcher = threading.Thread(target=joiner)
        watcher.start()
        try:
            outcome["run"] = run_cells([config], jobs=1, cache=cache,
                                       pool=p)
        finally:
            watcher.join(timeout=120.0)
            p.shutdown()
        assert not watcher.is_alive(), "joiner never woke"

        results, stats = outcome["run"]
        assert len(wakes) == 1              # woken exactly once
        assert wakes[0] is not None, "joiner woke without a result"
        assert wakes[0].event_digest == results[0].event_digest
        assert cache.stats()["inflight"] == 0
