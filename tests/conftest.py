"""Shared fixtures: small, fast configurations for the heavier layers."""

from __future__ import annotations

import pytest

from repro.core import PtpBenchmarkConfig
from repro.mpi import Cluster, ThreadingMode
from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture
def two_rank_cluster():
    """Two ranks on two nodes, MULTIPLE threading (the benchmark setup)."""
    return Cluster(nranks=2, mode=ThreadingMode.MULTIPLE, seed=7)


@pytest.fixture
def quick_config():
    """A cheap point-to-point benchmark configuration."""
    return PtpBenchmarkConfig(message_bytes=64 * 1024, partitions=4,
                              compute_seconds=0.001, iterations=2,
                              warmup=1, seed=3)


def run_two_ranks(sender, receiver, **cluster_kwargs):
    """Utility: run distinct generators on ranks 0 and 1."""
    cluster = Cluster(nranks=2, **cluster_kwargs)

    def program(ctx):
        if ctx.rank == 0:
            result = yield from sender(ctx)
        else:
            result = yield from receiver(ctx)
        return result

    return cluster, cluster.run(program)
