"""Additional unit coverage: condition values, octant geometry, pattern
result accounting, suite drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.patterns import CommMode, PatternConfig, PatternRunResult
from repro.proxy.snap import _octant_neighbors
from repro.sim import AllOf, AnyOf, Simulator


class TestConditionValues:
    def test_all_of_collects_values(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")

        def waiter():
            result = yield AllOf(sim, [a, b])
            return result

        p = sim.process(waiter())
        sim.run()
        assert p.value[a] == "a"
        assert p.value[b] == "b"

    def test_any_of_collects_only_triggered(self, sim):
        # Manual events (timeouts count as triggered from creation).
        fast = sim.event()
        slow = sim.event()

        def firer():
            yield sim.timeout(1.0)
            fast.succeed("fast")
            yield sim.timeout(9.0)
            slow.succeed("slow")

        def waiter():
            result = yield AnyOf(sim, [fast, slow])
            return result

        sim.process(firer())
        p = sim.process(waiter())
        sim.run()
        assert p.value == {fast: "fast"}

    def test_nested_conditions(self, sim):
        inner = AllOf(sim, [sim.timeout(1.0), sim.timeout(2.0)])
        outer = AnyOf(sim, [inner, sim.timeout(10.0)])

        def waiter():
            yield outer
            return sim.now

        p = sim.process(waiter())
        sim.run()
        assert p.value == 2.0

    def test_cross_simulator_condition_rejected(self, sim):
        from repro.errors import SimulationError
        other = Simulator()
        with pytest.raises(SimulationError, match="multiple simulators"):
            AllOf(sim, [sim.timeout(1.0), other.timeout(1.0)])


class TestOctantGeometry:
    def test_octant_zero_sweeps_from_origin(self):
        # 3x3 grid, rank 4 is the center; octant 0 sweeps +x/+y.
        nbrs = _octant_neighbors(3, 3, 4, octant=0)
        assert nbrs == {"up_x": 3, "dn_x": 5, "up_y": 1, "dn_y": 7}

    def test_octant_one_reverses_x(self):
        nbrs = _octant_neighbors(3, 3, 4, octant=1)
        assert nbrs["up_x"] == 5 and nbrs["dn_x"] == 3
        assert nbrs["up_y"] == 1 and nbrs["dn_y"] == 7

    def test_octant_two_reverses_y(self):
        nbrs = _octant_neighbors(3, 3, 4, octant=2)
        assert nbrs["up_y"] == 7 and nbrs["dn_y"] == 1

    def test_corner_has_no_upstream_in_its_octant(self):
        nbrs = _octant_neighbors(3, 3, 0, octant=0)
        assert nbrs["up_x"] is None and nbrs["up_y"] is None
        nbrs = _octant_neighbors(3, 3, 8, octant=3)  # -x, -y sweep
        assert nbrs["up_x"] is None and nbrs["up_y"] is None

    def test_every_rank_has_a_source_corner_per_octant(self):
        # In each octant exactly one rank has no upstream at all.
        for octant in range(4):
            sources = [
                r for r in range(9)
                if _octant_neighbors(3, 3, r, octant)["up_x"] is None
                and _octant_neighbors(3, 3, r, octant)["up_y"] is None
            ]
            assert len(sources) == 1


class TestPatternRunResult:
    def _result(self, elapsed, cp=1.0):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1000)
        return PatternRunResult(config=cfg, nranks=4,
                                bytes_per_iteration=1_000_000,
                                compute_critical_path=cp,
                                elapsed=elapsed)

    def test_comm_time_subtracts_critical_path(self):
        r = self._result([1.5, 1.25], cp=1.0)
        assert r.comm_times() == pytest.approx([0.5, 0.25])
        assert r.mean_throughput == pytest.approx(
            (1_000_000 / 0.5 + 1_000_000 / 0.25) / 2)

    def test_comm_time_floors_at_epsilon(self):
        r = self._result([0.5], cp=1.0)  # elapsed below the cp estimate
        assert r.comm_times() == [pytest.approx(1e-9)]

    def test_wall_throughput_uses_elapsed(self):
        r = self._result([2.0], cp=1.0)
        assert r.wall_throughput.mean == pytest.approx(500_000)

    def test_empty_elapsed_rejected(self):
        r = self._result([])
        with pytest.raises(ConfigurationError):
            r.comm_times()
        with pytest.raises(ConfigurationError):
            r.wall_throughput


class TestSuiteDrivers:
    def test_fig4_driver_structure(self):
        from repro.core import fig4_overhead
        panels = fig4_overhead(quick=True, sizes=[1024], counts=[1, 2])
        assert set(panels) == {"hot", "cold"}
        assert panels["hot"].partition_counts == [1, 2]

    def test_fig6_driver_drops_single_partition(self):
        from repro.core import fig6_availability
        panels = fig6_availability(quick=True, sizes=[1024],
                                   counts=[1, 2, 4])
        assert panels[0.010].partition_counts == [2, 4]

    def test_fig8_driver_panels(self):
        from repro.core import fig8_early_bird
        panels = fig8_early_bird(quick=True, sizes=[1024], counts=[2])
        assert set(panels) == {0.010, 0.100}
